//! PTSBE — Pre-Trajectory Sampling with Batched Execution.
//!
//! A from-scratch Rust reproduction of *"Augmenting Simulated Noisy
//! Quantum Data Collection by Orders of Magnitude Using Pre-Trajectory
//! Sampling with Batched Execution"* (Patti, Nguyen, Lietz, McCaskey,
//! Khailany — SC '25), including every substrate the paper's evaluation
//! depends on: statevector and MPS simulators, a density-matrix oracle, a
//! Stim-style stabilizer stack, the QEC/magic-state-distillation
//! workloads, counter-based RNG, and the dataset layer.
//!
//! This facade re-exports the workspace crates under short paths:
//!
//! ```
//! use ptsbe::prelude::*;
//!
//! // A noisy GHZ circuit …
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let noisy = NoiseModel::new()
//!     .with_default_2q(channels::depolarizing(0.02))
//!     .apply(&c);
//!
//! // … pre-sample trajectories (PTS) and batch-execute them (BE).
//! let mut rng = PhiloxRng::new(7, 0);
//! let plan = ProbabilisticPts { n_samples: 100, shots_per_trajectory: 1_000, dedup: true }
//!     .sample_plan(&noisy, &mut rng);
//! let backend = SvBackend::<f64>::new(&noisy, Default::default()).unwrap();
//! let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
//! assert_eq!(result.total_shots(), plan.total_shots());
//! ```

pub use ptsbe_circuit as circuit;
pub use ptsbe_core as core;
pub use ptsbe_dataset as dataset;
pub use ptsbe_densitymatrix as densitymatrix;
pub use ptsbe_math as math;
pub use ptsbe_qec as qec;
pub use ptsbe_rng as rng;
pub use ptsbe_service as service;
pub use ptsbe_stabilizer as stabilizer;
pub use ptsbe_statevector as statevector;
pub use ptsbe_telemetry as telemetry;
pub use ptsbe_tensornet as tensornet;

/// The commonly used names in one import.
pub mod prelude {
    pub use ptsbe_circuit::{
        channels, Circuit, FusedKernel, FusionStats, Gate, KrausChannel, NoiseModel, NoisyCircuit,
    };
    pub use ptsbe_core::baseline::{run_baseline_mps, run_baseline_sv};
    pub use ptsbe_core::{
        backend::MpsSampleMode, estimators, stats, BandPts, BatchMajorExecutor, BatchedExecutor,
        ExhaustivePts, MpsBackend, PoolStats, ProbabilisticPts, ProportionalPts, PtsPlan,
        PtsPlanTree, PtsSampler, StatePool, SvBackend, TopKPts, TreeExecutor, TruncationStats,
    };
    pub use ptsbe_dataset::{
        BinarySink, DatasetHeader, JsonlSink, MemorySink, RecordSink, TrajectoryRecord,
    };
    pub use ptsbe_densitymatrix::DensityMatrix;
    pub use ptsbe_qec::{codes, msd_bare, msd_encoded, LookupDecoder, MeasureBasis, MsdAnalysis};
    pub use ptsbe_rng::{PhiloxRng, Rng};
    pub use ptsbe_service::{EngineKind, EnginePolicy, JobSpec, ServiceConfig, ShotService};
    pub use ptsbe_statevector::{SamplingStrategy, StateVector};
    pub use ptsbe_telemetry::{Stage, TelemetryConfig, TelemetryMode, TelemetrySnapshot};
    pub use ptsbe_tensornet::{BondStats, Mps, MpsConfig, MpsOrdering};
}
