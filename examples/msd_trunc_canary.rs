//! Truncation canary for the encoded-MSD workload (CI release job).
//!
//! Runs the 35-qubit block-encoded distillation circuit at zero noise
//! under the same budget-driven MPS config the pipeline test pins, and
//! prints the observability trio this PR made first-class —
//! `max_bond_reached`, the final `trunc_error`, and the acceptance rate
//! — so a truncation regression shows up in the job log *before* it
//! costs a failed test re-run.

use ptsbe::core::backend::Backend;
use ptsbe::prelude::*;
use std::time::Instant;

fn main() {
    let code = codes::steane();
    let basis = MeasureBasis::Z;
    let (circuit, layout) = msd_encoded(&code, basis);
    let noisy = NoiseModel::new().apply(&circuit);
    // Keep in lockstep with tests/msd_encoded_pipeline.rs.
    let config = MpsConfig::adaptive(256, 1e-5, 1e-2);

    let t0 = Instant::now();
    let backend = MpsBackend::<f64>::new(&noisy, config, MpsSampleMode::Cached).unwrap();
    let (mut state, _) = backend.prepare(&[]);
    let prep = t0.elapsed();
    let mut rng = PhiloxRng::new(1, 0);
    let shots = backend.sample(&mut state, 30_000, &mut rng);
    let total = t0.elapsed();

    let mut analysis = MsdAnalysis::default();
    for &s in &shots {
        analysis.fold(&layout, None, s);
    }
    let stats = backend
        .truncation_stats(&state)
        .expect("MPS backend always reports truncation stats");
    println!(
        "encoded-msd canary: max_bond_reached={} trunc_error={:.3e} budget_exhausted={} \
         acceptance={:.4} (exact 1/6 = {:.4}) prep={prep:.2?} total={total:.2?}",
        stats.max_bond_reached,
        stats.trunc_error,
        stats.budget_exhausted,
        analysis.acceptance(),
        1.0 / 6.0,
    );
    assert!(
        !stats.budget_exhausted,
        "canary: cumulative truncation budget blown — the pipeline test is about to fail"
    );
    // PR 10 rebuilt the two-site update (QR-first reduction) and the
    // long-range gate path (truncating zip-up): both are contracts, not
    // approximations, so this workload's numbers must not move. The
    // budget keeps every discarded weight at exactly zero, and the
    // 30k-shot acceptance under PhiloxRng::new(1, 0) is the same
    // deterministic 0.1691 the pre-overhaul path produced.
    assert_eq!(
        stats.trunc_error, 0.0,
        "canary: encoded-MSD run must be truncation-free under the pinned budget"
    );
    assert!(
        (analysis.acceptance() - 0.1691).abs() < 5e-4,
        "canary: acceptance {:.4} drifted from the pinned 0.1691",
        analysis.acceptance()
    );
}
