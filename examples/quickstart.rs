//! Quickstart: PTSBE through the data-collection service.
//!
//! Builds a 4-qubit GHZ circuit with depolarizing noise, pre-samples
//! trajectories with the paper's Algorithm 2, and submits the workload
//! to the [`ShotService`] — which compiles once into its artifact cache,
//! routes the job to the fastest valid engine, and streams labeled
//! records into an in-memory sink. A second submission of the same spec
//! runs entirely from cache (the hit counters prove it).
//!
//! Run: `cargo run --release --example quickstart`

use ptsbe::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. The noisy circuit (paper Fig. 2: coherent gates + noise sites).
    let n = 4;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(0.01))
        .with_default_2q(channels::depolarizing2(0.02))
        .apply(&c);
    println!(
        "circuit: {} qubits, {} gates, {} noise sites",
        noisy.n_qubits(),
        c.gate_count(),
        noisy.n_sites()
    );

    // 2. PTS: pre-sample unique Kraus sets, each with a big shot budget.
    let mut rng = PhiloxRng::new(2025, 0);
    let sampler = ProbabilisticPts {
        n_samples: 500,
        shots_per_trajectory: 20_000,
        dedup: true,
    };
    let plan = sampler.sample_plan(&noisy, &mut rng);
    println!(
        "PTS plan: {} unique trajectories, {} total shots, coverage {:.4}",
        plan.n_trajectories(),
        plan.total_shots(),
        plan.coverage(&noisy)
    );

    // 3. The service: compile-cache + adaptive routing + worker pool.
    //    One spec, submitted twice — the second run is the warm path.
    //    Spans mode so the cold/warm comparison decomposes per stage
    //    (PTSBE_TELEMETRY still wins if set).
    let service: ShotService = ShotService::start(ServiceConfig {
        telemetry: Some(TelemetryConfig::from_env().unwrap_or_else(TelemetryConfig::spans)),
        ..ServiceConfig::default()
    });
    let spec = JobSpec::new("quickstart-ghz", Arc::new(noisy), Arc::new(plan), 7);

    let (sink, store) = MemorySink::new();
    let report = service
        .submit(spec.clone(), Box::new(sink))
        .expect("submit")
        .wait();
    println!(
        "\ncold job: engine = {} ({}), {} records / {} shots in {:.1} ms ({:.2e} shots/s)",
        report.engine.map(EngineKind::label).unwrap_or("?"),
        report.route_reason,
        report.records,
        report.shots,
        report.wall.as_secs_f64() * 1e3,
        report.shots_per_sec(),
    );

    let (sink2, _) = MemorySink::new();
    let warm = service
        .submit(spec, Box::new(sink2))
        .expect("submit")
        .wait();
    let stats = service.cache_stats();
    println!(
        "warm job: {:.1} ms — cache hits {} / misses {} (hit rate {:.0}%): zero recompilation",
        warm.wall.as_secs_f64() * 1e3,
        stats.compile_hits() + stats.tree_hits,
        stats.compile_misses() + stats.tree_misses,
        stats.hit_rate() * 100.0,
    );

    // Where did the wall time go? Job ids are assigned in submission
    // order (cold = 1, warm = 2); each job's spans decompose its wall.
    let telemetry = ptsbe::telemetry::snapshot();
    if telemetry.mode == TelemetryMode::Spans {
        println!("\nper-stage breakdown (cold vs. warm):");
        println!("  {:<14} {:>12} {:>12}", "stage", "cold", "warm");
        for stage in Stage::ALL {
            let cold = telemetry.job_stage_nanos(1, stage);
            let hot = telemetry.job_stage_nanos(2, stage);
            if cold == 0 && hot == 0 {
                continue;
            }
            println!(
                "  {:<14} {:>12} {:>12}",
                stage.label(),
                ptsbe::telemetry::fmt_nanos(cold),
                ptsbe::telemetry::fmt_nanos(hot),
            );
        }
        println!("  (warm has no compile/plan rows: the cache ate them)");
    }
    if let Ok(path) = std::env::var("PTSBE_TRACE_OUT") {
        std::fs::write(&path, telemetry.chrome_trace()).expect("write trace");
        println!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }

    // The full service report: every counter + stage latency table.
    println!("\n{}", service.metrics().summary());

    // 4. What came out: labeled data.
    let store = store.lock().unwrap();
    println!("\nfirst trajectories (provenance labels):");
    for t in store.records.iter().take(5) {
        let labels: Vec<String> = t
            .meta
            .errors
            .iter()
            .map(|e| format!("{}@q{:?}(op{})", e.label, e.qubits, e.op_index))
            .collect();
        println!(
            "  #{:<3} p={:.2e}  errors: [{}]  shots: {}",
            t.meta.traj_id,
            t.meta.realized_prob,
            labels.join(", "),
            t.shots.len()
        );
    }

    // 5. Physics check: the weighted outcome distribution still looks
    //    GHZ. Normalize by the plan's covered probability mass (like
    //    estimators::weighted_histogram does) so bins are probabilities.
    let mut hist = vec![0.0f64; 1 << n];
    let covered: f64 = store.records.iter().map(|t| t.meta.realized_prob).sum();
    for t in &store.records {
        let shots = t.decode_shots().expect("hex");
        let w = t.meta.realized_prob / (covered * shots.len() as f64);
        for s in shots {
            hist[s as usize] += w;
        }
    }
    println!("\nweighted distribution (top outcomes):");
    let mut idx: Vec<usize> = (0..hist.len()).collect();
    idx.sort_by(|&a, &b| hist[b].partial_cmp(&hist[a]).unwrap());
    for &i in idx.iter().take(4) {
        println!("  |{i:04b}⟩  p = {:.4}", hist[i]);
    }
}
