//! Quickstart: PTSBE on a noisy GHZ circuit.
//!
//! Builds a 4-qubit GHZ circuit with depolarizing noise, pre-samples
//! trajectories with the paper's Algorithm 2, batch-executes them on the
//! statevector backend, and prints the labeled output — the whole PTSBE
//! pipeline in ~60 lines.
//!
//! Run: `cargo run --release --example quickstart`

use ptsbe::prelude::*;

fn main() {
    // 1. The noisy circuit (paper Fig. 2: coherent gates + noise sites).
    let n = 4;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(0.01))
        .with_default_2q(channels::depolarizing2(0.02))
        .apply(&c);
    println!(
        "circuit: {} qubits, {} gates, {} noise sites",
        noisy.n_qubits(),
        c.gate_count(),
        noisy.n_sites()
    );

    // 2. PTS: pre-sample unique Kraus sets, each with a big shot budget.
    let mut rng = PhiloxRng::new(2025, 0);
    let sampler = ProbabilisticPts {
        n_samples: 500,
        shots_per_trajectory: 20_000,
        dedup: true,
    };
    let plan = sampler.sample_plan(&noisy, &mut rng);
    println!(
        "PTS plan: {} unique trajectories, {} total shots, coverage {:.4}",
        plan.n_trajectories(),
        plan.total_shots(),
        plan.coverage(&noisy)
    );

    // 3. BE: one preparation per trajectory, bulk sampling, provenance.
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);

    // 4. What came out: labeled data.
    println!("\nfirst trajectories (provenance labels):");
    for t in result.trajectories.iter().take(5) {
        let labels: Vec<String> = t
            .meta
            .errors
            .iter()
            .map(|e| format!("{}@q{:?}(op{})", e.label, e.qubits, e.op_index))
            .collect();
        println!(
            "  #{:<3} p={:.2e}  errors: [{}]  shots: {}",
            t.meta.traj_id,
            t.meta.realized_prob,
            labels.join(", "),
            t.shots.len()
        );
    }

    // 5. Physics check: the weighted outcome distribution still looks GHZ.
    let hist = estimators::weighted_histogram(&result, 1 << n);
    println!("\nweighted distribution (top outcomes):");
    let mut idx: Vec<usize> = (0..hist.len()).collect();
    idx.sort_by(|&a, &b| hist[b].partial_cmp(&hist[a]).unwrap());
    for &i in idx.iter().take(4) {
        println!("  |{i:04b}⟩  p = {:.4}", hist[i]);
    }
    println!(
        "\nunique shot fraction: {:.2e} (Fig. 4 right-axis analog; tiny here\n\
         because a 4-qubit register has only 16 distinguishable outcomes)",
        result.unique_fraction()
    );
}
