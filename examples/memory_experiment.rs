//! QEC memory experiment: the decoder-training workload end-to-end.
//!
//! Repeated syndrome extraction on a Steane block (the AlphaQubit-style
//! setting the paper's §2.3 targets), run through *both* data-collection
//! stacks: the Clifford frame sampler (Stim's domain — this circuit is
//! all-Clifford) and universal PTSBE (which would also accept non-Clifford
//! variants). Prints the logical-error-rate-vs-p curve and the throughput
//! gap — the paper's Fig. 1 story in one table.
//!
//! Run: `cargo run --release --example memory_experiment`

use ptsbe::prelude::*;
use ptsbe::qec::memory::{logical_error_rate, MemoryExperiment};
use ptsbe::stabilizer::FrameSampler;
use std::time::Instant;

fn main() {
    let code = codes::steane();
    let rounds = 2;
    let exp = MemoryExperiment::new(&code, rounds, true);
    let decoder = LookupDecoder::new(&code);
    println!(
        "workload: {} memory, {} rounds, {} qubits ({} data + ancillas), {} gates",
        code.name(),
        rounds,
        exp.circuit.n_qubits(),
        exp.n_data,
        exp.circuit.gate_count()
    );

    let shots = 200_000;
    println!(
        "\n{:>10} | {:>12} {:>10} | {:>12} {:>10} | {:>12}",
        "p", "LER(frames)", "reject", "LER(PTSBE)", "reject", "frame_MHz"
    );
    for p in [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2] {
        let noisy = NoiseModel::new()
            .with_default_1q(channels::depolarizing(p))
            .with_default_2q(channels::depolarizing2(p))
            .apply(&exp.circuit);

        // Clifford stack: bulk frame sampling.
        let mut rng = PhiloxRng::new(0xEE0, 0);
        let sampler = FrameSampler::new(&noisy, &mut rng).expect("Clifford circuit");
        let t0 = Instant::now();
        let frames = sampler.sample(shots, &mut rng);
        let frame_rate = shots as f64 / t0.elapsed().as_secs_f64() / 1e6;
        let (ler_f, rej_f) = logical_error_rate(&exp, &decoder, frames.shots.iter());

        // Universal stack: PTSBE on the statevector backend (fewer shots —
        // it pays for universality; same physics).
        let sv_shots = 40_000;
        let backend = SvBackend::<f32>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng2 = PhiloxRng::new(0xEE1, 0);
        let plan = ProbabilisticPts {
            n_samples: 400,
            shots_per_trajectory: sv_shots / 400,
            dedup: false,
        }
        .sample_plan(&noisy, &mut rng2);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let all: Vec<u128> = result.all_shots().collect();
        let (ler_p, rej_p) = logical_error_rate(&exp, &decoder, all.iter());

        println!(
            "{p:>10.0e} | {ler_f:>12.3e} {rej_f:>10.4} | {ler_p:>12.3e} {rej_p:>10.4} | {frame_rate:>12.2}"
        );
    }
    println!("\nBoth stacks see the same physics (the circuit is Clifford); the frame");
    println!("sampler collects data orders of magnitude faster, but only PTSBE could");
    println!("run this experiment with, e.g., coherent rotation errors or T gates in");
    println!("the syndrome schedule — the paper's universality argument.");
}
