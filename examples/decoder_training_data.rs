//! Generating labeled decoder-training data (the paper's §2.3
//! application).
//!
//! Encodes logical |0⟩ in the Steane code under circuit-level
//! depolarizing noise, collects a PTSBE dataset whose shots carry
//! ground-truth error labels, writes it to JSONL, reads it back, and
//! evaluates a lookup decoder against the labels — the full
//! data-generation → training-corpus → decoder-evaluation loop an
//! AlphaQubit-style pipeline would consume.
//!
//! Run: `cargo run --release --example decoder_training_data`

use ptsbe::dataset::{decoder_export, jsonl, record};
use ptsbe::prelude::*;
use ptsbe::qec::encoding_circuit;

fn main() {
    // 1. Workload: Steane-encoded |0⟩ memory, transversal measurement.
    let code = codes::steane();
    let enc = encoding_circuit(&code);
    let mut c = enc.circuit.clone();
    c.measure_all();
    let p = 0.01;
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&c);
    println!(
        "workload: {} memory, {} gates, {} noise sites, p = {p}",
        code.name(),
        c.gate_count(),
        noisy.n_sites()
    );

    // 2. PTSBE dataset with provenance labels.
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(4242, 0);
    let plan = ProbabilisticPts {
        n_samples: 3_000,
        shots_per_trajectory: 200,
        dedup: true,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
    println!(
        "dataset: {} trajectories, {} shots, unique fraction {:.3}",
        result.trajectories.len(),
        result.total_shots(),
        result.unique_fraction()
    );

    // 3. Persist to JSONL and read back (round-trip check).
    let header = DatasetHeader {
        workload: "steane-memory".into(),
        n_qubits: noisy.n_qubits(),
        n_measured: 7,
        backend: "statevector-f64".into(),
        seed: 4242,
    };
    let records = record::records_from_batch(&result);
    let mut buf: Vec<u8> = Vec::new();
    jsonl::write(&mut buf, &header, &records).expect("serialize dataset");
    println!("JSONL size: {:.1} KiB", buf.len() as f64 / 1024.0);
    let (_h, loaded) = jsonl::read(std::io::BufReader::new(buf.as_slice())).expect("parse");
    assert_eq!(loaded.len(), records.len());

    // 4. Supervised examples: (measurement record, injected errors).
    let examples = decoder_export::export_examples(&loaded);
    println!("supervised examples: {}", examples.len());

    // 5. Decoder evaluation against ground truth. The label tells us
    //    whether the trajectory's errors flipped the logical state; the
    //    decoder must recover logical 0 whenever the physical error
    //    weight is within its correction radius.
    let decoder = LookupDecoder::new(&code);
    let mut correct = 0usize;
    let mut failures = 0usize;
    let mut rejected = 0usize;
    for ex in &examples {
        let shot = u128::from_str_radix(&ex.shot, 16).expect("hex");
        match decoder.decode(shot) {
            Some(false) => correct += 1,
            Some(true) => failures += 1,
            None => rejected += 1,
        }
    }
    let total = examples.len() as f64;
    println!("\nlookup decoder on labeled shots (true logical = 0):");
    println!(
        "  recovered |0̄⟩ : {:>8}  ({:.3}%)",
        correct,
        100.0 * correct as f64 / total
    );
    println!(
        "  logical error : {:>8}  ({:.3e})",
        failures,
        failures as f64 / total
    );
    println!("  uncorrectable : {:>8}", rejected);

    // 6. The provenance advantage: error weights by trajectory (labels a
    //    physical experiment could never provide).
    let summary = ptsbe::dataset::summary::summarize(&loaded);
    println!(
        "\nper-trajectory error-weight census: {:?}",
        summary.weight_census
    );
    println!("plan probability coverage: {:.4}", summary.coverage);
}
