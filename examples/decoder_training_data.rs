//! Generating labeled decoder-training data (the paper's §2.3
//! application) through the data-collection service.
//!
//! Encodes logical |0⟩ in the Steane code under circuit-level
//! depolarizing noise and submits two dataset jobs to the
//! [`ShotService`]: the first compiles and caches the workload, the
//! second (a fresh seed for a second corpus shard) runs entirely from
//! the warm cache. Records stream into a JSONL sink as lane groups
//! finish; the shard is then read back and a lookup decoder is evaluated
//! against the ground-truth labels — the full data-generation →
//! training-corpus → decoder-evaluation loop an AlphaQubit-style
//! pipeline would consume.
//!
//! Run: `cargo run --release --example decoder_training_data`

use ptsbe::dataset::{decoder_export, jsonl, SharedBuffer};
use ptsbe::prelude::*;
use ptsbe::qec::encoding_circuit;
use std::sync::Arc;

fn main() {
    // 1. Workload: Steane-encoded |0⟩ memory, transversal measurement.
    let code = codes::steane();
    let enc = encoding_circuit(&code);
    let mut c = enc.circuit.clone();
    c.measure_all();
    let p = 0.01;
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&c);
    println!(
        "workload: {} memory, {} gates, {} noise sites, p = {p}",
        code.name(),
        c.gate_count(),
        noisy.n_sites()
    );

    // 2. PTS plan shared by both shards.
    let mut rng = PhiloxRng::new(4242, 0);
    let plan = ProbabilisticPts {
        n_samples: 3_000,
        shots_per_trajectory: 200,
        dedup: true,
    }
    .sample_plan(&noisy, &mut rng);
    let noisy = Arc::new(noisy);
    let plan = Arc::new(plan);

    // 3. Two dataset shards through the service: shard 0 compiles,
    //    shard 1 reuses every cached artifact. Spans mode so the
    //    cold/warm comparison decomposes per stage.
    let service: ShotService = ShotService::start(ServiceConfig {
        telemetry: Some(TelemetryConfig::from_env().unwrap_or_else(TelemetryConfig::spans)),
        ..ServiceConfig::default()
    });
    let mut shard_bytes = Vec::new();
    let mut prev = service.metrics();
    for (shard, seed) in [(0u32, 4242u64), (1, 4243)] {
        let buf = SharedBuffer::new();
        let spec = JobSpec::new(
            format!("steane-memory-shard{shard}"),
            Arc::clone(&noisy),
            Arc::clone(&plan),
            seed,
        );
        let report = service
            .submit(spec, Box::new(JsonlSink::new(buf.clone())))
            .expect("submit")
            .wait();
        // Interval rate over just this shard (shots_per_sec() would be
        // a lifetime mean, diluted by everything before it).
        let now = service.metrics();
        let rate = now.rate_since(&prev);
        prev = now;
        println!(
            "shard {shard}: engine = {} ({}), {} records / {} shots, {:.1} ms ({:.2e} shots/s over this shard)",
            report.engine.map(EngineKind::label).unwrap_or("?"),
            report.route_reason,
            report.records,
            report.shots,
            report.wall.as_secs_f64() * 1e3,
            rate.shots_per_sec,
        );
        shard_bytes.push(buf.bytes());
    }
    let stats = service.cache_stats();
    println!(
        "cache after both shards: {} hits / {} misses — shard 1 recompiled nothing",
        stats.compile_hits() + stats.tree_hits,
        stats.compile_misses() + stats.tree_misses,
    );

    // Per-stage cold/warm decomposition (job ids follow submission
    // order: shard 0 = job 1, shard 1 = job 2).
    let telemetry = ptsbe::telemetry::snapshot();
    if telemetry.mode == TelemetryMode::Spans {
        println!("\nper-stage breakdown (shard 0 = cold, shard 1 = warm):");
        println!("  {:<14} {:>12} {:>12}", "stage", "cold", "warm");
        for stage in Stage::ALL {
            let cold = telemetry.job_stage_nanos(1, stage);
            let hot = telemetry.job_stage_nanos(2, stage);
            if cold == 0 && hot == 0 {
                continue;
            }
            println!(
                "  {:<14} {:>12} {:>12}",
                stage.label(),
                ptsbe::telemetry::fmt_nanos(cold),
                ptsbe::telemetry::fmt_nanos(hot),
            );
        }
    }
    println!("\n{}", service.metrics().summary());

    // 4. Read shard 0 back (round-trip through the streamed JSONL).
    let (header, loaded) =
        jsonl::read(std::io::BufReader::new(&shard_bytes[0][..])).expect("parse");
    println!(
        "shard 0: {:.1} KiB JSONL, backend '{}', {} records",
        shard_bytes[0].len() as f64 / 1024.0,
        header.backend,
        loaded.len()
    );

    // 5. Supervised examples: (measurement record, injected errors).
    let examples = decoder_export::export_examples(&loaded);
    println!("supervised examples: {}", examples.len());

    // 6. Decoder evaluation against ground truth. The label tells us
    //    whether the trajectory's errors flipped the logical state; the
    //    decoder must recover logical 0 whenever the physical error
    //    weight is within its correction radius.
    let decoder = LookupDecoder::new(&code);
    let mut correct = 0usize;
    let mut failures = 0usize;
    let mut rejected = 0usize;
    for ex in &examples {
        let shot = u128::from_str_radix(&ex.shot, 16).expect("hex");
        match decoder.decode(shot) {
            Some(false) => correct += 1,
            Some(true) => failures += 1,
            None => rejected += 1,
        }
    }
    let total = examples.len() as f64;
    println!("\nlookup decoder on labeled shots (true logical = 0):");
    println!(
        "  recovered |0̄⟩ : {:>8}  ({:.3}%)",
        correct,
        100.0 * correct as f64 / total
    );
    println!(
        "  logical error : {:>8}  ({:.3e})",
        failures,
        failures as f64 / total
    );
    println!("  uncorrectable : {:>8}", rejected);

    // 7. The provenance advantage: error weights by trajectory (labels a
    //    physical experiment could never provide).
    let summary = ptsbe::dataset::summary::summarize(&loaded);
    println!(
        "\nper-trajectory error-weight census: {:?}",
        summary.weight_census
    );
    println!("plan probability coverage: {:.4}", summary.coverage);
}
