//! The large tensor-network workload: block-encoded MSD beyond
//! statevector reach.
//!
//! Builds the 5→1 distillation circuit over five distance-5 color-code
//! blocks (95 physical qubits — the documented substitute for the paper's
//! 85; see DESIGN.md), runs PTSBE on the MPS backend, and reports
//! per-block decoding and distillation acceptance. A dense statevector at
//! this size would need 2^95 amplitudes; the MPS handles it on a laptop.
//!
//! Run: `cargo run --release --example large_mps_msd`

use ptsbe::prelude::*;
use std::time::Instant;

fn main() {
    let code = codes::color_code(5);
    let basis = MeasureBasis::Z;
    let (circuit, layout) = msd_encoded(&code, basis);
    println!(
        "workload: 5 × {} → {} physical qubits, {} gates",
        code.name(),
        circuit.n_qubits(),
        circuit.gate_count()
    );

    let p = 1e-3;
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&circuit);
    println!("noise sites: {} (depolarizing p = {p})", noisy.n_sites());

    let config = MpsConfig::new(64).with_cutoff(1e-10);
    let backend = MpsBackend::<f64>::new(&noisy, config, MpsSampleMode::Cached).unwrap();

    // A modest PTS plan: the most likely Kraus sets, large shot batches.
    let mut rng = PhiloxRng::new(5050, 0);
    let plan = TopKPts {
        k: 8,
        shots_per_trajectory: 250,
        min_prob: 0.0,
    }
    .sample_plan(&noisy, &mut rng);
    println!(
        "plan: {} trajectories × {} shots, coverage {:.4}",
        plan.n_trajectories(),
        plan.trajectories[0].shots,
        plan.coverage(&noisy)
    );

    let t0 = Instant::now();
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
    let dt = t0.elapsed();
    println!(
        "executed {} shots in {:.2?} ({:.0} shots/s)",
        result.total_shots(),
        dt,
        result.total_shots() as f64 / dt.as_secs_f64()
    );

    // Distillation analysis with per-block lookup decoding.
    let decoder = LookupDecoder::new(&code);
    let mut analysis = MsdAnalysis::default();
    for t in &result.trajectories {
        for &s in &t.shots {
            analysis.fold(&layout, Some(&decoder), s);
        }
    }
    println!(
        "\ndistillation acceptance (decoded, Z basis): {:.4}",
        analysis.acceptance()
    );
    println!("output-block ⟨Z̄⟩: {:+.4}", analysis.expectation());
    println!("unique shot fraction: {:.4}", result.unique_fraction());
    println!(
        "\nNOTE: at χ = {} the encoded d=5 state is bond-truncated (its exact\n\
         mid-block Schmidt rank reaches 2^9); throughput and pipeline mechanics\n\
         are the point here — exact physics validation runs at the 35-qubit\n\
         Steane scale in tests/msd_encoded_pipeline.rs.",
        config.max_bond
    );
    println!("\n(per-trajectory provenance of the first trajectory)");
    if let Some(t) = result
        .trajectories
        .iter()
        .find(|t| !t.meta.errors.is_empty())
    {
        for e in t.meta.errors.iter().take(6) {
            println!(
                "  {} on qubits {:?} at op {} (channel {})",
                e.label, e.qubits, e.op_index, e.channel
            );
        }
    } else {
        println!("  (top-k plan is dominated by the error-free trajectory)");
    }
}
