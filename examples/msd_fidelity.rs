//! Magic-state distillation fidelity sweep (paper Fig. 3 workload).
//!
//! Runs the bare 5-qubit 5→1 Bravyi–Kitaev protocol across input noise
//! strengths, measuring the output block in all three Pauli bases (as the
//! paper's Fig. 3 does), and compares the PTSBE trajectory estimate with
//! the exact density-matrix oracle: acceptance rate, output Bloch norm,
//! and distilled fidelity vs. the ideal magic direction.
//!
//! Run: `cargo run --release --example msd_fidelity`

use ptsbe::prelude::*;
use ptsbe::qec::msd::{bloch_norm, fidelity_from_bloch};

/// Exact basis expectation + acceptance from the density-matrix oracle.
fn oracle_run(eps: f64, basis: MeasureBasis) -> (f64, f64) {
    let (circuit, layout) = msd_bare(basis);
    let noisy = NoiseModel::new()
        .with_gate_noise("ry", channels::depolarizing(eps))
        .with_noiseless("rz")
        .apply(&circuit);
    let dm = DensityMatrix::evolve(&noisy);
    let probs = dm.probabilities();
    let (mut p_acc, mut p_plus) = (0.0, 0.0);
    for (idx, &p) in probs.iter().enumerate() {
        let shot = idx as u128;
        let mut accept = true;
        let mut out = false;
        for b in 0..5 {
            let parity = layout.block_parity(shot, b);
            if b == layout.output_wire {
                out = parity;
            } else if parity {
                accept = false;
                break;
            }
        }
        if accept {
            p_acc += p;
            if !out {
                p_plus += p;
            }
        }
    }
    let exp = if p_acc > 0.0 {
        2.0 * p_plus / p_acc - 1.0
    } else {
        0.0
    };
    (p_acc, exp)
}

/// PTSBE trajectory estimate of the same quantities.
fn ptsbe_run(eps: f64, basis: MeasureBasis, seed: u64) -> (f64, f64) {
    let (circuit, layout) = msd_bare(basis);
    let noisy = NoiseModel::new()
        .with_gate_noise("ry", channels::depolarizing(eps))
        .with_noiseless("rz")
        .apply(&circuit);
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(seed, 0);
    let plan = ProportionalPts {
        n_samples: 4_000,
        total_shots: 200_000,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor {
        seed,
        parallel: true,
    }
    .execute(&backend, &noisy, &plan);
    let mut analysis = MsdAnalysis::default();
    for t in &result.trajectories {
        for &s in &t.shots {
            analysis.fold(&layout, None, s);
        }
    }
    (analysis.acceptance(), analysis.expectation())
}

fn main() {
    // Reference direction: the ε = 0 output Bloch vector.
    let mut r_ref = [0.0f64; 3];
    for (i, basis) in [MeasureBasis::X, MeasureBasis::Y, MeasureBasis::Z]
        .into_iter()
        .enumerate()
    {
        r_ref[i] = oracle_run(0.0, basis).1;
    }
    println!(
        "ideal output direction: ({:+.4}, {:+.4}, {:+.4}), |r| = {:.6}\n",
        r_ref[0],
        r_ref[1],
        r_ref[2],
        bloch_norm(r_ref)
    );

    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>12}",
        "eps", "acc(orac)", "acc(PTSBE)", "F(oracle)", "F(PTSBE)", "infid(orac)"
    );
    for eps in [0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let mut r_o = [0.0f64; 3];
        let mut r_p = [0.0f64; 3];
        let mut acc_o = 0.0;
        let mut acc_p = 0.0;
        for (i, basis) in [MeasureBasis::X, MeasureBasis::Y, MeasureBasis::Z]
            .into_iter()
            .enumerate()
        {
            let (ao, eo) = oracle_run(eps, basis);
            let (ap, ep) = ptsbe_run(eps, basis, 77 + i as u64);
            r_o[i] = eo;
            r_p[i] = ep;
            acc_o = ao;
            acc_p = ap;
        }
        let f_o = fidelity_from_bloch(r_o, r_ref);
        let f_p = fidelity_from_bloch(r_p, r_ref);
        println!(
            "{eps:>8.3} | {acc_o:>10.4} {acc_p:>10.4} | {f_o:>10.5} {f_p:>10.5} | {:>12.3e}",
            1.0 - f_o
        );
    }
    println!("\n(distilled infidelity grows like O(eps^2..3): error detection of the");
    println!(" distance-3 code removes all single faults; PTSBE tracks the oracle.)");
}
