//! Strategic sampling census (paper §3.1).
//!
//! Runs the whole PTS sampler family on one noisy circuit and prints what
//! each strategy buys: trajectory counts, probability coverage,
//! error-weight mix, and — after batched execution — how well the
//! de-biased estimate matches the exact oracle.
//!
//! Run: `cargo run --release --example sampling_strategies`

use ptsbe::core::pts::{ConstrainedPts, ReweightedPts};
use ptsbe::core::stats::tvd;
use ptsbe::prelude::*;

fn main() {
    // Workload: noisy 3-qubit repetition-ish parity circuit with a
    // non-Clifford twist.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).measure_all();
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(0.03))
        .with_default_2q(channels::depolarizing(0.03))
        .apply(&c);
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let exec = BatchedExecutor::default();

    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "sampler", "trajs", "shots", "coverage", "maxweight", "TVD"
    );

    let report = |name: &str, plan: PtsPlan| {
        let result = exec.execute(&backend, &noisy, &plan);
        let hist = estimators::weighted_histogram(&result, 8);
        let d = tvd(&hist, &exact);
        println!(
            "{:<16} {:>8} {:>10} {:>10.4} {:>10} {:>10.4}",
            name,
            plan.n_trajectories(),
            plan.total_shots(),
            plan.coverage(&noisy),
            plan.max_error_weight(&noisy),
            d
        );
    };

    let mut rng = PhiloxRng::new(99, 0);

    report(
        "algorithm2",
        ProbabilisticPts {
            n_samples: 2_000,
            shots_per_trajectory: 2_000,
            dedup: true,
        }
        .sample_plan(&noisy, &mut rng),
    );
    report(
        "proportional",
        ProportionalPts {
            n_samples: 2_000,
            total_shots: 400_000,
        }
        .sample_plan(&noisy, &mut rng),
    );
    report(
        "top-64",
        TopKPts {
            k: 64,
            shots_per_trajectory: 2_000,
            min_prob: 0.0,
        }
        .sample_plan(&noisy, &mut rng),
    );
    report(
        "band(1e-4..1e-2)",
        BandPts {
            n_samples: 4_000,
            shots_per_trajectory: 2_000,
            p_min: 1e-4,
            p_max: 1e-2,
        }
        .sample_plan(&noisy, &mut rng),
    );
    report(
        "exhaustive",
        ExhaustivePts {
            shots_per_trajectory: 500,
            max_trajectories: 1 << 14,
        }
        .sample_plan(&noisy, &mut rng),
    );
    report(
        "weight==1 only",
        ConstrainedPts {
            base: ProbabilisticPts {
                n_samples: 3_000,
                shots_per_trajectory: 2_000,
                dedup: true,
            },
            allowed_sites: None,
            weight_range: (1, 1),
        }
        .sample_plan(&noisy, &mut rng),
    );
    report(
        "twirled",
        ReweightedPts::twirled(&noisy, 2_000, 2_000).sample_plan(&noisy, &mut rng),
    );

    println!("\nNotes:");
    println!("- 'coverage' is the probability mass the plan touches; the weighted");
    println!("  estimator is exact as coverage → 1 (exhaustive row: TVD ≈ sampling noise).");
    println!("- band/constrained rows show tail-targeted data collection: coverage is");
    println!("  tiny by design, yet every collected shot is a rare-error specimen —");
    println!("  the paper's point about tailored QEC datasets.");
}
