//! Equivalence suite for the exact-identity Kraus-branch skip.
//!
//! Under a low-noise unitary-mixture workload almost every resolved site
//! is the identity branch; since this PR all execution paths detect that
//! at compile time and elide the apply. These tests pin the two promises
//! the optimization makes: (1) the skip decision is taken *consistently*
//! — scalar, tree, batch-major and MPS paths remain bitwise aligned with
//! each other — and (2) skipping is a mathematical no-op: an all-identity
//! trajectory prepares exactly the noiseless state, and the weighted
//! outcome distribution still matches the density-matrix oracle.

use ptsbe::prelude::*;
use ptsbe::statevector::exec as sv_exec;

/// Low-noise unitary-mixture workload with non-Clifford content, so no
/// engine shortcut hides the skip path.
fn low_noise_t_layer(p: f64) -> (Circuit, NoisyCircuit) {
    let mut c = Circuit::new(4);
    c.h(0).t(0).cx(0, 1).t(1).cx(1, 2).sx(2).cx(2, 3).t(3);
    c.measure_all();
    let nc = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing2(p))
        .apply(&c);
    (c, nc)
}

#[test]
fn compiled_sites_flag_identity_branches() {
    let (_, nc) = low_noise_t_layer(1e-3);
    let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    assert!(nc.n_sites() > 0);
    for site in backend.compiled().sites() {
        assert!(site.is_unitary_mixture);
        // Depolarizing channels: branch 0 is the exact identity, and
        // only branch 0.
        assert!(site.skip_identity[0], "identity branch must be flagged");
        assert!(
            site.skip_identity[1..].iter().all(|&f| !f),
            "error branches must not be flagged"
        );
    }
}

#[test]
fn all_sv_paths_agree_bitwise_on_low_noise_mixture_workload() {
    let (_, nc) = low_noise_t_layer(1e-3);
    let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(0xA5, 0);
    // dedup off: repeated identity assignments exercise the uniform
    // skip; occasional error draws exercise the masked per-lane skip.
    let plan = ProbabilisticPts {
        n_samples: 80,
        shots_per_trajectory: 25,
        dedup: false,
    }
    .sample_plan(&nc, &mut rng);
    let flat = BatchedExecutor {
        seed: 5,
        parallel: false,
    }
    .execute(&backend, &nc, &plan);
    let tree = TreeExecutor {
        seed: 5,
        parallel: true,
    }
    .execute(&backend, &nc, &plan);
    for lanes in [0usize, 3, 16] {
        let batch = BatchMajorExecutor {
            seed: 5,
            parallel: false,
            lanes,
            ..Default::default()
        }
        .execute(&backend, &nc, &plan);
        for ((a, b), c) in flat
            .trajectories
            .iter()
            .zip(&tree.trajectories)
            .zip(&batch.trajectories)
        {
            assert_eq!(a.shots, b.shots, "tree vs flat must stay bitwise");
            assert_eq!(a.shots, c.shots, "batch-major vs flat must stay bitwise");
            assert_eq!(
                a.meta.realized_prob.to_bits(),
                b.meta.realized_prob.to_bits()
            );
            assert_eq!(
                a.meta.realized_prob.to_bits(),
                c.meta.realized_prob.to_bits()
            );
        }
    }
}

#[test]
fn mps_tree_and_flat_agree_bitwise_with_skip() {
    let (_, nc) = low_noise_t_layer(5e-3);
    let backend = MpsBackend::<f64>::new(
        &nc,
        MpsConfig::exact().with_max_bond(32),
        MpsSampleMode::Cached,
    )
    .unwrap();
    let mut rng = PhiloxRng::new(0xA6, 0);
    let plan = ProbabilisticPts {
        n_samples: 30,
        shots_per_trajectory: 10,
        dedup: false,
    }
    .sample_plan(&nc, &mut rng);
    let flat = BatchedExecutor {
        seed: 6,
        parallel: false,
    }
    .execute(&backend, &nc, &plan);
    let tree = TreeExecutor {
        seed: 6,
        parallel: false,
    }
    .execute(&backend, &nc, &plan);
    for (a, b) in flat.trajectories.iter().zip(&tree.trajectories) {
        assert_eq!(a.shots, b.shots, "MPS tree vs flat must stay bitwise");
    }
}

#[test]
fn identity_trajectory_prepares_exact_noiseless_state() {
    // With every identity branch skipped, the all-identity trajectory
    // applies literally the same kernel sequence as the noise-free
    // circuit (compare unfused so segmentation cannot regroup gates):
    // the prepared amplitudes must be bit-for-bit the pure state's.
    let (pure, nc) = low_noise_t_layer(1e-2);
    let noisy_compiled = sv_exec::compile_with::<f64>(&nc, false).unwrap();
    let pure_nc = NoisyCircuit::from_circuit(pure);
    let pure_compiled = sv_exec::compile_with::<f64>(&pure_nc, false).unwrap();

    let ident = nc.identity_assignment().unwrap();
    let (noisy_state, p) = sv_exec::prepare(&noisy_compiled, &ident);
    let (pure_state, _) = sv_exec::prepare(&pure_compiled, &[]);
    assert!(p > 0.0 && p < 1.0);
    for (a, b) in noisy_state.amplitudes().iter().zip(pure_state.amplitudes()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
}

#[test]
fn skip_preserves_physics_against_density_matrix_oracle() {
    // Small circuit, exhaustive plan: the importance-weighted histogram
    // over every trajectory must still reproduce the exact noisy
    // distribution with identity branches skipped.
    let mut c = Circuit::new(2);
    c.h(0).t(0).cx(0, 1).measure_all();
    let nc = NoiseModel::new()
        .with_default_1q(channels::depolarizing(0.08))
        .apply(&c);
    let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(0xA7, 0);
    let plan = ExhaustivePts {
        shots_per_trajectory: 4000,
        max_trajectories: 100,
    }
    .sample_plan(&nc, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &nc, &plan);
    let mut est = [0.0f64; 4];
    for t in &result.trajectories {
        let w = t.meta.realized_prob / t.shots.len() as f64;
        for &s in &t.shots {
            est[s as usize] += w;
        }
    }
    let exact = DensityMatrix::evolve(&nc).probabilities();
    for i in 0..4 {
        assert!(
            (est[i] - exact[i]).abs() < 0.02,
            "outcome {i}: est {} vs exact {}",
            est[i],
            exact[i]
        );
    }
}
