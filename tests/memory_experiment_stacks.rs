//! The memory-experiment workload through both data-collection stacks:
//! the Clifford frame sampler and universal PTSBE must report the same
//! logical error rate, and detectors must behave.

use ptsbe::prelude::*;
use ptsbe::qec::memory::{logical_error_rate, MemoryExperiment};
use ptsbe::stabilizer::FrameSampler;

#[test]
fn frame_and_ptsbe_agree_on_logical_error_rate() {
    let code = codes::steane();
    let exp = MemoryExperiment::new(&code, 1, false);
    let decoder = LookupDecoder::new(&code);
    let p = 5e-3;
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing2(p))
        .apply(&exp.circuit);

    // Stack 1: frame sampler.
    let mut rng = PhiloxRng::new(0xABCD, 0);
    let sampler = FrameSampler::new(&noisy, &mut rng).unwrap();
    let shots_f = 120_000;
    let frames = sampler.sample(shots_f, &mut rng);
    let (ler_frames, rej_f) = logical_error_rate(&exp, &decoder, frames.shots.iter());

    // Stack 2: PTSBE statevector, through the prefix tree — 30k one-shot
    // trajectories at p = 5e-3 share almost their entire identity prefix,
    // and TreeExecutor output is bitwise identical to the flat executor.
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng2 = PhiloxRng::new(0xABCE, 0);
    let plan = ProbabilisticPts {
        n_samples: 30_000,
        shots_per_trajectory: 1,
        dedup: false,
    }
    .sample_plan(&noisy, &mut rng2);
    let result = TreeExecutor::default().execute(&backend, &noisy, &plan);
    let all: Vec<u128> = result.all_shots().collect();
    let (ler_ptsbe, rej_p) = logical_error_rate(&exp, &decoder, all.iter());

    // Same physics: rates agree within combined binomial noise.
    let sigma = (ler_frames.max(1e-5) / 30_000.0).sqrt() * 4.0 + 2e-3;
    assert!(
        (ler_frames - ler_ptsbe).abs() < sigma.max(0.004),
        "frame LER {ler_frames} vs PTSBE LER {ler_ptsbe}"
    );
    // Reject rates also comparable.
    assert!((rej_f - rej_p).abs() < 0.02, "reject {rej_f} vs {rej_p}");
}

#[test]
fn detectors_fire_only_under_noise() {
    let code = codes::steane();
    let exp = MemoryExperiment::new(&code, 2, true);
    // Noiseless via PTSBE identity trajectory.
    let clean = NoiseModel::new().apply(&exp.circuit);
    let backend = SvBackend::<f64>::new(&clean, SamplingStrategy::Auto).unwrap();
    let plan = ptsbe::core::plan::PtsPlan {
        trajectories: vec![ptsbe::core::plan::PlannedTrajectory {
            choices: vec![],
            shots: 2_000,
        }],
    };
    let result = BatchedExecutor::default().execute(&backend, &clean, &plan);
    for s in result.all_shots() {
        for d in exp.detectors(s) {
            assert_eq!(d, 0, "noiseless detector fired");
        }
        assert!(!exp.raw_logical(s));
    }

    // With noise, some detectors fire.
    let noisy = NoiseModel::new()
        .with_default_2q(channels::depolarizing2(0.02))
        .apply(&exp.circuit);
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(0xABD0, 0);
    let plan = ProbabilisticPts {
        n_samples: 2_000,
        shots_per_trajectory: 1,
        dedup: false,
    }
    .sample_plan(&noisy, &mut rng);
    let result = TreeExecutor::default().execute(&backend, &noisy, &plan);
    let fired = result
        .all_shots()
        .filter(|&s| exp.detectors(s).iter().any(|&d| d != 0))
        .count();
    assert!(fired > 0, "no detectors fired under 2% depolarizing noise");
}
