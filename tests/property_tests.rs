//! Property-based tests over the PTSBE invariants (proptest).

use proptest::prelude::*;
use ptsbe::core::stats::{histogram, tvd};
use ptsbe::prelude::*;

/// Random small noisy circuit strategy: (n_qubits, gate recipe, noise p).
fn circuit_strategy() -> impl Strategy<Value = (usize, Vec<(u8, usize, usize)>, f64)> {
    (2usize..5).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0u8..6, 0..n, 0..n), 1..12),
            0.0..0.3f64,
        )
    })
}

fn build(n: usize, recipe: &[(u8, usize, usize)], p: f64) -> NoisyCircuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b) in recipe {
        match kind {
            0 => {
                c.h(a);
            }
            1 => {
                c.t(a);
            }
            2 => {
                c.sx(a);
            }
            3 => {
                c.rz(a, 0.3 + a as f64);
            }
            4 if a != b => {
                c.cx(a, b);
            }
            _ if a != b => {
                c.cz(a, b);
            }
            _ => {
                c.s(a);
            }
        }
    }
    c.measure_all();
    NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PTSBE with exhaustive plans reconstructs the exact distribution on
    /// random circuits (within shot noise).
    #[test]
    fn exhaustive_ptsbe_matches_oracle((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        prop_assume!(noisy.n_sites() <= 6); // keep 4^sites tractable
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(940, 0);
        let plan = ExhaustivePts { shots_per_trajectory: 500, max_trajectories: 1 << 13 }
            .sample_plan(&noisy, &mut rng);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let hist = ptsbe::core::estimators::weighted_histogram(&result, 1 << n);
        let exact = DensityMatrix::evolve(&noisy).probabilities();
        let d = tvd(&hist, &exact);
        prop_assert!(d < 0.06, "TVD {d}");
    }

    /// Realized trajectory probabilities are a distribution over the
    /// exhaustive plan.
    #[test]
    fn realized_probs_normalize((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        prop_assume!(noisy.n_sites() <= 6);
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(941, 0);
        let plan = ExhaustivePts { shots_per_trajectory: 1, max_trajectories: 1 << 13 }
            .sample_plan(&noisy, &mut rng);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let total: f64 = result.trajectories.iter().map(|t| t.meta.realized_prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "Σ p_α = {total}");
        for t in &result.trajectories {
            prop_assert!(t.meta.realized_prob >= -1e-12);
        }
    }

    /// Baseline (Algorithm 1) and PTSBE sample the same distribution on
    /// random unitary-mixture circuits.
    #[test]
    fn baseline_equals_ptsbe((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let shots = 8_000;
        let base = run_baseline_sv::<f64>(&noisy, shots, 942);
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(943, 0);
        let plan = ProbabilisticPts { n_samples: shots, shots_per_trajectory: 1, dedup: false }
            .sample_plan(&noisy, &mut rng);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let h1 = histogram(base.iter().copied(), 1 << n);
        let h2 = histogram(result.all_shots(), 1 << n);
        let d = tvd(&h1, &h2);
        prop_assert!(d < 0.06, "TVD {d}");
    }

    /// Plans never allocate invalid Kraus indices, and provenance labels
    /// match the choices.
    #[test]
    fn plans_are_well_formed((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let mut rng = PhiloxRng::new(944, 0);
        for plan in [
            ProbabilisticPts { n_samples: 200, shots_per_trajectory: 2, dedup: true }
                .sample_plan(&noisy, &mut rng),
            TopKPts { k: 20, shots_per_trajectory: 2, min_prob: 0.0 }
                .sample_plan(&noisy, &mut rng),
        ] {
            for t in &plan.trajectories {
                prop_assert_eq!(t.choices.len(), noisy.n_sites());
                for (site, &k) in noisy.sites().iter().zip(&t.choices) {
                    prop_assert!(k < site.channel.n_ops());
                }
                let meta = ptsbe::core::TrajectoryMeta::from_assignment(&noisy, 0, &t.choices);
                for ev in &meta.errors {
                    prop_assert_eq!(ev.kraus_index, t.choices[ev.site_id]);
                }
            }
        }
    }

    /// Trie construction preserves the plan: total shots, the trajectory
    /// multiset (every plan index appears at exactly one leaf), and every
    /// node's representative prefix spells its path. Sharing can only
    /// reduce work, never below one edge per distinct assignment.
    #[test]
    fn plan_tree_preserves_plan((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let mut rng = PhiloxRng::new(945, 0);
        let plan = ProbabilisticPts { n_samples: 150, shots_per_trajectory: 3, dedup: false }
            .sample_plan(&noisy, &mut rng);
        let tree = PtsPlanTree::from_plan(&plan);

        // Total shots preserved.
        prop_assert_eq!(tree.total_shots(&plan), plan.total_shots());

        // Trajectory multiset preserved: leaf indices are a permutation
        // of plan indices, and each leaf's assignment matches its path.
        let mut leaf_indices = tree.leaf_plan_indices();
        prop_assert_eq!(leaf_indices.len(), plan.n_trajectories());
        leaf_indices.sort_unstable();
        prop_assert_eq!(
            leaf_indices,
            (0..plan.n_trajectories()).collect::<Vec<_>>()
        );

        // Edge-count bounds: at most one edge per trajectory-site pair;
        // at least one full path plus one edge per extra distinct
        // assignment.
        let distinct: std::collections::HashSet<&[usize]> =
            plan.trajectories.iter().map(|t| t.choices.as_slice()).collect();
        prop_assert!(tree.n_edges() <= tree.flat_prep_ops());
        if noisy.n_sites() > 0 && !plan.trajectories.is_empty() {
            prop_assert!(tree.n_edges() >= noisy.n_sites() + distinct.len() - 1);
        }
        prop_assert_eq!(
            tree.prep_ops_saved(),
            tree.flat_prep_ops() - tree.n_edges()
        );

        // Walking the tree reproduces each leaf's full assignment.
        fn walk(
            tree: &PtsPlanTree,
            plan: &PtsPlan,
            node: usize,
            path: &mut Vec<usize>,
        ) -> Result<(), proptest::TestCaseError> {
            let nref = tree.node(node);
            for &idx in &nref.leaves {
                prop_assert_eq!(&plan.trajectories[idx].choices, path);
            }
            for &(branch, child) in &nref.children {
                path.push(branch);
                walk(tree, plan, child, path)?;
                path.pop();
            }
            Ok(())
        }
        walk(&tree, &plan, tree.root(), &mut Vec::new())?;
    }
}
