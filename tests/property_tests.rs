//! Property-based tests over the PTSBE invariants (proptest).

use proptest::prelude::*;
use ptsbe::circuit::fusion::{self, FusedKernel};
use ptsbe::core::stats::{histogram, tvd};
use ptsbe::math::Matrix;
use ptsbe::prelude::*;

/// Random small noisy circuit strategy: (n_qubits, gate recipe, noise p).
fn circuit_strategy() -> impl Strategy<Value = (usize, Vec<(u8, usize, usize)>, f64)> {
    (2usize..5).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0u8..6, 0..n, 0..n), 1..12),
            0.0..0.3f64,
        )
    })
}

fn build(n: usize, recipe: &[(u8, usize, usize)], p: f64) -> NoisyCircuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b) in recipe {
        match kind {
            0 => {
                c.h(a);
            }
            1 => {
                c.t(a);
            }
            2 => {
                c.sx(a);
            }
            3 => {
                c.rz(a, 0.3 + a as f64);
            }
            4 if a != b => {
                c.cx(a, b);
            }
            _ if a != b => {
                c.cz(a, b);
            }
            _ => {
                c.s(a);
            }
        }
    }
    c.measure_all();
    NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PTSBE with exhaustive plans reconstructs the exact distribution on
    /// random circuits (within shot noise).
    #[test]
    fn exhaustive_ptsbe_matches_oracle((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        prop_assume!(noisy.n_sites() <= 6); // keep 4^sites tractable
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(940, 0);
        let plan = ExhaustivePts { shots_per_trajectory: 500, max_trajectories: 1 << 13 }
            .sample_plan(&noisy, &mut rng);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let hist = ptsbe::core::estimators::weighted_histogram(&result, 1 << n);
        let exact = DensityMatrix::evolve(&noisy).probabilities();
        let d = tvd(&hist, &exact);
        prop_assert!(d < 0.06, "TVD {d}");
    }

    /// Realized trajectory probabilities are a distribution over the
    /// exhaustive plan.
    #[test]
    fn realized_probs_normalize((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        prop_assume!(noisy.n_sites() <= 6);
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(941, 0);
        let plan = ExhaustivePts { shots_per_trajectory: 1, max_trajectories: 1 << 13 }
            .sample_plan(&noisy, &mut rng);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let total: f64 = result.trajectories.iter().map(|t| t.meta.realized_prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "Σ p_α = {total}");
        for t in &result.trajectories {
            prop_assert!(t.meta.realized_prob >= -1e-12);
        }
    }

    /// Baseline (Algorithm 1) and PTSBE sample the same distribution on
    /// random unitary-mixture circuits.
    #[test]
    fn baseline_equals_ptsbe((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let shots = 8_000;
        let base = run_baseline_sv::<f64>(&noisy, shots, 942);
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(943, 0);
        let plan = ProbabilisticPts { n_samples: shots, shots_per_trajectory: 1, dedup: false }
            .sample_plan(&noisy, &mut rng);
        let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
        let h1 = histogram(base.iter().copied(), 1 << n);
        let h2 = histogram(result.all_shots(), 1 << n);
        let d = tvd(&h1, &h2);
        prop_assert!(d < 0.06, "TVD {d}");
    }

    /// Plans never allocate invalid Kraus indices, and provenance labels
    /// match the choices.
    #[test]
    fn plans_are_well_formed((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let mut rng = PhiloxRng::new(944, 0);
        for plan in [
            ProbabilisticPts { n_samples: 200, shots_per_trajectory: 2, dedup: true }
                .sample_plan(&noisy, &mut rng),
            TopKPts { k: 20, shots_per_trajectory: 2, min_prob: 0.0 }
                .sample_plan(&noisy, &mut rng),
        ] {
            for t in &plan.trajectories {
                prop_assert_eq!(t.choices.len(), noisy.n_sites());
                for (site, &k) in noisy.sites().iter().zip(&t.choices) {
                    prop_assert!(k < site.channel.n_ops());
                }
                let meta = ptsbe::core::TrajectoryMeta::from_assignment(&noisy, 0, &t.choices);
                for ev in &meta.errors {
                    prop_assert_eq!(ev.kraus_index, t.choices[ev.site_id]);
                }
            }
        }
    }

    /// Trie construction preserves the plan: total shots, the trajectory
    /// multiset (every plan index appears at exactly one leaf), and every
    /// node's representative prefix spells its path. Sharing can only
    /// reduce work, never below one edge per distinct assignment.
    #[test]
    fn plan_tree_preserves_plan((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let mut rng = PhiloxRng::new(945, 0);
        let plan = ProbabilisticPts { n_samples: 150, shots_per_trajectory: 3, dedup: false }
            .sample_plan(&noisy, &mut rng);
        let tree = PtsPlanTree::from_plan(&plan);

        // Total shots preserved.
        prop_assert_eq!(tree.total_shots(&plan), plan.total_shots());

        // Trajectory multiset preserved: leaf indices are a permutation
        // of plan indices, and each leaf's assignment matches its path.
        let mut leaf_indices = tree.leaf_plan_indices();
        prop_assert_eq!(leaf_indices.len(), plan.n_trajectories());
        leaf_indices.sort_unstable();
        prop_assert_eq!(
            leaf_indices,
            (0..plan.n_trajectories()).collect::<Vec<_>>()
        );

        // Edge-count bounds: at most one edge per trajectory-site pair;
        // at least one full path plus one edge per extra distinct
        // assignment.
        let distinct: std::collections::HashSet<&[usize]> =
            plan.trajectories.iter().map(|t| t.choices.as_slice()).collect();
        prop_assert!(tree.n_edges() <= tree.flat_prep_ops());
        if noisy.n_sites() > 0 && !plan.trajectories.is_empty() {
            prop_assert!(tree.n_edges() >= noisy.n_sites() + distinct.len() - 1);
        }
        prop_assert_eq!(
            tree.prep_ops_saved(),
            tree.flat_prep_ops() - tree.n_edges()
        );

        // Walking the tree reproduces each leaf's full assignment.
        fn walk(
            tree: &PtsPlanTree,
            plan: &PtsPlan,
            node: usize,
            path: &mut Vec<usize>,
        ) -> Result<(), proptest::TestCaseError> {
            let nref = tree.node(node);
            for &idx in &nref.leaves {
                prop_assert_eq!(&plan.trajectories[idx].choices, path);
            }
            for &(branch, child) in &nref.children {
                path.push(branch);
                walk(tree, plan, child, path)?;
                path.pop();
            }
            Ok(())
        }
        walk(&tree, &plan, tree.root(), &mut Vec::new())?;
    }
}

// ---------------------------------------------------------------------------
// Gate-fusion invariants

use ptsbe::circuit::fusion::compose_ops as compose;

/// Gate-sequence strategy spanning every kernel class: diagonal (t/rz/
/// s/cz), permutation (x/y/cx/swap) and dense (h/sx/ry) content.
fn gate_seq_strategy() -> impl Strategy<Value = (usize, Vec<(u8, usize, usize, i32)>)> {
    (2usize..4).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0u8..10, 0..n, 0..n, -3i32..4), 1..24),
        )
    })
}

/// Materialize one recipe entry as (matrix, qubits); `None` for a
/// degenerate 2q pick with `a == b`.
fn gate_from_recipe(kind: u8, a: usize, b: usize, arg: i32) -> Option<(Matrix<f64>, Vec<usize>)> {
    use ptsbe::math::gates;
    let theta = 0.25 + arg as f64 * 0.4;
    Some(match kind {
        0 => (gates::h(), vec![a]),
        1 => (gates::t(), vec![a]),
        2 => (gates::rz(theta), vec![a]),
        3 => (gates::x(), vec![a]),
        4 => (gates::y(), vec![a]),
        5 => (gates::sx(), vec![a]),
        6 if a != b => (gates::cx(), vec![a, b]),
        7 if a != b => (gates::cz(), vec![a, b]),
        8 if a != b => (gates::swap(), vec![a, b]),
        9 => (gates::ry(theta), vec![a]),
        _ => return None,
    })
}

/// One segmented-recipe token: `(is_site, gate kind, qubit a, qubit b,
/// angle knob)`.
type SegToken = (bool, u8, usize, usize, i32);

/// Circuit-with-sites strategy for the fusion/segment-boundary property:
/// interleaves gates (from [`gate_seq_strategy`]'s alphabet) with noise
/// sites at proptest-chosen (and shrinkable) positions.
fn segmented_recipe_strategy() -> impl Strategy<Value = (usize, Vec<SegToken>)> {
    (2usize..4).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((prop::bool::ANY, 0u8..10, 0..n, 0..n, -3i32..4), 1..20),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fused op list composes to the same full-space unitary as the
    /// unfused gate sequence, for random sequences exercising all three
    /// kernel classes.
    #[test]
    fn fused_stream_composes_to_same_unitary((n, recipe) in gate_seq_strategy()) {
        let gates: Vec<(Matrix<f64>, Vec<usize>)> = recipe
            .iter()
            .filter_map(|&(k, a, b, arg)| gate_from_recipe(k, a, b, arg))
            .collect();
        prop_assume!(!gates.is_empty());
        let fused = fusion::fuse_run(gates.iter().map(|(m, q)| (m, q.as_slice())));
        prop_assert!(fused.len() <= gates.len());
        for op in &fused {
            // Classification must describe the stored matrix exactly.
            prop_assert_eq!(fusion::classify(&op.matrix), op.kind);
            if op.kind != FusedKernel::Dense {
                let (perm, phase) = fusion::permutation_form(&op.matrix);
                prop_assert_eq!(perm.len(), op.matrix.rows());
                prop_assert_eq!(phase.len(), op.matrix.rows());
            }
        }
        let fused_ops: Vec<_> = fused
            .iter()
            .map(|f| (f.matrix.clone(), f.qubits.clone()))
            .collect();
        let a = compose(n, &gates);
        let b = compose(n, &fused_ops);
        let d = a.max_abs_diff(&b);
        prop_assert!(d < 1e-12, "fused unitary diverged by {d}");
    }

    /// Fusion never crosses a noise site: the fused compilation has the
    /// same segment structure as the unfused one, and segment-by-segment
    /// the fused gate stream composes to the unfused segment unitary.
    /// The generator shrinks toward fewer ops and fewer/earlier sites.
    #[test]
    fn fusion_respects_segment_boundaries((n, recipe) in segmented_recipe_strategy()) {
        use ptsbe::statevector::exec::{self as sv_exec, CompiledOp};
        let mut c = Circuit::new(n);
        let channel = std::sync::Arc::new(channels::depolarizing(0.1));
        let mut any_gate = false;
        for &(is_site, kind, a, b, arg) in &recipe {
            if is_site {
                c.noise(std::sync::Arc::clone(&channel), &[a]);
            } else if let Some((m, qs)) = gate_from_recipe(kind, a, b, arg) {
                // Route through the Unitary escape hatches so arbitrary
                // matrices survive the circuit IR round-trip.
                match qs.as_slice() {
                    [q] => { c.unitary1(m, *q); }
                    [x, y] => { c.unitary2(m, *x, *y); }
                    _ => unreachable!(),
                }
                any_gate = true;
            }
        }
        prop_assume!(any_gate);
        c.measure_all();
        let nc = NoisyCircuit::from_circuit(c);
        let fused = sv_exec::compile::<f64>(&nc).unwrap();
        let unfused = sv_exec::compile_with::<f64>(&nc, false).unwrap();
        prop_assert_eq!(fused.n_segments(), unfused.n_segments());
        prop_assert_eq!(fused.n_segments(), nc.n_sites() + 1);

        // Split both op streams at their Site markers and compare the
        // composed unitary of every segment.
        type Segment = (Vec<(Matrix<f64>, Vec<usize>)>, Option<usize>);
        fn segments(ops: &[CompiledOp<f64>]) -> Vec<Segment> {
            let mut out = Vec::new();
            let mut cur = Vec::new();
            for op in ops {
                match op {
                    CompiledOp::Site(id) => {
                        out.push((std::mem::take(&mut cur), Some(*id)));
                    }
                    other => cur.push(op_matrix(other)),
                }
            }
            out.push((cur, None));
            out
        }
        fn op_matrix(op: &CompiledOp<f64>) -> (Matrix<f64>, Vec<usize>) {
            use ptsbe::math::gates;
            match op {
                CompiledOp::G1(m, q) => (m.clone(), vec![*q]),
                CompiledOp::G2(m, a, b) => (m.clone(), vec![*a, *b]),
                CompiledOp::Gk(m, qs) => (m.clone(), qs.clone()),
                CompiledOp::Cx(a, b) => (gates::cx(), vec![*a, *b]),
                CompiledOp::Cz(a, b) => (gates::cz(), vec![*a, *b]),
                CompiledOp::Swap(a, b) => (gates::swap(), vec![*a, *b]),
                CompiledOp::D1(d, q) => {
                    let mut m = Matrix::zeros(2, 2);
                    m[(0, 0)] = d[0];
                    m[(1, 1)] = d[1];
                    (m, vec![*q])
                }
                CompiledOp::D2(d, a, b) => {
                    let mut m = Matrix::zeros(4, 4);
                    for i in 0..4 {
                        m[(i, i)] = d[i];
                    }
                    (m, vec![*a, *b])
                }
                CompiledOp::P1(p, ph, q) => {
                    let mut m = Matrix::zeros(2, 2);
                    for r in 0..2 {
                        m[(r, p[r])] = ph[r];
                    }
                    (m, vec![*q])
                }
                CompiledOp::P2(p, ph, a, b) => {
                    let mut m = Matrix::zeros(4, 4);
                    for r in 0..4 {
                        m[(r, p[r])] = ph[r];
                    }
                    (m, vec![*a, *b])
                }
                CompiledOp::Site(_) => unreachable!("sites handled above"),
            }
        }
        let segs_f = segments(fused.ops());
        let segs_u = segments(unfused.ops());
        prop_assert_eq!(segs_f.len(), segs_u.len());
        for (k, ((ops_f, site_f), (ops_u, site_u))) in
            segs_f.into_iter().zip(segs_u).enumerate()
        {
            // Identical site sequence: the Kraus branch points (and with
            // them Philox stream association) are untouched by fusion.
            prop_assert_eq!(site_f, site_u, "segment {} fires a different site", k);
            let a = compose(n, &ops_f);
            let b = compose(n, &ops_u);
            let d = a.max_abs_diff(&b);
            prop_assert!(d < 1e-12, "segment {k} unitary diverged by {d}");
        }
    }
}

// ---------------------------------------------------------------------------
// Pool-recycling invariants (PR 3)

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A state forked into a recycled (dirty) buffer is bitwise identical
    /// to a fresh clone, on both backends — the invariant that makes the
    /// pooled tree walk safe.
    #[test]
    fn pooled_fork_bitwise_equals_fresh_clone((n, recipe, p) in circuit_strategy()) {
        use ptsbe::core::Backend;
        let noisy = build(n, &recipe, p);
        prop_assume!(noisy.n_sites() >= 1);
        // Two different random assignments: one for the source state, one
        // to poison the recycled buffer.
        let draw = |seed_off: u64| -> Vec<usize> {
            let mut r = PhiloxRng::new(951 + seed_off, 0);
            noisy
                .sites()
                .iter()
                .map(|s| (r.next_u64() as usize) % s.channel.sampling_probs().len())
                .collect()
        };
        let src_choices = draw(0);
        let poison_choices = draw(1);

        // Statevector backend.
        let sv = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let (src, _) = sv.prepare(&src_choices);
        let (poison, _) = sv.prepare(&poison_choices);
        let pool = StatePool::new();
        sv.release(poison, &pool);
        let recycled = sv.fork_pooled(&src, &pool);
        prop_assert_eq!(pool.stats().recycled, 1, "fork must have drawn the dirty buffer");
        let fresh = sv.fork(&src);
        for (i, (a, b)) in recycled.amplitudes().iter().zip(fresh.amplitudes()).enumerate() {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "sv re amp {}", i);
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "sv im amp {}", i);
        }

        // MPS backend (different tensor shapes between poison and source
        // exercise the shape-adapting copy).
        let mps = MpsBackend::<f64>::new(
            &noisy,
            MpsConfig::exact().with_max_bond(16),
            MpsSampleMode::Cached,
        )
        .unwrap();
        let (m_src, _) = mps.prepare(&src_choices);
        let (m_poison, _) = mps.prepare(&poison_choices);
        let m_pool = StatePool::new();
        mps.release(m_poison, &m_pool);
        let m_recycled = mps.fork_pooled(&m_src, &m_pool);
        let m_fresh = mps.fork(&m_src);
        for bits in 0..(1u128 << n) {
            let a = m_recycled.amplitude(bits);
            let b = m_fresh.amplitude(bits);
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "mps re amp {}", bits);
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "mps im amp {}", bits);
        }
    }

    /// Released buffers never leak stale amplitudes into later
    /// trajectories: the pooled tree executor and the batch-major
    /// executor reproduce the clone-per-trajectory flat executor bitwise
    /// on random circuits.
    #[test]
    fn recycled_buffers_never_leak_into_trajectories((n, recipe, p) in circuit_strategy()) {
        let noisy = build(n, &recipe, p);
        let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
        let mut rng = PhiloxRng::new(952, 0);
        let plan = ProbabilisticPts { n_samples: 25, shots_per_trajectory: 8, dedup: false }
            .sample_plan(&noisy, &mut rng);
        let flat = BatchedExecutor { seed: 9, parallel: false }.execute(&backend, &noisy, &plan);
        let tree = TreeExecutor { seed: 9, parallel: false }.execute(&backend, &noisy, &plan);
        let batch = BatchMajorExecutor { seed: 9, parallel: false, lanes: 4, ..Default::default() }
            .execute(&backend, &noisy, &plan);
        for (a, b) in tree.trajectories.iter().zip(&flat.trajectories) {
            prop_assert_eq!(&a.shots, &b.shots, "pooled tree leaked state");
            prop_assert_eq!(
                a.meta.realized_prob.to_bits(),
                b.meta.realized_prob.to_bits()
            );
        }
        for (a, b) in batch.trajectories.iter().zip(&flat.trajectories) {
            prop_assert_eq!(&a.shots, &b.shots, "batch lane leaked state");
            prop_assert_eq!(
                a.meta.realized_prob.to_bits(),
                b.meta.realized_prob.to_bits()
            );
        }
    }
}
