//! Trajectory-method convergence: the statistical foundation the paper
//! builds on (§2.2) — an ensemble of m trajectories approximates the
//! density-matrix evolution, with error shrinking as m grows, for both
//! unitary-mixture and general Kraus channels.

use ptsbe::core::estimators;
use ptsbe::core::stats::{histogram, tvd};
use ptsbe::prelude::*;

fn mixed_noise_circuit() -> NoisyCircuit {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).sx(2).measure_all();
    NoiseModel::new()
        .with_default_1q(channels::amplitude_damping(0.15))
        .with_default_2q(channels::depolarizing(0.1))
        .apply(&c)
}

#[test]
fn tvd_decreases_with_trajectory_count() {
    let noisy = mixed_noise_circuit();
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let mut errors = Vec::new();
    for m in [200usize, 2_000, 20_000] {
        let shots = run_baseline_sv::<f64>(&noisy, m, 910);
        let h = histogram(shots.iter().copied(), 8);
        errors.push(tvd(&h, &exact));
    }
    assert!(
        errors[2] < errors[0],
        "TVD should shrink with more trajectories: {errors:?}"
    );
    assert!(errors[2] < 0.02, "20k-trajectory TVD: {}", errors[2]);
}

#[test]
fn general_channel_importance_weighting_is_unbiased() {
    // Amplitude damping has state-dependent branch probabilities; PTSBE
    // pre-samples from nominal weights and records realized probabilities.
    // The weighted estimator must match the oracle.
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(911, 0);
    let plan = ExhaustivePts {
        // Enough shots that estimator noise sits well inside the 0.02
        // TVD bound (at 300 the deterministic draw lands at ~0.03).
        shots_per_trajectory: 2_000,
        max_trajectories: 1 << 16,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);

    // Realized probabilities must differ from nominal for at least one
    // damping trajectory (that is the general-channel signature)…
    let reweighted = result
        .trajectories
        .iter()
        .filter(|t| (t.meta.importance() - 1.0).abs() > 1e-9)
        .count();
    assert!(reweighted > 0, "expected non-trivial importance weights");

    // …and the weighted histogram must match the exact evolution.
    let hist = estimators::weighted_histogram(&result, 8);
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let d = tvd(&hist, &exact);
    assert!(d < 0.02, "importance-weighted TVD vs oracle: {d}");
}

#[test]
fn realized_probabilities_sum_to_one_exhaustively() {
    // Σ_α p_α over ALL trajectories = 1 exactly (CPTP), even when the
    // nominal proposal masses differ.
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(912, 0);
    let plan = ExhaustivePts {
        shots_per_trajectory: 1,
        max_trajectories: 1 << 16,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
    let total: f64 = result
        .trajectories
        .iter()
        .map(|t| t.meta.realized_prob)
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "Σ p_α = {total}");
}

#[test]
fn deterministic_reproducibility() {
    // Same seed -> bit-identical datasets, regardless of parallelism.
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng1 = PhiloxRng::new(913, 0);
    let mut rng2 = PhiloxRng::new(913, 0);
    let sampler = ProbabilisticPts {
        n_samples: 50,
        shots_per_trajectory: 200,
        dedup: true,
    };
    let plan1 = sampler.sample_plan(&noisy, &mut rng1);
    let plan2 = sampler.sample_plan(&noisy, &mut rng2);
    assert_eq!(plan1.trajectories, plan2.trajectories);

    let r1 = BatchedExecutor {
        seed: 99,
        parallel: true,
    }
    .execute(&backend, &noisy, &plan1);
    let r2 = BatchedExecutor {
        seed: 99,
        parallel: false,
    }
    .execute(&backend, &noisy, &plan2);
    for (a, b) in r1.trajectories.iter().zip(&r2.trajectories) {
        assert_eq!(a.shots, b.shots);
    }
}
