//! Trajectory-method convergence: the statistical foundation the paper
//! builds on (§2.2) — an ensemble of m trajectories approximates the
//! density-matrix evolution, with error shrinking as m grows, for both
//! unitary-mixture and general Kraus channels.
//!
//! Every test is seeded (Philox counter streams), so each asserted TVD is
//! a *deterministic* number, not a random draw: the budgets below were
//! calibrated by running the pinned seeds and multiplying the observed
//! value by ≥ 2× headroom (observed values noted inline). The
//! full-resolution halves are `#[ignore]`d for the default run; CI's
//! release job executes them with `cargo test --release -- --ignored`.

use ptsbe::core::estimators;
use ptsbe::core::stats::{histogram, tvd};
use ptsbe::prelude::*;

fn mixed_noise_circuit() -> NoisyCircuit {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).sx(2).measure_all();
    NoiseModel::new()
        .with_default_1q(channels::amplitude_damping(0.15))
        .with_default_2q(channels::depolarizing(0.1))
        .apply(&c)
}

#[test]
fn tvd_decreases_with_trajectory_count() {
    // Seed 910 deterministic draws: m=200 → TVD 0.0698, m=2000 → 0.0171.
    // Budget 0.035 ≈ 2× the observed m=2000 value.
    let noisy = mixed_noise_circuit();
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let mut errors = Vec::new();
    for m in [200usize, 2_000] {
        let shots = run_baseline_sv::<f64>(&noisy, m, 910);
        let h = histogram(shots.iter().copied(), 8);
        errors.push(tvd(&h, &exact));
    }
    assert!(
        errors[1] < errors[0],
        "TVD should shrink with more trajectories: {errors:?}"
    );
    assert!(errors[1] < 0.035, "2k-trajectory TVD: {}", errors[1]);
}

#[test]
#[ignore = "full-resolution convergence tail; run by CI's release --ignored job"]
fn tvd_converges_at_high_trajectory_count() {
    // Seed 910 deterministic draw: m=20_000 → TVD 0.0049. Budget 0.015 =
    // 3× headroom, still tight enough to catch a broken estimator.
    let noisy = mixed_noise_circuit();
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let shots = run_baseline_sv::<f64>(&noisy, 20_000, 910);
    let h = histogram(shots.iter().copied(), 8);
    let d = tvd(&h, &exact);
    assert!(d < 0.015, "20k-trajectory TVD: {d}");
}

#[test]
fn general_channel_importance_weighting_is_unbiased() {
    // Amplitude damping has state-dependent branch probabilities; PTSBE
    // pre-samples from nominal weights and records realized probabilities.
    // The weighted estimator must match the oracle.
    //
    // Seed 911 deterministic draw at 500 shots/trajectory: TVD 0.0097.
    // Budget 0.03 ≈ 3× headroom (the old 2_000-shot variant asserted
    // 0.02 against an observed 0.016 — 1.25× headroom, the marginal
    // assertion this replaces; the full version lives in the `#[ignore]`
    // test below).
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(911, 0);
    let plan = ExhaustivePts {
        shots_per_trajectory: 500,
        max_trajectories: 1 << 16,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);

    // Realized probabilities must differ from nominal for at least one
    // damping trajectory (that is the general-channel signature)…
    let reweighted = result
        .trajectories
        .iter()
        .filter(|t| (t.meta.importance() - 1.0).abs() > 1e-9)
        .count();
    assert!(reweighted > 0, "expected non-trivial importance weights");

    // …and the weighted histogram must match the exact evolution.
    let hist = estimators::weighted_histogram(&result, 8);
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let d = tvd(&hist, &exact);
    assert!(d < 0.03, "importance-weighted TVD vs oracle: {d}");
}

#[test]
#[ignore = "full-resolution weighting check; run by CI's release --ignored job"]
fn general_channel_importance_weighting_full_resolution() {
    // Seed 911 deterministic draw at 2_000 shots/trajectory: TVD 0.0161.
    // Budget 0.04 ≈ 2.5× headroom.
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(911, 0);
    let plan = ExhaustivePts {
        shots_per_trajectory: 2_000,
        max_trajectories: 1 << 16,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
    let hist = estimators::weighted_histogram(&result, 8);
    let exact = DensityMatrix::evolve(&noisy).probabilities();
    let d = tvd(&hist, &exact);
    assert!(d < 0.04, "importance-weighted TVD vs oracle: {d}");
}

#[test]
fn realized_probabilities_sum_to_one_exhaustively() {
    // Σ_α p_α over ALL trajectories = 1 exactly (CPTP), even when the
    // nominal proposal masses differ.
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(912, 0);
    let plan = ExhaustivePts {
        shots_per_trajectory: 1,
        max_trajectories: 1 << 16,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
    let total: f64 = result
        .trajectories
        .iter()
        .map(|t| t.meta.realized_prob)
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "Σ p_α = {total}");
}

#[test]
fn deterministic_reproducibility() {
    // Same seed -> bit-identical datasets, regardless of parallelism.
    let noisy = mixed_noise_circuit();
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng1 = PhiloxRng::new(913, 0);
    let mut rng2 = PhiloxRng::new(913, 0);
    let sampler = ProbabilisticPts {
        n_samples: 50,
        shots_per_trajectory: 200,
        dedup: true,
    };
    let plan1 = sampler.sample_plan(&noisy, &mut rng1);
    let plan2 = sampler.sample_plan(&noisy, &mut rng2);
    assert_eq!(plan1.trajectories, plan2.trajectories);

    let r1 = BatchedExecutor {
        seed: 99,
        parallel: true,
    }
    .execute(&backend, &noisy, &plan1);
    let r2 = BatchedExecutor {
        seed: 99,
        parallel: false,
    }
    .execute(&backend, &noisy, &plan2);
    for (a, b) in r1.trajectories.iter().zip(&r2.trajectories) {
        assert_eq!(a.shots, b.shots);
    }
}
