//! Fused-vs-unfused equivalence: the lock-down suite for the gate-fusion
//! compilation pass.
//!
//! Fusion is default-on, so these tests pin the contract that makes that
//! safe: per backend, the fused pipeline produces the same physics as the
//! unfused reference pipeline — final-state fidelity within 1e-12 on
//! random circuits, and *identical measurement bitstreams* on the
//! cross-backend circuit zoo (same seeds, same plans, same executors).

use ptsbe::core::Backend;
use ptsbe::prelude::*;
use ptsbe::statevector::exec as sv_exec;

/// The `backends_agree.rs` circuit zoo entry: Clifford+S ladder.
fn zoo_ladder(p: f64) -> NoisyCircuit {
    let mut c = Circuit::new(4);
    c.h(0)
        .cx(0, 1)
        .cx(1, 2)
        .cx(2, 3)
        .s(1)
        .cx(0, 2)
        .measure_all();
    NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing2(p))
        .apply(&c)
}

/// The non-Clifford zoo circuit: T/rotation layers between entanglers,
/// so the fused stream exercises dense, diagonal and permutation
/// kernels. Shared by the saturated-noise and entangler-noise variants.
fn rotations_circuit() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0).h(1).h(2).h(3);
    c.t(0).rz(1, 0.31).cx(0, 1).s(2).tdg(3).cx(2, 3);
    c.x(1).y(2).z(3).cz(1, 2).rx(0, 0.7).swap(0, 3);
    c.measure_all();
    c
}

/// Non-Clifford zoo entry under saturated noise (a site after every
/// gate).
fn zoo_rotations(p: f64) -> NoisyCircuit {
    NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing2(p))
        .apply(&rotations_circuit())
}

/// General-channel zoo entry (state-dependent Kraus weights).
fn zoo_damping() -> NoisyCircuit {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).measure_all();
    NoiseModel::new()
        .with_default_1q(channels::amplitude_damping(0.2))
        .with_default_2q(channels::amplitude_damping(0.2))
        .apply(&c)
}

/// Seeded random circuit over the full 1q/2q gate mix.
fn random_circuit(n: usize, depth: usize, p: f64, seed: u64) -> NoisyCircuit {
    let mut rng = PhiloxRng::new(seed, 0);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        let r = rng.next_u64();
        let a = (r % n as u64) as usize;
        let b = ((r >> 16) % n as u64) as usize;
        match (r >> 32) % 8 {
            0 => {
                c.h(a);
            }
            1 => {
                c.t(a);
            }
            2 => {
                c.rz(a, 0.1 + (r % 100) as f64 / 50.0);
            }
            3 => {
                c.x(a);
            }
            4 => {
                c.sx(a);
            }
            5 if a != b => {
                c.cx(a, b);
            }
            6 if a != b => {
                c.cz(a, b);
            }
            7 if a != b => {
                c.swap(a, b);
            }
            _ => {
                c.s(a);
            }
        }
    }
    c.measure_all();
    NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&c)
}

#[test]
fn fused_final_states_match_unfused_on_random_circuits() {
    for seed in 0..12u64 {
        let nc = random_circuit(4, 24, 0.1, 1000 + seed);
        let fused = sv_exec::compile::<f64>(&nc).unwrap();
        let unfused = sv_exec::compile_with::<f64>(&nc, false).unwrap();
        let stats = fused.fusion_stats();
        assert!(
            stats.ops_after <= stats.ops_before,
            "fusion grew the stream: {stats}"
        );

        // Identity trajectory plus a few error branches.
        let mut assignments = vec![nc.identity_assignment().unwrap()];
        for k in 0..3usize {
            let mut choices = nc.identity_assignment().unwrap();
            let site = (seed as usize + k * 5) % nc.n_sites();
            choices[site] = 1 + k % 3;
            assignments.push(choices);
        }
        for choices in assignments {
            let (a, pa) = sv_exec::prepare(&fused, &choices);
            let (b, pb) = sv_exec::prepare(&unfused, &choices);
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "unitary-mixture branch probabilities are exact"
            );
            let fid = a.fidelity(&b);
            assert!(
                fid >= 1.0 - 1e-12,
                "seed {seed}: fused/unfused fidelity {fid}"
            );
        }
    }
}

#[test]
fn fused_bitstreams_identical_on_sv_across_zoo() {
    for (name, nc) in [
        ("ladder", zoo_ladder(0.08)),
        ("rotations", zoo_rotations(0.05)),
        ("damping", zoo_damping()),
    ] {
        let fused = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
        let unfused =
            SvBackend::<f64>::new_with_fusion(&nc, SamplingStrategy::Auto, false).unwrap();
        let mut rng = PhiloxRng::new(2000, 0);
        let plan = ProbabilisticPts {
            n_samples: 50,
            shots_per_trajectory: 200,
            dedup: false,
        }
        .sample_plan(&nc, &mut rng);
        for exec in [
            BatchedExecutor {
                seed: 11,
                parallel: true,
            },
            BatchedExecutor {
                seed: 11,
                parallel: false,
            },
        ] {
            let a = exec.execute(&fused, &nc, &plan);
            let b = exec.execute(&unfused, &nc, &plan);
            assert_eq!(a.trajectories.len(), b.trajectories.len());
            for (x, y) in a.trajectories.iter().zip(&b.trajectories) {
                assert_eq!(x.shots, y.shots, "{name}: SV bitstream diverged");
            }
        }
    }
}

#[test]
fn fused_bitstreams_identical_on_mps_across_zoo() {
    let config = MpsConfig::exact().with_max_bond(32);
    for (name, nc) in [
        ("ladder", zoo_ladder(0.08)),
        ("rotations", zoo_rotations(0.05)),
        ("damping", zoo_damping()),
    ] {
        let fused = MpsBackend::<f64>::new(&nc, config, MpsSampleMode::Cached).unwrap();
        let unfused =
            MpsBackend::<f64>::new_with_fusion(&nc, config, MpsSampleMode::Cached, false).unwrap();
        let mut rng = PhiloxRng::new(2100, 0);
        let plan = ProbabilisticPts {
            n_samples: 30,
            shots_per_trajectory: 100,
            dedup: false,
        }
        .sample_plan(&nc, &mut rng);
        let exec = BatchedExecutor {
            seed: 13,
            parallel: true,
        };
        let a = exec.execute(&fused, &nc, &plan);
        let b = exec.execute(&unfused, &nc, &plan);
        for (x, y) in a.trajectories.iter().zip(&b.trajectories) {
            assert_eq!(x.shots, y.shots, "{name}: MPS bitstream diverged");
        }
    }
}

#[test]
fn tree_executor_stays_bitwise_on_fused_stream() {
    // Fusion must compose with PR 1's prefix sharing: the tree executor
    // on the fused backend is still bitwise identical to the flat
    // executor on the same fused backend.
    let nc = zoo_rotations(0.08);
    let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(2200, 0);
    let plan = ProbabilisticPts {
        n_samples: 60,
        shots_per_trajectory: 40,
        dedup: false,
    }
    .sample_plan(&nc, &mut rng);
    let flat = BatchedExecutor {
        seed: 17,
        parallel: true,
    }
    .execute(&backend, &nc, &plan);
    let tree = TreeExecutor {
        seed: 17,
        parallel: true,
    }
    .execute(&backend, &nc, &plan);
    for (a, b) in tree.trajectories.iter().zip(&flat.trajectories) {
        assert_eq!(a.meta.choices, b.meta.choices);
        assert_eq!(
            a.meta.realized_prob.to_bits(),
            b.meta.realized_prob.to_bits()
        );
        assert_eq!(a.shots, b.shots);
    }
}

/// Rotation zoo with noise only on the entanglers (the common hardware
/// model: 1q gates are an order of magnitude cleaner). The 1q layers
/// between noise sites are what fusion folds into the 2q kernels.
fn zoo_rotations_entangler_noise(p: f64) -> NoisyCircuit {
    NoiseModel::new()
        .with_default_2q(channels::depolarizing2(p))
        .apply(&rotations_circuit())
}

#[test]
fn fusion_reduces_op_count_under_entangler_noise() {
    // With a noise site after every gate, segments hold one gate each and
    // fusion is a structural no-op (ops_after == ops_before) — asserted
    // below. Under entangler-only noise the 1q runs fold away.
    let nc = zoo_rotations_entangler_noise(0.05);
    let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    let stats = backend.fusion_stats();
    assert!(
        stats.ops_after < stats.ops_before,
        "expected a measurable reduction, got {stats}"
    );
    assert_eq!(
        stats.dense + stats.diagonal + stats.permutation + stats.passthrough,
        stats.ops_after,
        "histogram must cover the fused stream"
    );

    // Saturated noise: every gate is followed by a site, runs have
    // length one, and fusion must not grow the stream.
    let saturated = SvBackend::<f64>::new(&zoo_rotations(0.05), SamplingStrategy::Auto).unwrap();
    let s = saturated.fusion_stats();
    assert_eq!(s.ops_after, s.ops_before, "{s}");

    // The noise-free stream must light up several kernel classes.
    let pure =
        SvBackend::<f64>::new(&zoo_rotations_entangler_noise(0.0), SamplingStrategy::Auto).unwrap();
    let stats = pure.fusion_stats();
    assert!(stats.dense > 0, "{stats}");
    assert!(stats.diagonal + stats.permutation > 0, "{stats}");
}

#[test]
fn fused_mps_matches_fused_sv_physics() {
    // Cross-backend sanity on the fused default: per-trajectory state
    // weights agree between SV and MPS.
    let nc = zoo_rotations(0.06);
    let sv = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    let mps = MpsBackend::<f64>::new(
        &nc,
        MpsConfig::exact().with_max_bond(32),
        MpsSampleMode::Cached,
    )
    .unwrap();
    let mut choices = nc.identity_assignment().unwrap();
    choices[2] = 1;
    choices[5] = 3;
    let (_, p_sv) = sv.prepare(&choices);
    let (_, p_mps) = mps.prepare(&choices);
    assert!((p_sv - p_mps).abs() < 1e-10, "{p_sv} vs {p_mps}");
}
