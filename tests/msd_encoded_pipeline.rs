//! End-to-end block-encoded magic-state distillation: the paper's
//! 35-qubit workload running through PTSBE on the MPS backend.
//!
//! At zero noise, the encoded circuit must reproduce the bare protocol's
//! exact acceptance probability and output expectations — a stringent
//! validation of the encoder, the transversal compilation, *and* the MPS
//! execution at a size no dense statevector here could check directly.

use ptsbe::prelude::*;

/// Exact bare-protocol numbers from the statevector distribution.
fn bare_exact(basis: MeasureBasis) -> (f64, f64) {
    let (c, layout) = msd_bare(basis);
    let sv: StateVector<f64> = ptsbe::statevector::run_pure(&c).unwrap();
    let probs = sv.probabilities();
    let (mut p_acc, mut p_plus) = (0.0, 0.0);
    for (idx, &p) in probs.iter().enumerate() {
        let shot = idx as u128;
        let mut accept = true;
        let mut out = false;
        for b in 0..5 {
            let parity = layout.block_parity(shot, b);
            if b == layout.output_wire {
                out = parity;
            } else if parity {
                accept = false;
                break;
            }
        }
        if accept {
            p_acc += p;
            if !out {
                p_plus += p;
            }
        }
    }
    (p_acc, 2.0 * p_plus / p_acc - 1.0)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy 35-qubit MPS workload: run with `cargo test --release`"
)]
fn encoded_msd_matches_bare_at_zero_noise() {
    let code = codes::steane();
    let basis = MeasureBasis::Z;
    let (bare_acc, bare_exp) = bare_exact(basis);

    let (circuit, layout) = msd_encoded(&code, basis);
    assert_eq!(circuit.n_qubits(), 35);
    let noisy = NoiseModel::new().apply(&circuit); // zero noise

    // Budget-driven truncation with a χ=256 ceiling: bonds float at the
    // true Schmidt rank, the realized truncation error is exactly 0.0,
    // and the acceptance matches the bare exact value (measured 0.1691
    // vs 1/6). The seed's cap-driven χ=64 config lost 0.042 of
    // acceptance to silent truncation and failed this test.
    // Keep in lockstep with examples/msd_trunc_canary.rs.
    let backend = MpsBackend::<f64>::new(
        &noisy,
        MpsConfig::adaptive(256, 1e-5, 1e-2),
        MpsSampleMode::Cached,
    )
    .unwrap();
    let plan = ptsbe::core::plan::PtsPlan {
        trajectories: vec![ptsbe::core::plan::PlannedTrajectory {
            choices: vec![],
            shots: 30_000,
        }],
    };
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);

    let mut analysis = MsdAnalysis::default();
    for t in &result.trajectories {
        for &s in &t.shots {
            analysis.fold(&layout, None, s);
        }
    }
    assert!(
        (analysis.acceptance() - bare_acc).abs() < 0.015,
        "encoded acceptance {} vs bare exact {}",
        analysis.acceptance(),
        bare_acc
    );
    assert!(
        (analysis.expectation() - bare_exp).abs() < 0.03,
        "encoded ⟨Z̄⟩ {} vs bare exact {}",
        analysis.expectation(),
        bare_exp
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy 35-qubit MPS workload: run with `cargo test --release`"
)]
fn encoded_msd_with_noise_and_decoding() {
    // With physical noise, per-block lookup decoding must recover *more*
    // accepted shots than raw parity post-selection.
    let code = codes::steane();
    let (circuit, layout) = msd_encoded(&code, MeasureBasis::Z);
    let p = 2e-3;
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&circuit);
    // 40 noisy trajectories each pay a full prep, so this test keeps the
    // cheap χ=64 config: its assertions are statistical (decoding beats
    // raw post-selection), not exact-amplitude.
    let backend =
        MpsBackend::<f64>::new(&noisy, MpsConfig::new(64), MpsSampleMode::Cached).unwrap();
    let mut rng = PhiloxRng::new(920, 0);
    let plan = ProbabilisticPts {
        n_samples: 40,
        shots_per_trajectory: 1_500,
        dedup: true,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);

    let decoder = LookupDecoder::new(&code);
    let mut raw = MsdAnalysis::default();
    let mut decoded = MsdAnalysis::default();
    for t in &result.trajectories {
        for &s in &t.shots {
            raw.fold(&layout, None, s);
            decoded.fold(&layout, Some(&decoder), s);
        }
    }
    assert!(
        decoded.accepted >= raw.accepted,
        "decoding must not lose accepted shots: {} vs {}",
        decoded.accepted,
        raw.accepted
    );
    assert!(decoded.acceptance() > 0.05, "decoded acceptance collapsed");
    // Provenance labels exist for noisy trajectories.
    assert!(result
        .trajectories
        .iter()
        .any(|t| !t.meta.errors.is_empty()));
}
