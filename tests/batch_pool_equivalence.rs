//! Cross-path equivalence: batch-major and pooled prefix-tree execution
//! must produce **bitwise identical** measurement bitstreams (and
//! realized probabilities) to the scalar flat executor, on both
//! backends, across the circuit zoo — fused kernels, Clifford fast
//! paths, Toffoli (k-qubit gather), general channels, duplicate
//! assignments, and both precisions.
//!
//! This is the contract that lets the executors be swapped freely: any
//! drift in arithmetic (kernel form, norm accumulation order, Philox
//! stream keying) shows up here as a hard failure, not a statistical
//! blur.

use ptsbe::prelude::*;
use ptsbe::tensornet::MpsConfig;

fn zoo() -> Vec<(&'static str, NoisyCircuit)> {
    let mut out = Vec::new();

    // GHZ + depolarizing everywhere (Clifford fast paths, segments of 1).
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
    out.push((
        "ghz_depolarizing",
        NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.08))
            .with_default_2q(channels::depolarizing(0.12))
            .apply(&c),
    ));

    // Magic-state-flavored layers, entangler-only noise: long 1q runs
    // feed the fuser, so the stream exercises D1/D2/P1/P2 kernels.
    let mut c = Circuit::new(5);
    for q in 0..5 {
        c.h(q).t(q);
    }
    c.cx(0, 1).cz(1, 2).swap(2, 3).cx(3, 4);
    for q in 0..5 {
        c.s(q).rz(q, 0.3 + q as f64);
    }
    c.cx(4, 0).measure_all();
    out.push((
        "fused_entangler_noise",
        NoiseModel::new()
            .with_default_2q(channels::depolarizing2(0.1))
            .apply(&c),
    ));

    // Amplitude damping: general channels with state-dependent branch
    // probabilities — the per-lane Kraus-normalization path.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).measure_all();
    out.push((
        "amplitude_damping",
        NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.25))
            .with_default_2q(channels::amplitude_damping(0.2))
            .apply(&c),
    ));

    // Toffoli: the k-qubit gather kernel on the statevector path.
    let mut c = Circuit::new(3);
    c.h(0).h(1).ccx(0, 1, 2).measure_all();
    out.push((
        "toffoli_gather",
        NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.1))
            .apply(&c),
    ));

    out
}

fn plan_for(nc: &NoisyCircuit, seed: u64) -> PtsPlan {
    let mut rng = PhiloxRng::new(seed, 0);
    ProbabilisticPts {
        n_samples: 40,
        shots_per_trajectory: 30,
        dedup: false, // duplicates exercise shared leaves + ragged groups
    }
    .sample_plan(nc, &mut rng)
}

fn assert_bitwise(label: &str, a: &ptsbe::core::BatchResult, b: &ptsbe::core::BatchResult) {
    assert_eq!(
        a.trajectories.len(),
        b.trajectories.len(),
        "{label}: length"
    );
    for (x, y) in a.trajectories.iter().zip(&b.trajectories) {
        assert_eq!(x.meta.traj_id, y.meta.traj_id, "{label}: stream key");
        assert_eq!(x.meta.choices, y.meta.choices, "{label}: assignment");
        assert_eq!(
            x.meta.realized_prob.to_bits(),
            y.meta.realized_prob.to_bits(),
            "{label}: realized probability must be bitwise identical"
        );
        assert_eq!(
            x.shots, y.shots,
            "{label}: bitstreams must be bitwise identical"
        );
    }
}

#[test]
fn batch_major_and_pooled_tree_match_flat_on_statevector() {
    for (name, nc) in zoo() {
        let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
        let plan = plan_for(&nc, 0xA11CE);
        let tree = PtsPlanTree::from_plan(&plan);
        let flat = BatchedExecutor {
            seed: 17,
            parallel: false,
        }
        .execute(&backend, &nc, &plan);

        for parallel in [false, true] {
            let pool = StatePool::new();
            let pooled_tree = TreeExecutor { seed: 17, parallel }
                .execute_tree_pooled(&backend, &nc, &plan, &tree, &pool);
            assert_bitwise(&format!("{name}/tree(par={parallel})"), &pooled_tree, &flat);
            let stats = pool.stats();
            assert_eq!(
                pool.parked(),
                stats.released - stats.recycled,
                "{name}: every released state is either parked or recycled, none lost"
            );
            for lanes in [1usize, 5, 16] {
                let batched = BatchMajorExecutor {
                    seed: 17,
                    parallel,
                    lanes,
                    ..Default::default()
                }
                .execute(&backend, &nc, &plan);
                assert_bitwise(
                    &format!("{name}/batch(lanes={lanes},par={parallel})"),
                    &batched,
                    &flat,
                );
            }
        }
    }
}

#[test]
fn batch_major_matches_flat_on_f32() {
    for (name, nc) in zoo() {
        let backend = SvBackend::<f32>::new(&nc, SamplingStrategy::Auto).unwrap();
        let plan = plan_for(&nc, 0xF32);
        let flat = BatchedExecutor {
            seed: 23,
            parallel: false,
        }
        .execute(&backend, &nc, &plan);
        let batched = BatchMajorExecutor {
            seed: 23,
            parallel: false,
            lanes: 7,
            ..Default::default()
        }
        .execute(&backend, &nc, &plan);
        assert_bitwise(&format!("{name}/f32"), &batched, &flat);
    }
}

#[test]
fn pooled_tree_matches_flat_on_mps() {
    // MPS sampling mutates the state (gauge moves), so shared leaves
    // fork per duplicate — the per-leaf pooled fork/release path.
    for (name, nc) in zoo() {
        let config = MpsConfig::exact().with_max_bond(32);
        let backend =
            MpsBackend::<f64>::new(&nc, config, ptsbe::core::backend::MpsSampleMode::Cached)
                .unwrap();
        let plan = plan_for(&nc, 0x3B5);
        let tree = PtsPlanTree::from_plan(&plan);
        let flat = BatchedExecutor {
            seed: 29,
            parallel: false,
        }
        .execute(&backend, &nc, &plan);
        for parallel in [false, true] {
            let pool = StatePool::new();
            let pooled = TreeExecutor { seed: 29, parallel }
                .execute_tree_pooled(&backend, &nc, &plan, &tree, &pool);
            assert_bitwise(&format!("{name}/mps(par={parallel})"), &pooled, &flat);
            assert!(
                pool.stats().released > 0,
                "{name}: MPS leaves must release their tensors to the pool"
            );
        }
    }
}

#[test]
fn warm_pool_runs_are_reproducible() {
    // Re-running on an already-warm pool (buffers dirty with a previous
    // run's amplitudes) must not perturb a single bit.
    let (_, nc) = zoo().remove(1);
    let backend = SvBackend::<f64>::new(&nc, SamplingStrategy::Auto).unwrap();
    let plan = plan_for(&nc, 0x5EED);
    let tree = PtsPlanTree::from_plan(&plan);
    let exec = TreeExecutor {
        seed: 31,
        parallel: false,
    };
    let pool = StatePool::new();
    let first = exec.execute_tree_pooled(&backend, &nc, &plan, &tree, &pool);
    let second = exec.execute_tree_pooled(&backend, &nc, &plan, &tree, &pool);
    assert_bitwise("warm pool", &second, &first);
    let stats = pool.stats();
    assert!(stats.recycled > 0, "warm run must have reused buffers");
}
