//! End-to-end dataset pipeline: generate → serialize (JSONL + binary) →
//! reload → decode — the "programmable data collection engine" loop.

use ptsbe::dataset::{binary, decoder_export, jsonl, record, summary};
use ptsbe::prelude::*;
use ptsbe::qec::encoding_circuit;

fn steane_memory_noisy(p: f64) -> NoisyCircuit {
    let code = codes::steane();
    let enc = encoding_circuit(&code);
    let mut c = enc.circuit.clone();
    c.measure_all();
    NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing(p))
        .apply(&c)
}

#[test]
fn full_pipeline_jsonl_and_binary() {
    let noisy = steane_memory_noisy(0.01);
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(930, 0);
    let plan = ProbabilisticPts {
        n_samples: 300,
        shots_per_trajectory: 64,
        dedup: true,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);

    let header = DatasetHeader {
        workload: "steane-memory".into(),
        n_qubits: 7,
        n_measured: 7,
        backend: "statevector-f64".into(),
        seed: 930,
    };
    let records = record::records_from_batch(&result);

    // JSONL round trip.
    let mut buf = Vec::new();
    jsonl::write(&mut buf, &header, &records).unwrap();
    let (h2, loaded) = jsonl::read(std::io::BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(h2, header);
    assert_eq!(loaded.len(), records.len());

    // Binary round trip.
    let bytes = binary::encode(&header, &records).unwrap();
    let (h3, loaded_bin) = binary::decode(bytes).unwrap();
    assert_eq!(h3, header);
    assert_eq!(loaded_bin.len(), records.len());
    for (a, b) in loaded.iter().zip(&loaded_bin) {
        assert_eq!(a.decode_shots().unwrap(), b.decode_shots().unwrap());
        assert_eq!(a.meta.choices, b.meta.choices);
    }

    // Summaries agree with the in-memory result.
    let s = summary::summarize(&loaded);
    assert_eq!(s.n_trajectories, result.trajectories.len());
    assert_eq!(s.n_shots, result.total_shots());
    assert!((s.unique_fraction - result.unique_fraction()).abs() < 1e-12);
}

#[test]
fn labels_survive_and_decode_consistently() {
    let code = codes::steane();
    let noisy = steane_memory_noisy(0.02);
    let backend = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mut rng = PhiloxRng::new(931, 0);
    let plan = ProbabilisticPts {
        n_samples: 400,
        shots_per_trajectory: 32,
        dedup: true,
    }
    .sample_plan(&noisy, &mut rng);
    let result = BatchedExecutor::default().execute(&backend, &noisy, &plan);
    let records = record::records_from_batch(&result);
    let examples = decoder_export::export_examples(&records);
    assert_eq!(examples.len(), result.total_shots());

    // Error-free labeled shots must decode to logical 0 *exactly* (no
    // noise means bits form a codeword with trivial syndrome).
    let decoder = LookupDecoder::new(&code);
    let mut clean_checked = 0;
    for ex in examples.iter().filter(|e| e.errors.is_empty()) {
        let shot = u128::from_str_radix(&ex.shot, 16).unwrap();
        assert_eq!(decoder.syndrome(shot), 0, "clean shot with syndrome");
        assert_eq!(decoder.decode(shot), Some(false));
        clean_checked += 1;
    }
    assert!(clean_checked > 0, "no clean trajectories sampled");
}
