//! Cross-backend agreement: the same noisy circuit must produce the same
//! physics on every stack — statevector, MPS, density-matrix oracle, and
//! (for Clifford content) the stabilizer frame sampler.

use ptsbe::core::stats::{histogram, tvd};
use ptsbe::prelude::*;
use ptsbe::stabilizer::FrameSampler;

fn workload(p: f64) -> (Circuit, NoisyCircuit) {
    let mut c = Circuit::new(4);
    c.h(0)
        .cx(0, 1)
        .cx(1, 2)
        .cx(2, 3)
        .s(1)
        .cx(0, 2)
        .measure_all();
    let noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(p))
        .with_default_2q(channels::depolarizing2(p))
        .apply(&c);
    (c, noisy)
}

#[test]
fn sv_mps_and_oracle_agree() {
    let (_, noisy) = workload(0.05);
    let shots = 40_000;

    let sv_shots = run_baseline_sv::<f64>(&noisy, shots, 901);
    let mps_shots =
        run_baseline_mps::<f64>(&noisy, shots, 902, MpsConfig::exact().with_max_bond(32));
    let exact = DensityMatrix::evolve(&noisy).probabilities();

    let h_sv = histogram(sv_shots.iter().copied(), 16);
    let h_mps = histogram(mps_shots.iter().copied(), 16);
    assert!(
        tvd(&h_sv, &exact) < 0.015,
        "SV vs oracle: {}",
        tvd(&h_sv, &exact)
    );
    assert!(
        tvd(&h_mps, &exact) < 0.015,
        "MPS vs oracle: {}",
        tvd(&h_mps, &exact)
    );
}

#[test]
fn ptsbe_agrees_across_backends() {
    let (_, noisy) = workload(0.08);
    let mut rng = PhiloxRng::new(903, 0);
    let plan = ProbabilisticPts {
        n_samples: 30_000,
        shots_per_trajectory: 1,
        dedup: false,
    }
    .sample_plan(&noisy, &mut rng);

    let sv = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mps = MpsBackend::<f64>::new(
        &noisy,
        MpsConfig::exact().with_max_bond(32),
        MpsSampleMode::Cached,
    )
    .unwrap();
    let exec = BatchedExecutor::default();
    let r_sv = exec.execute(&sv, &noisy, &plan);
    let r_mps = exec.execute(&mps, &noisy, &plan);

    let h_sv = histogram(r_sv.all_shots(), 16);
    let h_mps = histogram(r_mps.all_shots(), 16);
    let d = tvd(&h_sv, &h_mps);
    assert!(d < 0.015, "PTSBE SV vs MPS TVD: {d}");
    // Same plan -> identical provenance on both backends.
    for (a, b) in r_sv.trajectories.iter().zip(&r_mps.trajectories) {
        assert_eq!(a.meta.choices, b.meta.choices);
        assert!((a.meta.realized_prob - b.meta.realized_prob).abs() < 1e-9);
    }
}

#[test]
fn frame_sampler_agrees_on_clifford_workload() {
    // Clifford circuit + Pauli noise with *deterministic* reference
    // measurements (the frame sampler's validity domain — syndrome-style
    // circuits): a CX network that composes to the identity, so every
    // noiseless measurement is 0, while injected Paulis propagate.
    let mut c = Circuit::new(4);
    c.cx(0, 1)
        .cx(2, 3)
        .cx(1, 2)
        .cx(1, 2)
        .cx(0, 1)
        .cx(2, 3)
        .measure_all();
    let noisy = NoiseModel::new()
        .with_default_2q(channels::depolarizing2(0.04))
        .apply(&c);
    let shots = 60_000;

    let mut rng = PhiloxRng::new(904, 0);
    let sampler = FrameSampler::new(&noisy, &mut rng).expect("Clifford circuit");
    let frames = sampler.sample(shots, &mut rng);
    assert!(!frames.reference_was_random);

    let sv_shots = run_baseline_sv::<f64>(&noisy, shots, 905);
    let h_frames = histogram(frames.shots.iter().copied(), 16);
    let h_sv = histogram(sv_shots.iter().copied(), 16);
    let d = tvd(&h_frames, &h_sv);
    assert!(d < 0.015, "frame sampler vs statevector TVD: {d}");
}

/// Assert two batch results are bitwise identical: same plan order, same
/// provenance, same realized-probability bits, same shot records.
fn assert_bitwise_identical(
    label: &str,
    tree: &ptsbe::core::BatchResult,
    flat: &ptsbe::core::BatchResult,
) {
    assert_eq!(
        tree.trajectories.len(),
        flat.trajectories.len(),
        "{label}: trajectory count"
    );
    for (i, (a, b)) in tree.trajectories.iter().zip(&flat.trajectories).enumerate() {
        assert_eq!(a.meta.traj_id, b.meta.traj_id, "{label}: plan order at {i}");
        assert_eq!(a.meta.choices, b.meta.choices, "{label}: choices at {i}");
        assert_eq!(
            a.meta.realized_prob.to_bits(),
            b.meta.realized_prob.to_bits(),
            "{label}: realized prob at {i}"
        );
        assert_eq!(a.shots, b.shots, "{label}: shots at {i}");
    }
}

#[test]
fn tree_executor_is_bitwise_identical_to_flat_on_both_backends() {
    let (_, noisy) = workload(0.08);
    let sv = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let mps = MpsBackend::<f64>::new(
        &noisy,
        MpsConfig::exact().with_max_bond(32),
        MpsSampleMode::Cached,
    )
    .unwrap();

    let mut rng = PhiloxRng::new(910, 0);
    let plans: Vec<(&str, PtsPlan)> = vec![
        (
            "probabilistic",
            ProbabilisticPts {
                n_samples: 40,
                shots_per_trajectory: 25,
                dedup: true,
            }
            .sample_plan(&noisy, &mut rng),
        ),
        (
            "probabilistic-dup",
            ProbabilisticPts {
                n_samples: 40,
                shots_per_trajectory: 25,
                dedup: false,
            }
            .sample_plan(&noisy, &mut rng),
        ),
        (
            "proportional",
            ProportionalPts {
                n_samples: 200,
                total_shots: 1_000,
            }
            .sample_plan(&noisy, &mut rng),
        ),
    ];

    // The exhaustive sampler enumerates every branch combination, so it
    // gets a smaller circuit (the 4-qubit workload has 4^10 combinations).
    let mut small = Circuit::new(2);
    small.h(0).cx(0, 1).measure_all();
    let small_noisy = NoiseModel::new()
        .with_default_1q(channels::depolarizing(0.08))
        .with_default_2q(channels::depolarizing2(0.08))
        .apply(&small);
    let small_plan = ExhaustivePts {
        shots_per_trajectory: 5,
        max_trajectories: 1 << 12,
    }
    .sample_plan(&small_noisy, &mut rng);
    let small_sv = SvBackend::<f64>::new(&small_noisy, SamplingStrategy::Auto).unwrap();
    let small_mps = MpsBackend::<f64>::new(
        &small_noisy,
        MpsConfig::exact().with_max_bond(16),
        MpsSampleMode::Cached,
    )
    .unwrap();

    let flat = BatchedExecutor {
        seed: 99,
        parallel: true,
    };
    let tree = TreeExecutor {
        seed: 99,
        parallel: true,
    };

    assert_bitwise_identical(
        "sv/exhaustive",
        &tree.execute(&small_sv, &small_noisy, &small_plan),
        &flat.execute(&small_sv, &small_noisy, &small_plan),
    );
    assert_bitwise_identical(
        "mps/exhaustive",
        &tree.execute(&small_mps, &small_noisy, &small_plan),
        &flat.execute(&small_mps, &small_noisy, &small_plan),
    );

    for (name, plan) in &plans {
        let prefix_tree = PtsPlanTree::from_plan(plan);
        if plan.n_trajectories() > 1 {
            assert!(
                prefix_tree.n_edges() < prefix_tree.flat_prep_ops(),
                "{name}: expected strictly fewer site-advances than flat \
                 ({} vs {})",
                prefix_tree.n_edges(),
                prefix_tree.flat_prep_ops()
            );
        }
        let r_sv_flat = flat.execute(&sv, &noisy, plan);
        let r_sv_tree = tree.execute(&sv, &noisy, plan);
        assert_bitwise_identical(&format!("sv/{name}"), &r_sv_tree, &r_sv_flat);

        let r_mps_flat = flat.execute(&mps, &noisy, plan);
        let r_mps_tree = tree.execute(&mps, &noisy, plan);
        assert_bitwise_identical(&format!("mps/{name}"), &r_mps_tree, &r_mps_flat);
    }
}

#[test]
fn tree_executor_handles_general_channels_identically() {
    // Amplitude damping exercises the non-unitary Kraus path, where the
    // realized probability is state-dependent and zero-probability
    // branches must stay empty on both executors.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    let noisy = NoiseModel::new()
        .with_default_1q(channels::amplitude_damping(0.2))
        .with_default_2q(channels::amplitude_damping(0.2))
        .apply(&c);
    let mut rng = PhiloxRng::new(911, 0);
    let plan = ExhaustivePts {
        shots_per_trajectory: 20,
        max_trajectories: 200,
    }
    .sample_plan(&noisy, &mut rng);
    let sv = SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap();
    let r_flat = BatchedExecutor {
        seed: 5,
        parallel: false,
    }
    .execute(&sv, &noisy, &plan);
    let r_tree = TreeExecutor {
        seed: 5,
        parallel: false,
    }
    .execute(&sv, &noisy, &plan);
    assert_bitwise_identical("sv/damping", &r_tree, &r_flat);
}

#[test]
fn f32_backend_matches_f64() {
    let (_, noisy) = workload(0.05);
    let mut rng = PhiloxRng::new(906, 0);
    let plan = ProbabilisticPts {
        n_samples: 100,
        shots_per_trajectory: 400,
        dedup: true,
    }
    .sample_plan(&noisy, &mut rng);
    let exec = BatchedExecutor::default();
    let r32 = exec.execute(
        &SvBackend::<f32>::new(&noisy, SamplingStrategy::Auto).unwrap(),
        &noisy,
        &plan,
    );
    let r64 = exec.execute(
        &SvBackend::<f64>::new(&noisy, SamplingStrategy::Auto).unwrap(),
        &noisy,
        &plan,
    );
    let h32 = histogram(r32.all_shots(), 16);
    let h64 = histogram(r64.all_shots(), 16);
    assert!(
        tvd(&h32, &h64) < 0.02,
        "f32 vs f64 TVD: {}",
        tvd(&h32, &h64)
    );
}
