//! Dependency-free stand-in for the subset of `proptest` this workspace
//! uses: range/tuple/`Just`/`vec` strategies, `prop_flat_map`/`prop_map`,
//! the `proptest!` macro with `proptest_config`, and the `prop_assert*`
//! family.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! SplitMix64 stream seeded per case index (no persisted failure corpus),
//! and there is no shrinking — a failing case panics with its case number
//! so it can be replayed by re-running the test.

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Property-body outcome distinguishing failure from rejection.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failed: the property is violated.
    Fail(String),
    /// Case rejected by `prop_assume!` — skipped, not failed.
    Reject,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection (assumption unmet).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Chain into a dependent strategy.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }

    /// Map the generated value.
    fn prop_map<F, R>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { base: self, f }
    }
}

/// Constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, S> Strategy for FlatMap<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> S,
    S: Strategy,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// `prop_map` combinator.
pub struct MapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> Strategy for MapStrategy<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end.abs_diff(self.start));
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.abs_diff(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i32)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Element-count specification for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Vector strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi - self.size.lo).max(1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({lhs:?} vs {rhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {lhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Reject the current case (skip without failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// The property-test macro: each `fn name(args in strategy) { body }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejected = 0u32;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::new(
                    (case as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                        ^ (stringify!($name).len() as u64),
                );
                let ($($pat,)*) = (
                    $( $crate::Strategy::generate(&($strat), &mut __rng), )*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        { $body };
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property `{}` failed at case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "proptest property `{}`: every case was rejected",
                stringify!($name)
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn dependent() -> impl Strategy<Value = (usize, Vec<usize>)> {
        (2usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 1..8)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in 0.25f64..0.75, b in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn flat_map_keeps_dependency((n, xs) in dependent()) {
            prop_assert!(!xs.is_empty());
            for &x in &xs {
                prop_assert!(x < n, "element {x} out of bound {n}");
            }
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
