//! Dependency-free stand-in for the subset of `serde` this workspace
//! uses: a JSON-shaped value tree, `Serialize`/`Deserialize` traits over
//! it, and derive macros (re-exported from the local `serde_derive`).
//!
//! The real serde's zero-copy serializer architecture is overkill here —
//! the dataset layer serializes small provenance structs, so a value tree
//! keeps the shim tiny while preserving exact integer round-trips (the
//! number type separates `u128`/`i128`/`f64` rather than forcing `f64`).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped number preserving integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u128),
    /// Negative integer.
    I(i128),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Value as `f64` (lossy for huge integers, exact otherwise).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// Value as `u128` when exactly representable.
    pub fn as_u128(&self) -> Option<u128> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u128::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= 1e38 => Some(f as u128),
            Number::F(_) => None,
        }
    }

    /// Value as `i128` when exactly representable.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::U(u) => i128::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= 1e38 => Some(f as i128),
            Number::F(_) => None,
        }
    }
}

/// JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Numeric literal.
    Number(Number),
    /// String literal.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key-value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the value tree.
    ///
    /// # Errors
    /// Shape or range mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(u128::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u128()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::msg("unsigned integer out of range")),
                    _ => Err(Error::msg("expected unsigned integer")),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i128::from(*self);
                if v >= 0 {
                    Value::Number(Number::U(v as u128))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i128()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg("integer out of range")),
                    _ => Err(Error::msg("expected integer")),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U(*self as u128))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value).map(|u| u as usize)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).map(|i| i as isize)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
