//! Dependency-free stand-in for the subset of the `rayon` API this
//! workspace uses, built on `std::thread::scope`.
//!
//! The container this repo builds in has no registry access, so the real
//! rayon cannot be vendored. This shim keeps the call sites untouched:
//! `par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter` (ranges and vectors), the `map`/`enumerate`/`for_each`
//! /`collect`/`reduce` adapters, plus `ThreadPoolBuilder::install` and
//! `current_num_threads`.
//!
//! Parallelism is real (scoped OS threads over contiguous splits), ordered
//! (results are concatenated in input order, matching rayon's indexed
//! collect), and non-nested: work started from inside a worker thread runs
//! serially, so recursive fan-out cannot explode the thread count.

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// True inside a shim worker thread (forces nested work serial).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel work may use from the current context.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn effective_threads(n_items: usize) -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    current_num_threads().min(n_items).max(1)
}

// ---------------------------------------------------------------------------
// Thread pool facade

/// Builder mirroring `rayon::ThreadPoolBuilder` (thread count only).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of worker threads (0 = default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped thread-count override; `install` runs the closure with the
/// pool's thread budget visible to all shim entry points underneath.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// The pool's thread budget.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Core parallel-iterator machinery

/// Internal-iteration parallel iterator: `drive` applies an index-aware
/// callback to every item (possibly across threads) and returns the
/// results in input order.
pub trait ParallelIterator: Sized + Send {
    /// Item yielded to adapters.
    type Item: Send;

    /// Apply `f(global_index, item)` to every item, in parallel when the
    /// context allows, returning results in input order.
    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync;

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair each item with its input-order index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.drive(&|_, item| f(item));
    }

    /// Collect items in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive(&|_, item| item).into_iter().collect()
    }

    /// Rayon-style reduce with an identity constructor.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.drive(&|_, item| item).into_iter().fold(identity(), op)
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive(&|_, item| item).into_iter().sum()
    }
}

/// `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn drive<R2, G>(self, g: &G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(usize, Self::Item) -> R2 + Sync,
    {
        let f = self.f;
        self.base.drive(&move |i, item| g(i, f(item)))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);

    fn drive<R2, G>(self, g: &G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(usize, Self::Item) -> R2 + Sync,
    {
        self.base.drive(&move |i, item| g(i, (i, item)))
    }
}

/// Split `n` items into per-thread `(start, end)` ranges and run `work`
/// on each range in a scoped thread; concatenate results in order.
fn run_ranges<R, W>(n_items: usize, threads: usize, work: W) -> Vec<R>
where
    R: Send,
    W: Fn(Range<usize>) -> Vec<R> + Sync,
{
    if threads <= 1 || n_items <= 1 {
        return work(0..n_items);
    }
    let per = n_items.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * per).min(n_items)..((t + 1) * per).min(n_items))
        .filter(|r| !r.is_empty())
        .collect();
    let mut pieces: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let work = &work;
                scope.spawn(move || {
                    IN_WORKER.with(|c| c.set(true));
                    work(r)
                })
            })
            .collect();
        for h in handles {
            pieces.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n_items);
    for p in pieces {
        out.extend(p);
    }
    out
}

// ---------------------------------------------------------------------------
// Sources

/// Parallel shared-slice iterator.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;

    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync,
    {
        let slice = self.slice;
        run_ranges(slice.len(), effective_threads(slice.len()), |r| {
            slice[r.clone()]
                .iter()
                .enumerate()
                .map(|(j, item)| f(r.start + j, item))
                .collect()
        })
    }
}

/// Parallel shared-chunks iterator.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync,
    {
        let (slice, size) = (self.slice, self.size);
        let n_chunks = slice.len().div_ceil(size);
        run_ranges(n_chunks, effective_threads(n_chunks), |r| {
            r.clone()
                .map(|c| {
                    let chunk = &slice[c * size..((c + 1) * size).min(slice.len())];
                    f(c, chunk)
                })
                .collect()
        })
    }
}

/// Parallel exclusive-item iterator (split into contiguous pieces).
pub struct ParSliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParSliceIterMut<'a, T> {
    type Item = &'a mut T;

    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync,
    {
        let slice = self.slice;
        let n = slice.len();
        let threads = effective_threads(n);
        if threads <= 1 {
            return slice
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let per = n.div_ceil(threads);
        let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
        let mut rest = slice;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            pieces.push((base, head));
            base += take;
            rest = tail;
        }
        let mut results: Vec<Vec<R>> = Vec::with_capacity(pieces.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = pieces
                .into_iter()
                .map(|(off, piece)| {
                    scope.spawn(move || {
                        IN_WORKER.with(|c| c.set(true));
                        piece
                            .iter_mut()
                            .enumerate()
                            .map(|(j, item)| f(off + j, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("parallel worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in results {
            out.extend(p);
        }
        out
    }
}

/// Parallel exclusive-chunks iterator.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync,
    {
        let size = self.size;
        let slice = self.slice;
        let n_chunks = slice.len().div_ceil(size);
        let threads = effective_threads(n_chunks);
        if threads <= 1 {
            return slice
                .chunks_mut(size)
                .enumerate()
                .map(|(i, chunk)| f(i, chunk))
                .collect();
        }
        // Split at chunk-aligned boundaries so every worker owns whole
        // chunks.
        let per = n_chunks.div_ceil(threads);
        let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
        let mut rest = slice;
        let mut chunk_base = 0usize;
        while !rest.is_empty() {
            let take = (per * size).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            pieces.push((chunk_base, head));
            chunk_base += per;
            rest = tail;
        }
        let mut results: Vec<Vec<R>> = Vec::with_capacity(pieces.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = pieces
                .into_iter()
                .map(|(base, piece)| {
                    scope.spawn(move || {
                        IN_WORKER.with(|c| c.set(true));
                        piece
                            .chunks_mut(size)
                            .enumerate()
                            .map(|(j, chunk)| f(base + j, chunk))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("parallel worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n_chunks);
        for p in results {
            out.extend(p);
        }
        out
    }
}

/// Parallel range iterator.
pub struct ParRange {
    range: Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync,
    {
        let start = self.range.start;
        let n = self.range.len();
        run_ranges(n, effective_threads(n), |r| {
            r.clone().map(|i| f(i, start + i)).collect()
        })
    }
}

/// Parallel owning iterator over a vector.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn drive<R, F>(mut self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Self::Item) -> R + Sync,
    {
        let n = self.items.len();
        let threads = effective_threads(n);
        if threads <= 1 {
            return self
                .items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let per = n.div_ceil(threads);
        let mut pieces: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
        let mut base = 0usize;
        let mut drain = self.items.drain(..);
        while base < n {
            let take = per.min(n - base);
            let piece: Vec<T> = drain.by_ref().take(take).collect();
            pieces.push((base, piece));
            base += take;
        }
        drop(drain);
        let mut results: Vec<Vec<R>> = Vec::with_capacity(pieces.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = pieces
                .into_iter()
                .map(|(off, piece)| {
                    scope.spawn(move || {
                        IN_WORKER.with(|c| c.set(true));
                        piece
                            .into_iter()
                            .enumerate()
                            .map(|(j, item)| f(off + j, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("parallel worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in results {
            out.extend(p);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits

/// `into_par_iter` for owning/value sources.
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter: ParallelIterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    /// Parallel iterator over `size`-sized chunks.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T>;
    /// Parallel iterator over exclusive `size`-sized chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T> {
        ParSliceIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_reduce() {
        let v = vec![1u64; 1000];
        let total = v
            .par_iter()
            .enumerate()
            .map(|(i, &x)| i as u64 + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..1000u64).sum::<u64>() + 1000);
    }

    #[test]
    fn chunks_mut_for_each_touches_every_chunk_once() {
        let mut v = vec![0u32; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c {
                *x += i as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[1000], 101);
    }

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let out: Vec<usize> = (0..5000).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 5000);
        assert_eq!(out[0], 1);
        assert_eq!(out[4999], 5000);
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn iter_mut_parallel_updates_all() {
        let mut v = vec![1.0f64; 4096];
        v.par_iter_mut().for_each(|x| *x *= 2.0);
        assert!(v.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn install_caps_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn nested_parallelism_stays_serial() {
        let outer: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| {
                // Inner parallel call runs serially inside a worker.
                let inner: Vec<usize> = (0..100).into_par_iter().map(|j| j).collect();
                inner.len() + i
            })
            .collect();
        assert_eq!(outer.len(), 8);
        assert_eq!(outer[0], 100);
    }
}
