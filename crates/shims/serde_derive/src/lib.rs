//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! serde shim. Supports the shapes this workspace uses: non-generic
//! structs with named fields. The macro walks the raw token stream (no
//! `syn`/`quote` — the build environment has no registry access) and emits
//! impls of the shim's value-tree traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed struct: name + named field identifiers.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/keywords until `struct`.
    let mut name = None;
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive target must be a struct");
    // Find the brace-delimited field list.
    let body = tokens
        .find_map(|tok| match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive supports structs with named fields only");

    let mut fields = Vec::new();
    let mut inner = body.into_iter().peekable();
    loop {
        // Skip field attributes and doc comments.
        while matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let _ = inner.next();
            let _ = inner.next();
        }
        // Optional visibility (`pub`, `pub(crate)` …).
        if matches!(inner.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            let _ = inner.next();
            if matches!(inner.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                let _ = inner.next();
            }
        }
        let Some(TokenTree::Ident(field)) = inner.next() else {
            break;
        };
        fields.push(field.to_string());
        // Expect `:`, then skip the type until a top-level comma.
        match inner.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        for tok in inner.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    StructShape { name, fields }
}

/// Derive the shim's `Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derive the shim's `Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let inits: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     obj.iter().find(|(k, _)| k == \"{f}\").map(|(_, v)| v)\
                        .ok_or_else(|| ::serde::Error::msg(\
                            \"missing field `{f}` in {name}\"))?)?,\n",
                name = shape.name,
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let ::serde::Value::Object(obj) = value else {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         \"expected object for {name}\"));\n\
                 }};\n\
                 ::std::result::Result::Ok(Self {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
