//! Dependency-free stand-in for the subset of `criterion` this workspace
//! uses. Benchmarks run with `cargo bench` (`harness = false`): each
//! `Bencher::iter` target is warmed up, then timed adaptively until a
//! wall-clock budget is spent, and the per-iteration mean / best times are
//! printed. No statistical analysis, HTML reports, or baselines — the
//! numbers are honest wall-clock measurements suitable for A/B reading in
//! CI logs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export position matching `criterion::black_box` (deprecated there in
/// favor of `std::hint::black_box`, which callers here already use).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), 10, &mut f);
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), param),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            text: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| {
                f(b, input);
            },
        );
    }

    /// Finish the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the target.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    pub last_mean: Duration,
    /// Best per-iteration time of the last `iter` call.
    pub last_best: Duration,
}

impl Bencher {
    /// Time `f`, printing mean and best per-iteration wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up + calibration: find an iteration count that takes
        // roughly 20ms, so short targets are batched.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            best = best.min(dt / batch as u32);
            total += dt;
            iters += batch;
        }
        self.last_mean = total / iters as u32;
        self.last_best = best;
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
        last_best: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "{label:<56} mean {:>12?}  best {:>12?}",
        b.last_mean, b.last_best
    );
}

/// Group benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}
