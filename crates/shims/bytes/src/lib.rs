//! Dependency-free stand-in for the subset of the `bytes` crate this
//! workspace uses: `Bytes`/`BytesMut` with little-endian get/put and
//! `split_to`. Backed by a plain `Vec<u8>` plus a read offset — the
//! zero-copy refcounting of the real crate is unnecessary for the dataset
//! codec's access pattern (single linear pass).

/// Immutable byte buffer with a cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    off: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap owned bytes.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data, off: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.off
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` unread bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to past end of buffer");
        let piece = self.data[self.off..self.off + n].to_vec();
        self.off += n;
        Bytes {
            data: piece,
            off: 0,
        }
    }

    /// View of the unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..]
    }

    /// Copy of a sub-range of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            off: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self::from_vec(data)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            off: 0,
        }
    }
}

/// Read-side trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;

    /// True when bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.off..self.off + dst.len()]);
        self.off += dst.len();
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut w = BytesMut::new();
        w.put_slice(b"PTSB");
        w.put_u32_le(7);
        w.put_u64_le(11);
        w.put_u128_le(0xDEAD_BEEF_0123_4567);
        let mut r = w.freeze();
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PTSB");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 11);
        assert_eq!(r.get_u128_le(), 0xDEAD_BEEF_0123_4567);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(b.remaining(), 3);
        assert_eq!(&b[..], &[3, 4, 5]);
    }
}
