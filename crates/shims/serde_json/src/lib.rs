//! JSON text encoding/decoding over the local serde shim's value tree.
//!
//! Covers the `serde_json` entry points this workspace calls:
//! [`to_string`], [`to_vec`], [`to_writer`], [`from_str`], [`from_slice`].
//! Floats are printed with Rust's shortest-round-trip formatting; integers
//! are printed and parsed exactly (no `f64` round-trip).

use serde::{Deserialize, Number, Serialize, Value};
use std::io::Write;

pub use serde::Error;

/// Serialize to a JSON string.
///
/// # Errors
/// Mirrors `serde_json`'s signature; the value tree never fails to print.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to JSON bytes.
///
/// # Errors
/// See [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize into a writer.
///
/// # Errors
/// Propagates writer I/O failures as [`Error`].
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(format!("write failed: {e}")))
}

/// Deserialize from a JSON string.
///
/// # Errors
/// Parse failure or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

/// Deserialize from JSON bytes.
///
/// # Errors
/// Invalid UTF-8, parse failure, or shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::F(f)) => {
            if f.is_finite() {
                // `{:?}` is shortest-round-trip for floats in modern Rust.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                // JSON has no inf/NaN; serialize as null like serde_json.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_tree() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Number(Number::U(18_446_744_073_709_551_615)),
            ),
            ("b".into(), Value::Number(Number::F(0.1))),
            ("c".into(), Value::String("x\"\\\n".into())),
            (
                "d".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1e-300, std::f64::consts::PI, -7.25] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn vec_of_usize_round_trips() {
        let v = vec![0usize, 3, 17, usize::MAX];
        let text = to_string(&v).unwrap();
        let back: Vec<usize> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
