//! Exact density-matrix simulator: the validation oracle.
//!
//! The paper frames trajectory methods as the tractable approximation to
//! exact `2^n × 2^n` density-matrix evolution (§1–2). This crate provides
//! that exact evolution at small `n` so the workspace can *prove* its
//! trajectory machinery correct: the trajectory-ensemble average must
//! converge to the channel-evolved density matrix, and PTSBE's
//! importance-weighted estimators must agree with oracle expectations.
//!
//! `f64` only — oracles don't get to cut precision corners.

use ptsbe_circuit::{KrausChannel, NoisyCircuit, NoisyOp};
use ptsbe_math::{svd::svd, Complex, Matrix, C64};

/// An `n`-qubit density matrix (row-major `2^n × 2^n`).
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    data: Vec<C64>,
}

impl DensityMatrix {
    /// |0…0⟩⟨0…0| on `n_qubits`.
    ///
    /// # Panics
    /// Panics above 13 qubits (4^13 × 16 B = 1 GiB; the oracle is for
    /// small systems by design).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits <= 13, "density matrix oracle limited to 13 qubits");
        let dim = 1usize << n_qubits;
        let mut data = vec![C64::zero(); dim * dim];
        data[0] = C64::one();
        Self {
            n_qubits,
            dim,
            data,
        }
    }

    /// Pure-state density matrix |ψ⟩⟨ψ| from amplitudes.
    pub fn from_pure(amps: &[C64]) -> Self {
        assert!(amps.len().is_power_of_two());
        let dim = amps.len();
        let n_qubits = dim.trailing_zeros() as usize;
        let mut data = vec![C64::zero(); dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        Self {
            n_qubits,
            dim,
            data,
        }
    }

    /// The maximally mixed state `I/2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        let mut dm = Self::zero_state(n_qubits);
        dm.data.fill(C64::zero());
        let w = 1.0 / dim as f64;
        for i in 0..dim {
            dm.data[i * dim + i] = C64::real(w);
        }
        dm
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> C64 {
        self.data[r * self.dim + c]
    }

    /// Trace (≈ 1 for a normalized state).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.data[i * self.dim + i].re).sum()
    }

    /// Purity `tr(ρ²)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // tr(ρ²) = Σ_{rc} ρ_{rc} ρ_{cr} = Σ_{rc} |ρ_{rc}|² (Hermitian).
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Measurement distribution over the computational basis.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re.max(0.0))
            .collect()
    }

    /// Probability qubit `q` measures 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        (0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.data[i * self.dim + i].re)
            .sum()
    }

    /// `⟨ψ|ρ|ψ⟩` — fidelity against a pure state.
    pub fn fidelity_pure(&self, amps: &[C64]) -> f64 {
        assert_eq!(amps.len(), self.dim);
        let mut acc = C64::zero();
        for r in 0..self.dim {
            let mut row = C64::zero();
            let cells = &self.data[r * self.dim..(r + 1) * self.dim];
            for (&m, &a) in cells.iter().zip(amps) {
                row += m * a;
            }
            acc += amps[r].conj() * row;
        }
        acc.re
    }

    /// Trace distance `½‖ρ−σ‖₁` (via singular values of the Hermitian
    /// difference).
    pub fn trace_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.dim, other.dim);
        let mut diff = Matrix::<f64>::zeros(self.dim, self.dim);
        for r in 0..self.dim {
            for c in 0..self.dim {
                diff[(r, c)] = self.get(r, c) - other.get(r, c);
            }
        }
        0.5 * svd(&diff).s.iter().sum::<f64>()
    }

    /// Apply a unitary on the listed qubits: `ρ → UρU†`.
    pub fn apply_unitary(&mut self, u: &Matrix<f64>, qubits: &[usize]) {
        self.apply_left(u, qubits);
        self.apply_right_dagger(u, qubits);
    }

    /// Apply a CPTP channel: `ρ → Σ K ρ K†`.
    pub fn apply_channel_ops(&mut self, ops: &[&Matrix<f64>], qubits: &[usize]) {
        let mut acc = vec![C64::zero(); self.data.len()];
        let original = self.data.clone();
        for k in ops {
            self.data.copy_from_slice(&original);
            self.apply_left(k, qubits);
            self.apply_right_dagger(k, qubits);
            for (a, d) in acc.iter_mut().zip(&self.data) {
                *a += *d;
            }
        }
        self.data = acc;
    }

    /// Apply a [`KrausChannel`].
    pub fn apply_channel(&mut self, ch: &KrausChannel, qubits: &[usize]) {
        let ops: Vec<&Matrix<f64>> = ch.ops().iter().map(|k| k.as_ref()).collect();
        self.apply_channel_ops(&ops, qubits);
    }

    /// Left multiplication `ρ → M ρ` where `M` acts on `qubits`.
    fn apply_left(&mut self, m: &Matrix<f64>, qubits: &[usize]) {
        let k = qubits.len();
        let gdim = 1usize << k;
        assert_eq!(m.rows(), gdim);
        let offsets = bit_offsets(qubits);
        let free = free_indices(self.n_qubits, qubits);
        let dim = self.dim;
        let mut x = vec![C64::zero(); gdim];
        for col in 0..dim {
            for &base in &free {
                for (g, &off) in offsets.iter().enumerate() {
                    x[g] = self.data[(base + off) * dim + col];
                }
                for (r, &off) in offsets.iter().enumerate() {
                    let mut acc = C64::zero();
                    for (c, &xc) in x.iter().enumerate() {
                        acc += m[(r, c)] * xc;
                    }
                    self.data[(base + off) * dim + col] = acc;
                }
            }
        }
    }

    /// Right multiplication `ρ → ρ M†` where `M` acts on `qubits`.
    fn apply_right_dagger(&mut self, m: &Matrix<f64>, qubits: &[usize]) {
        let k = qubits.len();
        let gdim = 1usize << k;
        let offsets = bit_offsets(qubits);
        let free = free_indices(self.n_qubits, qubits);
        let dim = self.dim;
        let mut x = vec![C64::zero(); gdim];
        for row in 0..dim {
            let row_base = row * dim;
            for &base in &free {
                for (g, &off) in offsets.iter().enumerate() {
                    x[g] = self.data[row_base + base + off];
                }
                // (ρ M†)_{r,c} = Σ_j ρ_{r,j} conj(M_{c,j})
                for (cidx, &off) in offsets.iter().enumerate() {
                    let mut acc = C64::zero();
                    for (j, &xj) in x.iter().enumerate() {
                        acc += xj * m[(cidx, j)].conj();
                    }
                    self.data[row_base + base + off] = acc;
                }
            }
        }
    }

    /// Partial trace keeping only `keep` (ascending order defines the new
    /// qubit labels).
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        let mut keep_sorted = keep.to_vec();
        keep_sorted.sort_unstable();
        keep_sorted.dedup();
        assert_eq!(
            keep_sorted.len(),
            keep.len(),
            "partial_trace: duplicate qubits"
        );
        let kn = keep_sorted.len();
        let traced: Vec<usize> = (0..self.n_qubits)
            .filter(|q| !keep_sorted.contains(q))
            .collect();
        let kdim = 1usize << kn;
        let tdim = 1usize << traced.len();
        let mut out = vec![C64::zero(); kdim * kdim];
        let expand = |bits: usize, positions: &[usize]| -> usize {
            let mut idx = 0usize;
            for (t, &q) in positions.iter().enumerate() {
                idx |= ((bits >> t) & 1) << q;
            }
            idx
        };
        for r in 0..kdim {
            for c in 0..kdim {
                let mut acc = C64::zero();
                for t in 0..tdim {
                    let row = expand(r, &keep_sorted) | expand(t, &traced);
                    let col = expand(c, &keep_sorted) | expand(t, &traced);
                    acc += self.data[row * self.dim + col];
                }
                out[r * kdim + c] = acc;
            }
        }
        DensityMatrix {
            n_qubits: kn,
            dim: kdim,
            data: out,
        }
    }

    /// Exactly evolve a [`NoisyCircuit`] (terminal measurements ignored —
    /// read the distribution off [`DensityMatrix::probabilities`]).
    pub fn evolve(nc: &NoisyCircuit) -> DensityMatrix {
        let mut dm = DensityMatrix::zero_state(nc.n_qubits());
        for op in nc.ops() {
            match op {
                NoisyOp::Gate(g) => {
                    let m = g.gate.matrix::<f64>();
                    dm.apply_unitary(&m, &g.qubits);
                }
                NoisyOp::Site(id) => {
                    let site = &nc.sites()[*id];
                    dm.apply_channel(&site.channel, &site.qubits);
                }
                NoisyOp::Measure { .. } => {}
                NoisyOp::Reset { qubit } => {
                    // Reset = measure-and-discard: ρ → P0ρP0 + X P1ρP1 X.
                    let mut p0 = Matrix::<f64>::zeros(2, 2);
                    p0[(0, 0)] = Complex::one();
                    let mut xp1 = Matrix::<f64>::zeros(2, 2);
                    xp1[(0, 1)] = Complex::one();
                    dm.apply_channel_ops(&[&p0, &xp1], &[*qubit]);
                }
            }
        }
        dm
    }

    /// `tr(ρ · P)` for an n-qubit Pauli string given as per-qubit letters
    /// (index = qubit): the oracle-side observable evaluator.
    pub fn expectation_pauli(&self, letters: &[char]) -> f64 {
        assert_eq!(letters.len(), self.n_qubits, "one letter per qubit");
        let mut p = Matrix::<f64>::identity(1);
        // Build P = P_{n-1} ⊗ … ⊗ P_0 to match LSB-first indexing.
        for &ch in letters.iter().rev() {
            let m = match ch {
                'I' => Matrix::identity(2),
                'X' => ptsbe_math::gates::x(),
                'Y' => ptsbe_math::gates::y(),
                'Z' => ptsbe_math::gates::z(),
                _ => panic!("expectation_pauli: invalid letter {ch:?}"),
            };
            p = p.kron(&m);
        }
        // tr(ρP) = Σ_{rc} ρ_{rc} P_{cr}.
        let mut acc = C64::zero();
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += self.data[r * self.dim + c] * p[(c, r)];
            }
        }
        acc.re
    }
}

fn bit_offsets(qubits: &[usize]) -> Vec<usize> {
    let k = qubits.len();
    let dim = 1usize << k;
    (0..dim)
        .map(|g| {
            let mut off = 0usize;
            for (t, &q) in qubits.iter().enumerate() {
                off |= ((g >> (k - 1 - t)) & 1) << q;
            }
            off
        })
        .collect()
}

fn free_indices(n_qubits: usize, qubits: &[usize]) -> Vec<usize> {
    let free_qubits: Vec<usize> = (0..n_qubits).filter(|q| !qubits.contains(q)).collect();
    let n = 1usize << free_qubits.len();
    (0..n)
        .map(|bits| {
            let mut idx = 0usize;
            for (t, &q) in free_qubits.iter().enumerate() {
                idx |= ((bits >> t) & 1) << q;
            }
            idx
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_circuit::{channels, Circuit, NoiseModel};
    use ptsbe_math::gates;

    #[test]
    fn zero_state_properties() {
        let dm = DensityMatrix::zero_state(3);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
        assert!((dm.purity() - 1.0).abs() < 1e-12);
        assert!((dm.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).sy(2);
        let sv = ptsbe_statevector::run_pure::<f64>(&c).unwrap();
        let nc = NoisyCircuit::from_circuit(c);
        let dm = DensityMatrix::evolve(&nc);
        let probs_sv = sv.probabilities();
        let probs_dm = dm.probabilities();
        for (a, b) in probs_sv.iter().zip(&probs_dm) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((dm.purity() - 1.0).abs() < 1e-12);
        assert!((dm.fidelity_pure(sv.amplitudes()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_drives_to_maximally_mixed() {
        let mut dm = DensityMatrix::zero_state(1);
        let ch = channels::depolarizing(0.75); // p=3/4 = full depolarization
        dm.apply_channel(&ch, &[0]);
        let mm = DensityMatrix::maximally_mixed(1);
        assert!(dm.trace_distance(&mm) < 1e-12);
        assert!((dm.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_fixed_point() {
        // Repeated damping sends everything to |0⟩.
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply_unitary(&gates::x(), &[0]);
        let ch = channels::amplitude_damping(0.5);
        for _ in 0..40 {
            dm.apply_channel(&ch, &[0]);
        }
        assert!(dm.prob_one(0) < 1e-10);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn channel_preserves_trace_and_hermiticity() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.3))
            .with_default_2q(channels::depolarizing2(0.2))
            .apply(&c);
        let dm = DensityMatrix::evolve(&nc);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        for r in 0..dm.dim() {
            for cidx in 0..dm.dim() {
                let a = dm.get(r, cidx);
                let b = dm.get(cidx, r).conj();
                assert!((a - b).abs() < 1e-10, "not Hermitian at ({r},{cidx})");
            }
        }
        // Probabilities are a distribution.
        let p = dm.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(p.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn partial_trace_of_bell_is_maximally_mixed() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let dm = DensityMatrix::evolve(&NoisyCircuit::from_circuit(c));
        let reduced = dm.partial_trace(&[0]);
        assert_eq!(reduced.n_qubits(), 1);
        let mm = DensityMatrix::maximally_mixed(1);
        assert!(reduced.trace_distance(&mm) < 1e-12);
    }

    #[test]
    fn partial_trace_of_product_state() {
        let mut c = Circuit::new(2);
        c.x(1); // |10⟩ : qubit1 = 1
        let dm = DensityMatrix::evolve(&NoisyCircuit::from_circuit(c));
        let q1 = dm.partial_trace(&[1]);
        assert!((q1.prob_one(0) - 1.0).abs() < 1e-12);
        let q0 = dm.partial_trace(&[0]);
        assert!(q0.prob_one(0) < 1e-12);
    }

    #[test]
    fn trace_distance_metric_properties() {
        let a = DensityMatrix::zero_state(1);
        let mut b = DensityMatrix::zero_state(1);
        b.apply_unitary(&gates::x(), &[0]);
        // Orthogonal pure states: distance 1.
        assert!((a.trace_distance(&b) - 1.0).abs() < 1e-10);
        assert!(a.trace_distance(&a) < 1e-12);
        // Symmetry.
        assert!((a.trace_distance(&b) - b.trace_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn reset_channel() {
        let mut c = Circuit::new(1);
        c.h(0).reset(0);
        let dm = DensityMatrix::evolve(&NoisyCircuit::from_circuit(c));
        assert!((dm.probabilities()[0] - 1.0).abs() < 1e-12);
        assert!((dm.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_gate_on_nonadjacent_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2);
        let sv = ptsbe_statevector::run_pure::<f64>(&c).unwrap();
        let dm = DensityMatrix::evolve(&NoisyCircuit::from_circuit(c));
        for (i, p) in dm.probabilities().iter().enumerate() {
            assert!((p - sv.probability(i as u64)).abs() < 1e-12);
        }
    }

    #[test]
    fn mixed_state_fidelity_pure() {
        let mm = DensityMatrix::maximally_mixed(2);
        let amps = vec![C64::one(), C64::zero(), C64::zero(), C64::zero()];
        assert!((mm.fidelity_pure(&amps) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pauli_expectations() {
        // Bell state: ⟨XX⟩ = ⟨ZZ⟩ = +1, ⟨YY⟩ = −1, singles vanish.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let dm = DensityMatrix::evolve(&NoisyCircuit::from_circuit(c));
        assert!((dm.expectation_pauli(&['X', 'X']) - 1.0).abs() < 1e-10);
        assert!((dm.expectation_pauli(&['Z', 'Z']) - 1.0).abs() < 1e-10);
        assert!((dm.expectation_pauli(&['Y', 'Y']) + 1.0).abs() < 1e-10);
        assert!(dm.expectation_pauli(&['Z', 'I']).abs() < 1e-10);
        assert!(dm.expectation_pauli(&['I', 'X']).abs() < 1e-10);
        // Identity has unit expectation on any state.
        assert!((dm.expectation_pauli(&['I', 'I']) - 1.0).abs() < 1e-10);
    }
}
