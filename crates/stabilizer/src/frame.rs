//! Bit-packed Pauli-frame bulk sampler (Stim's reference-frame method,
//! paper §2.3: "a reference frame sampler to efficiently bulk sample noisy
//! simulation data at a rate of MHz").
//!
//! One exact tableau run produces the *reference* measurement record; then
//! every shot is represented as a Pauli frame — the Pauli difference
//! between that shot's state and the reference — packed 64 shots per
//! machine word. Clifford gates act on frames by XOR rules; Pauli noise
//! injects bit-masks; measurement outcomes are `reference ⊕ frame_x`.
//!
//! Exactness domain (same as Stim): when the noiseless reference circuit
//! has deterministic measurements, the sampled records are exact iid
//! samples of the noisy circuit. Intrinsically random reference
//! measurements are flagged via [`FrameResult::reference_was_random`] —
//! all shots then share the reference's coin flips (still valid for
//! detector-style differences).

use crate::convert::{lower, CliffordOp, StabOp, StabProgram};
use crate::pauli::Pauli;
use crate::tableau::Tableau;
use ptsbe_circuit::NoisyCircuit;
use ptsbe_rng::{categorical::index_of, mask::fill_bernoulli_words, Rng};

/// Frame-sampling failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The circuit contains a non-Clifford gate (named).
    NonClifford(&'static str),
    /// A noise channel is not a Pauli mixture.
    NonPauliChannel,
    /// Unsupported operation.
    Unsupported(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NonClifford(g) => write!(f, "non-Clifford gate '{g}'"),
            FrameError::NonPauliChannel => write!(f, "noise channel is not a Pauli mixture"),
            FrameError::Unsupported(w) => write!(f, "unsupported operation: {w}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Output of a bulk frame-sampling run.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// One record per shot; bit `t` = measured qubit `t` (record order).
    pub shots: Vec<u128>,
    /// Number of measured bits per record.
    pub n_bits: usize,
    /// True when any reference measurement was intrinsically random.
    pub reference_was_random: bool,
}

/// The bulk sampler: lowers a circuit once, then samples any number of
/// shots in 64-wide batches.
pub struct FrameSampler {
    program: StabProgram,
    reference: Vec<bool>,
    reference_was_random: bool,
}

impl FrameSampler {
    /// Lower `nc` and run the noiseless reference simulation.
    pub fn new<R: Rng + ?Sized>(nc: &NoisyCircuit, rng: &mut R) -> Result<Self, FrameError> {
        let program = lower(nc)?;
        assert!(
            program.measured.len() <= 128,
            "frame sampler records are limited to 128 measured bits"
        );
        let mut tab = Tableau::zero_state(program.n_qubits);
        let mut reference = Vec::with_capacity(program.measured.len());
        let mut was_random = false;
        for op in &program.ops {
            match op {
                StabOp::Gate(g) => apply_tableau_gate(&mut tab, *g),
                StabOp::Site(_) => {} // reference is noiseless
                StabOp::Measure(qubits) => {
                    for &q in qubits {
                        let (outcome, random) = tab.measure(q, rng);
                        was_random |= random;
                        reference.push(outcome);
                    }
                }
            }
        }
        Ok(Self {
            program,
            reference,
            reference_was_random: was_random,
        })
    }

    /// The lowered program (for inspection/benchmarks).
    pub fn program(&self) -> &StabProgram {
        &self.program
    }

    /// Whether any reference measurement was intrinsically random — the
    /// sampler's exactness gate: per-shot records are exact iid samples
    /// only when this is `false` (the service router refuses to route
    /// jobs here otherwise).
    pub fn reference_was_random(&self) -> bool {
        self.reference_was_random
    }

    /// Measured bits per record, in record order.
    pub fn n_measured(&self) -> usize {
        self.program.measured.len()
    }

    /// Sample `shots` measurement records.
    pub fn sample<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> FrameResult {
        let n = self.program.n_qubits;
        let nwords = shots.div_ceil(64);
        // Frame bits per qubit, packed across shots.
        let mut fx = vec![vec![0u64; nwords]; n];
        let mut fz = vec![vec![0u64; nwords]; n];
        let mut records = vec![0u128; shots];
        let mut bit_idx = 0usize;
        let mut scratch = vec![0u64; nwords];

        for op in &self.program.ops {
            match op {
                StabOp::Gate(g) => apply_frame_gate(&mut fx, &mut fz, *g),
                StabOp::Site(id) => {
                    let site = &self.program.sites[*id];
                    inject_noise(&mut fx, &mut fz, site, shots, &mut scratch, rng);
                }
                StabOp::Measure(qubits) => {
                    for &q in qubits {
                        let ref_bit = self.reference[bit_idx];
                        // outcome(shot) = ref ⊕ fx[q](shot)
                        for (w, &word) in fx[q].iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let b = bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                let shot = w * 64 + b;
                                if shot < shots {
                                    records[shot] ^= 1u128 << bit_idx;
                                }
                            }
                        }
                        if ref_bit {
                            for rec in records.iter_mut() {
                                *rec ^= 1u128 << bit_idx;
                            }
                        }
                        // Collapse: randomize the Z frame on the measured
                        // qubit (Gidney, Stim §4.2).
                        fill_bernoulli_words(&mut scratch, shots, 0.5, rng);
                        for (dst, src) in fz[q].iter_mut().zip(&scratch) {
                            *dst ^= src;
                        }
                        bit_idx += 1;
                    }
                }
            }
        }
        FrameResult {
            shots: records,
            n_bits: self.program.measured.len(),
            reference_was_random: self.reference_was_random,
        }
    }
}

fn apply_tableau_gate(tab: &mut Tableau, g: CliffordOp) {
    match g {
        CliffordOp::H(q) => tab.h(q),
        CliffordOp::S(q) => tab.s(q),
        CliffordOp::Sdg(q) => tab.sdg(q),
        CliffordOp::Sx(q) => tab.sx(q),
        CliffordOp::Sxdg(q) => tab.sxdg(q),
        CliffordOp::Sy(q) => tab.sy(q),
        CliffordOp::Sydg(q) => tab.sydg(q),
        CliffordOp::X(q) => tab.x(q),
        CliffordOp::Y(q) => tab.y(q),
        CliffordOp::Z(q) => tab.z(q),
        CliffordOp::Cx(c, t) => tab.cx(c, t),
        CliffordOp::Cz(a, b) => tab.cz(a, b),
        CliffordOp::Swap(a, b) => tab.swap(a, b),
    }
}

/// Run a full per-shot tableau simulation of a lowered program — the slow
/// baseline E6 compares the frame sampler against.
pub fn tableau_sample_one<R: Rng + ?Sized>(program: &StabProgram, rng: &mut R) -> u128 {
    let mut tab = Tableau::zero_state(program.n_qubits);
    let mut record = 0u128;
    let mut bit = 0usize;
    for op in &program.ops {
        match op {
            StabOp::Gate(g) => apply_tableau_gate(&mut tab, *g),
            StabOp::Site(id) => {
                let site = &program.sites[*id];
                let r = rng.next_f64();
                let k = index_of(r, &site.probs);
                for (t, &q) in site.qubits.iter().enumerate() {
                    tab.apply_pauli(q, site.paulis[k][t]);
                }
            }
            StabOp::Measure(qubits) => {
                for &q in qubits {
                    let (outcome, _) = tab.measure(q, rng);
                    if outcome {
                        record |= 1u128 << bit;
                    }
                    bit += 1;
                }
            }
        }
    }
    record
}

/// Frame propagation rules (signs are irrelevant for frames).
fn apply_frame_gate(fx: &mut [Vec<u64>], fz: &mut [Vec<u64>], g: CliffordOp) {
    match g {
        // H: X ↔ Z.
        CliffordOp::H(q) | CliffordOp::Sy(q) | CliffordOp::Sydg(q) => {
            // √Y and √Y† also exchange X and Z (up to signs).
            fx[q].iter_mut().zip(fz[q].iter_mut()).for_each(|(x, z)| {
                std::mem::swap(x, z);
            });
        }
        // S/S†: X → Y (z ^= x).
        CliffordOp::S(q) | CliffordOp::Sdg(q) => {
            for (z, &x) in fz[q].iter_mut().zip(fx[q].iter()) {
                *z ^= x;
            }
        }
        // √X/√X†: Z → Y (x ^= z).
        CliffordOp::Sx(q) | CliffordOp::Sxdg(q) => {
            for (x, &z) in fx[q].iter_mut().zip(fz[q].iter()) {
                *x ^= z;
            }
        }
        // Paulis commute with frames.
        CliffordOp::X(_) | CliffordOp::Y(_) | CliffordOp::Z(_) => {}
        CliffordOp::Cx(c, t) => {
            // X on control propagates to target; Z on target to control.
            let (fxc, fxt) = two_mut(fx, c, t);
            for (t_, &c_) in fxt.iter_mut().zip(fxc.iter()) {
                *t_ ^= c_;
            }
            let (fzc, fzt) = two_mut(fz, c, t);
            for (c_, &t_) in fzc.iter_mut().zip(fzt.iter()) {
                *c_ ^= t_;
            }
        }
        CliffordOp::Cz(a, b) => {
            let (fxa, fxb) = two_mut(fx, a, b);
            // X_a → X_a Z_b and X_b → X_b Z_a.
            let (fza, fzb) = two_mut(fz, a, b);
            for i in 0..fxa.len() {
                fzb[i] ^= fxa[i];
                fza[i] ^= fxb[i];
            }
        }
        CliffordOp::Swap(a, b) => {
            fx.swap(a, b);
            fz.swap(a, b);
        }
    }
}

/// Split two distinct rows of a per-qubit table mutably.
fn two_mut(v: &mut [Vec<u64>], i: usize, j: usize) -> (&mut Vec<u64>, &mut Vec<u64>) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = v.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = v.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

/// Inject one Pauli-mixture site across all shots: a Bernoulli mask picks
/// the erred shots, then each erred shot draws a branch (sparse iteration,
/// so cost scales with the error rate).
fn inject_noise<R: Rng + ?Sized>(
    fx: &mut [Vec<u64>],
    fz: &mut [Vec<u64>],
    site: &crate::convert::PauliSite,
    shots: usize,
    scratch: &mut [u64],
    rng: &mut R,
) {
    // Identity branch probability; all-error mass drives the mask.
    let identity_idx = site
        .paulis
        .iter()
        .position(|ps| ps.iter().all(|&p| p == Pauli::I));
    let p_err: f64 = match identity_idx {
        Some(idx) => 1.0 - site.probs[idx],
        None => 1.0,
    };
    if p_err <= 0.0 {
        return;
    }
    // Conditional branch weights among errors.
    let mut err_branches: Vec<(usize, f64)> = Vec::with_capacity(site.probs.len());
    for (i, &p) in site.probs.iter().enumerate() {
        if Some(i) != identity_idx && p > 0.0 {
            err_branches.push((i, p));
        }
    }
    if err_branches.is_empty() {
        return;
    }
    let cond: Vec<f64> = err_branches.iter().map(|(_, p)| p / p_err).collect();
    fill_bernoulli_words(scratch, shots, p_err, rng);
    for (w, &word) in scratch.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let shot = w * 64 + b;
            if shot >= shots {
                break;
            }
            let branch = if cond.len() == 1 {
                0
            } else {
                index_of(rng.next_f64(), &cond)
            };
            let (k, _) = err_branches[branch];
            for (t, &q) in site.qubits.iter().enumerate() {
                let (xb, zb) = site.paulis[k][t].bits();
                if xb {
                    fx[q][w] ^= 1u64 << b;
                }
                if zb {
                    fz[q][w] ^= 1u64 << b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_circuit::{channels, Circuit, NoiseModel};
    use ptsbe_rng::PhiloxRng;

    /// A deterministic-reference circuit: |0⟩ with X-flip noise, measured.
    fn flip_circuit(p: f64) -> NoisyCircuit {
        let mut c = Circuit::new(1);
        c.x(0).x(0); // identity, but gives the noise two attachment points
        c.measure_all();
        NoiseModel::new()
            .with_default_1q(channels::bit_flip(p))
            .apply(&c)
    }

    #[test]
    fn noiseless_reference_matches() {
        let mut c = Circuit::new(3);
        c.x(1).measure_all();
        let nc = NoiseModel::new().apply(&c);
        let mut rng = PhiloxRng::new(100, 0);
        let sampler = FrameSampler::new(&nc, &mut rng).unwrap();
        let result = sampler.sample(100, &mut rng);
        assert!(!result.reference_was_random);
        assert_eq!(result.n_bits, 3);
        assert!(result.shots.iter().all(|&s| s == 0b010));
    }

    #[test]
    fn flip_statistics() {
        let p = 0.2;
        let nc = flip_circuit(p);
        let mut rng = PhiloxRng::new(101, 0);
        let sampler = FrameSampler::new(&nc, &mut rng).unwrap();
        let shots = 200_000;
        let result = sampler.sample(shots, &mut rng);
        // Two independent flips each with prob p: P(1) = 2p(1-p).
        let expect = 2.0 * p * (1.0 - p);
        let ones = result.shots.iter().filter(|&&s| s == 1).count();
        let frac = ones as f64 / shots as f64;
        assert!((frac - expect).abs() < 0.005, "frac {frac} vs {expect}");
    }

    #[test]
    fn frame_sampler_matches_tableau_distribution() {
        // Repetition-code-style parity circuit with depolarizing noise.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).cx(0, 1).measure_all();
        let nc = NoiseModel::new()
            .with_default_2q(channels::depolarizing(0.15))
            .apply(&c);
        let mut rng = PhiloxRng::new(102, 0);
        let sampler = FrameSampler::new(&nc, &mut rng).unwrap();
        assert!(!sampler.reference_was_random);
        let shots = 100_000;
        let bulk = sampler.sample(shots, &mut rng);

        let program = sampler.program();
        let mut counts_bulk = [0usize; 8];
        for &s in &bulk.shots {
            counts_bulk[s as usize] += 1;
        }
        let mut counts_ref = [0usize; 8];
        for _ in 0..shots {
            counts_ref[tableau_sample_one(program, &mut rng) as usize] += 1;
        }
        for i in 0..8 {
            let a = counts_bulk[i] as f64 / shots as f64;
            let b = counts_ref[i] as f64 / shots as f64;
            assert!((a - b).abs() < 0.01, "outcome {i}: bulk {a} vs tableau {b}");
        }
    }

    #[test]
    fn random_reference_flagged() {
        let mut c = Circuit::new(1);
        c.h(0).measure_all();
        let nc = NoiseModel::new().apply(&c);
        let mut rng = PhiloxRng::new(103, 0);
        let sampler = FrameSampler::new(&nc, &mut rng).unwrap();
        let result = sampler.sample(10, &mut rng);
        assert!(result.reference_was_random);
    }

    #[test]
    fn two_qubit_noise_propagates() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).measure_all();
        let nc = NoiseModel::new()
            .with_default_2q(channels::depolarizing2(1.0))
            .apply(&c);
        let mut rng = PhiloxRng::new(104, 0);
        let sampler = FrameSampler::new(&nc, &mut rng).unwrap();
        let shots = 50_000;
        let result = sampler.sample(shots, &mut rng);
        // With p=1, the state gets a uniform non-identity 2q Pauli; X
        // components land in the record. Of 15 branches, those with X or Y
        // on a qubit flip its bit. Per qubit: 8 of 15 branches flip it.
        let expect = 8.0 / 15.0;
        for q in 0..2 {
            let ones = result.shots.iter().filter(|&&s| (s >> q) & 1 == 1).count();
            let frac = ones as f64 / shots as f64;
            assert!((frac - expect).abs() < 0.01, "qubit {q}: {frac}");
        }
    }

    #[test]
    fn sx_frame_rule_matches_tableau() {
        // sx · Z-error · sx on |0⟩: the noiseless reference is X|0⟩ = |1⟩
        // (deterministic), and the injected Z propagates through the second
        // √X into a Y frame, flipping the outcome to 0. Exercises the
        // fx ^= fz rule with a valid (deterministic) reference.
        let mut c2 = Circuit::new(1);
        c2.sx(0);
        c2.noise(std::sync::Arc::new(channels::phase_flip(1.0)), &[0]);
        c2.sx(0);
        c2.measure_all();
        let nc2 = ptsbe_circuit::NoisyCircuit::from_circuit(c2);
        let mut rng = PhiloxRng::new(105, 0);
        let sampler = FrameSampler::new(&nc2, &mut rng).unwrap();
        let bulk = sampler.sample(10_000, &mut rng);
        assert!(!bulk.reference_was_random);
        let ones_bulk = bulk.shots.iter().filter(|&&s| s == 1).count() as f64 / 10_000.0;
        let program = sampler.program();
        let mut ones_tab = 0usize;
        for _ in 0..10_000 {
            ones_tab += (tableau_sample_one(program, &mut rng) & 1) as usize;
        }
        let ones_tab = ones_tab as f64 / 10_000.0;
        assert_eq!(
            ones_bulk, 0.0,
            "Z through √X must flip the reference 1 to 0"
        );
        assert!(
            (ones_bulk - ones_tab).abs() < 0.02,
            "bulk {ones_bulk} vs tableau {ones_tab}"
        );
    }

    #[test]
    fn throughput_sanity_many_shots() {
        // 1e6 shots through a small circuit should complete fast (sparse
        // noise) — and produce the right marginal.
        let nc = flip_circuit(0.001);
        let mut rng = PhiloxRng::new(106, 0);
        let sampler = FrameSampler::new(&nc, &mut rng).unwrap();
        let shots = 1_000_000;
        let result = sampler.sample(shots, &mut rng);
        let ones = result.shots.iter().filter(|&&s| s == 1).count();
        let frac = ones as f64 / shots as f64;
        let expect = 2.0 * 0.001 * 0.999;
        assert!((frac - expect).abs() < 3e-4, "frac {frac}");
    }
}
