//! Ingest the shared circuit IR into stabilizer-executable form.
//!
//! Clifford gates map to tableau/frame operations; noise sites are
//! accepted only when their channel is a unitary mixture whose branches
//! are all Paulis (the exact domain of Pauli-frame simulation — and of
//! Stim). Everything else is a conversion error, which is the *point* of
//! the paper's comparison: PTSBE handles universal circuits, the Clifford
//! stack does not.

use crate::frame::FrameError;
use crate::pauli::Pauli;
use ptsbe_circuit::{Gate, NoisyCircuit, NoisyOp};

/// A Clifford gate in stabilizer-executable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordOp {
    /// Hadamard.
    H(usize),
    /// S.
    S(usize),
    /// S†.
    Sdg(usize),
    /// √X.
    Sx(usize),
    /// √X†.
    Sxdg(usize),
    /// √Y.
    Sy(usize),
    /// √Y†.
    Sydg(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// CNOT.
    Cx(usize, usize),
    /// CZ.
    Cz(usize, usize),
    /// SWAP.
    Swap(usize, usize),
}

/// One step of a stabilizer program.
#[derive(Debug, Clone)]
pub enum StabOp {
    /// Clifford gate.
    Gate(CliffordOp),
    /// Pauli-mixture noise site (index into the site table).
    Site(usize),
    /// Z-basis measurement.
    Measure(Vec<usize>),
}

/// A noise site lowered to Pauli branches.
#[derive(Debug, Clone)]
pub struct PauliSite {
    /// Site qubits (1 or 2).
    pub qubits: Vec<usize>,
    /// Branch probabilities.
    pub probs: Vec<f64>,
    /// Branch Paulis, one per qubit per branch.
    pub paulis: Vec<Vec<Pauli>>,
}

/// A stabilizer-executable program.
#[derive(Debug, Clone)]
pub struct StabProgram {
    /// Qubit count.
    pub n_qubits: usize,
    /// Op stream.
    pub ops: Vec<StabOp>,
    /// Lowered noise sites.
    pub sites: Vec<PauliSite>,
    /// Measured qubits in record order.
    pub measured: Vec<usize>,
}

/// Lower a [`NoisyCircuit`] to a stabilizer program.
///
/// # Errors
/// [`FrameError::NonClifford`] for non-Clifford gates;
/// [`FrameError::NonPauliChannel`] for channels that are not Pauli
/// mixtures; [`FrameError::Unsupported`] for resets.
pub fn lower(nc: &NoisyCircuit) -> Result<StabProgram, FrameError> {
    let mut ops = Vec::with_capacity(nc.ops().len());
    let mut measured = Vec::new();
    for op in nc.ops() {
        match op {
            NoisyOp::Gate(g) => ops.push(StabOp::Gate(lower_gate(&g.gate, &g.qubits)?)),
            NoisyOp::Site(id) => ops.push(StabOp::Site(*id)),
            NoisyOp::Measure { qubits } => {
                measured.extend_from_slice(qubits);
                ops.push(StabOp::Measure(qubits.clone()));
            }
            NoisyOp::Reset { .. } => return Err(FrameError::Unsupported("reset")),
        }
    }
    let sites = nc
        .sites()
        .iter()
        .map(|site| {
            let probs = site.channel.sampling_probs().to_vec();
            let paulis: Result<Vec<Vec<Pauli>>, FrameError> = (0..site.channel.n_ops())
                .map(|i| parse_pauli_label(&site.channel.branch_label(i), site.qubits.len()))
                .collect();
            Ok(PauliSite {
                qubits: site.qubits.clone(),
                probs,
                paulis: paulis?,
            })
        })
        .collect::<Result<Vec<_>, FrameError>>()?;
    Ok(StabProgram {
        n_qubits: nc.n_qubits(),
        ops,
        sites,
        measured,
    })
}

fn lower_gate(gate: &Gate, qubits: &[usize]) -> Result<CliffordOp, FrameError> {
    Ok(match (gate, qubits) {
        (Gate::H, [q]) => CliffordOp::H(*q),
        (Gate::S, [q]) => CliffordOp::S(*q),
        (Gate::Sdg, [q]) => CliffordOp::Sdg(*q),
        (Gate::Sx, [q]) => CliffordOp::Sx(*q),
        (Gate::Sxdg, [q]) => CliffordOp::Sxdg(*q),
        (Gate::Sy, [q]) => CliffordOp::Sy(*q),
        (Gate::Sydg, [q]) => CliffordOp::Sydg(*q),
        (Gate::X, [q]) => CliffordOp::X(*q),
        (Gate::Y, [q]) => CliffordOp::Y(*q),
        (Gate::Z, [q]) => CliffordOp::Z(*q),
        (Gate::Cx, [c, t]) => CliffordOp::Cx(*c, *t),
        (Gate::Cz, [a, b]) => CliffordOp::Cz(*a, *b),
        (Gate::Swap, [a, b]) => CliffordOp::Swap(*a, *b),
        _ => return Err(FrameError::NonClifford(gate.name())),
    })
}

/// Parse a channel branch label ("I", "X", …, "XZ", "IY", …) into per-qubit
/// Paulis; non-Pauli labels (e.g. "K3") are rejected.
fn parse_pauli_label(label: &str, arity: usize) -> Result<Vec<Pauli>, FrameError> {
    if label.len() != arity {
        return Err(FrameError::NonPauliChannel);
    }
    label
        .chars()
        .map(|c| match c {
            'I' => Ok(Pauli::I),
            'X' => Ok(Pauli::X),
            'Y' => Ok(Pauli::Y),
            'Z' => Ok(Pauli::Z),
            _ => Err(FrameError::NonPauliChannel),
        })
        .collect()
}

/// Branch-label order note: two-qubit labels name `(first qubit, second
/// qubit)` in the channel's argument order, matching
/// [`ptsbe_circuit::KrausChannel::branch_label`].
#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_circuit::{channels, Circuit, NoiseModel};

    #[test]
    fn lowers_clifford_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let nc = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.1))
            .apply(&c);
        let prog = lower(&nc).unwrap();
        assert_eq!(prog.n_qubits, 2);
        assert_eq!(prog.sites.len(), 1);
        assert_eq!(prog.sites[0].paulis.len(), 4);
        assert_eq!(prog.sites[0].paulis[1], vec![Pauli::X]);
        assert_eq!(prog.measured, vec![0, 1]);
    }

    #[test]
    fn rejects_t_gate() {
        let mut c = Circuit::new(1);
        c.t(0);
        let nc = ptsbe_circuit::NoisyCircuit::from_circuit(c);
        assert!(matches!(lower(&nc), Err(FrameError::NonClifford("t"))));
    }

    #[test]
    fn rejects_amplitude_damping() {
        let mut c = Circuit::new(1);
        c.h(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.1))
            .apply(&c);
        assert!(matches!(lower(&nc), Err(FrameError::NonPauliChannel)));
    }

    #[test]
    fn two_qubit_depolarizing_lowered() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).measure_all();
        let nc = NoiseModel::new()
            .with_default_2q(channels::depolarizing2(0.2))
            .apply(&c);
        let prog = lower(&nc).unwrap();
        assert_eq!(prog.sites[0].paulis.len(), 16);
        // Branch 1 = "IX": I on first qubit, X on second.
        assert_eq!(prog.sites[0].paulis[1], vec![Pauli::I, Pauli::X]);
        // Branch 4 = "XI".
        assert_eq!(prog.sites[0].paulis[4], vec![Pauli::X, Pauli::I]);
    }

    #[test]
    fn rejects_reset() {
        let mut c = Circuit::new(1);
        c.reset(0);
        let nc = ptsbe_circuit::NoisyCircuit::from_circuit(c);
        assert!(matches!(lower(&nc), Err(FrameError::Unsupported(_))));
    }
}
