//! Stabilizer (Clifford) simulation substrate — the workspace's Stim.
//!
//! The paper positions PTSBE against Clifford-restricted simulators
//! (§2.3): Stim bulk-samples noisy Clifford circuits at MHz rates via a
//! *reference-frame* sampler, but cannot touch non-Clifford gates. To make
//! that comparison runnable (experiment E6) this crate rebuilds both
//! pieces from scratch:
//!
//! - [`tableau::Tableau`] — an Aaronson–Gottesman CHP simulator: exact
//!   per-shot stabilizer evolution with measurement;
//! - [`frame::FrameSampler`] — the bulk path: one reference tableau run,
//!   then Pauli frames propagated 64-shots-per-word through the circuit,
//!   with noise injected as bit-packed Bernoulli masks
//!   ([`ptsbe_rng::mask`]).
//!
//! The frame sampler's validity domain is the same as Stim's: outputs are
//! exact samples when every measurement is deterministic in the noiseless
//! reference (true for QEC syndrome circuits); for intrinsically random
//! measurements all shots share the reference's coin flips
//! ([`frame::FrameResult::reference_was_random`] flags this).

pub mod convert;
pub mod frame;
pub mod pauli;
pub mod tableau;

pub use frame::{FrameError, FrameResult, FrameSampler};
pub use pauli::{Pauli, PauliString};
pub use tableau::Tableau;
