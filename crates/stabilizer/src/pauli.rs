//! Pauli strings over n qubits (bit-packed X/Z parts + global phase).

use std::fmt;

/// A single-qubit Pauli.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity.
    I,
    /// X.
    X,
    /// Y.
    Y,
    /// Z.
    Z,
}

impl Pauli {
    /// (x, z) symplectic bits.
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// From (x, z) bits.
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// One-letter name.
    pub fn letter(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

/// An n-qubit Pauli operator `i^phase · P_{n-1} ⊗ … ⊗ P_0` with bit-packed
/// symplectic representation. `phase` is an exponent of `i` modulo 4.
#[derive(Clone, PartialEq, Eq)]
pub struct PauliString {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    phase: u8,
}

fn words(n: usize) -> usize {
    n.div_ceil(64)
}

impl PauliString {
    /// The identity on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Self {
            n,
            x: vec![0; words(n)],
            z: vec![0; words(n)],
            phase: 0,
        }
    }

    /// Parse from a letter string, **qubit 0 first** (i.e. `"XZI"` has X on
    /// qubit 0, Z on qubit 1). Optional leading `+`/`-` sign.
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(s: &str) -> Self {
        let (phase, body) = match s.strip_prefix('-') {
            Some(rest) => (2u8, rest),
            None => (0u8, s.strip_prefix('+').unwrap_or(s)),
        };
        let mut p = Self::identity(body.len());
        p.phase = phase;
        for (q, ch) in body.chars().enumerate() {
            let pauli = match ch {
                'I' | '_' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                _ => panic!("invalid Pauli letter {ch:?}"),
            };
            p.set(q, pauli);
        }
        p
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Phase exponent of `i` (mod 4).
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// Set the phase exponent.
    pub fn set_phase(&mut self, phase: u8) {
        self.phase = phase % 4;
    }

    /// The Pauli on qubit `q`.
    pub fn get(&self, q: usize) -> Pauli {
        assert!(q < self.n);
        let (w, b) = (q / 64, q % 64);
        Pauli::from_bits((self.x[w] >> b) & 1 == 1, (self.z[w] >> b) & 1 == 1)
    }

    /// Set the Pauli on qubit `q`.
    pub fn set(&mut self, q: usize, p: Pauli) {
        assert!(q < self.n);
        let (w, b) = (q / 64, q % 64);
        let (xb, zb) = p.bits();
        self.x[w] = (self.x[w] & !(1 << b)) | ((xb as u64) << b);
        self.z[w] = (self.z[w] & !(1 << b)) | ((zb as u64) << b);
    }

    /// Number of non-identity tensor factors.
    pub fn weight(&self) -> usize {
        self.x
            .iter()
            .zip(&self.z)
            .map(|(x, z)| (x | z).count_ones() as usize)
            .sum()
    }

    /// True when `self` and `other` commute (symplectic inner product = 0).
    pub fn commutes_with(&self, other: &Self) -> bool {
        assert_eq!(self.n, other.n);
        let mut acc = 0u32;
        for i in 0..self.x.len() {
            acc ^= (self.x[i] & other.z[i]).count_ones() & 1;
            acc ^= (self.z[i] & other.x[i]).count_ones() & 1;
        }
        acc == 0
    }

    /// Multiply `self ← self · other`, tracking the `i` phase exponent.
    pub fn mul_assign(&mut self, other: &Self) {
        assert_eq!(self.n, other.n);
        let mut phase = u32::from(self.phase) + u32::from(other.phase);
        // Phase from per-qubit products: X·Z = -iY, Z·X = iY, X·Y = iZ, ...
        // For P1·P2 on one qubit with bits (x1,z1),(x2,z2) the i-exponent is
        // g = x1 z2 (1 + 2(z1 ^ x2)) - z1 x2 (1 + 2(x1 ^ z2)) ... simpler to
        // evaluate per qubit via lookup.
        for q in 0..self.n {
            let a = self.get(q);
            let b = other.get(q);
            phase = (phase + u32::from(pauli_mul_phase(a, b))) % 4;
        }
        for i in 0..self.x.len() {
            self.x[i] ^= other.x[i];
            self.z[i] ^= other.z[i];
        }
        self.phase = (phase % 4) as u8;
    }

    /// Raw X words (frame sampler internals).
    pub fn x_words(&self) -> &[u64] {
        &self.x
    }

    /// Raw Z words.
    pub fn z_words(&self) -> &[u64] {
        &self.z
    }
}

/// i-exponent of the single-qubit product `a · b` (e.g. X·Y = iZ → 1).
fn pauli_mul_phase(a: Pauli, b: Pauli) -> u8 {
    use Pauli::*;
    match (a, b) {
        (X, Y) | (Y, Z) | (Z, X) => 1,
        (Y, X) | (Z, Y) | (X, Z) => 3,
        _ => 0,
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.phase {
            0 => "+",
            1 => "+i",
            2 => "-",
            3 => "-i",
            _ => unreachable!(),
        };
        write!(f, "{sign}")?;
        for q in 0..self.n {
            write!(f, "{}", self.get(q).letter())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_access() {
        let p = PauliString::from_str("XIZY");
        assert_eq!(p.get(0), Pauli::X);
        assert_eq!(p.get(1), Pauli::I);
        assert_eq!(p.get(2), Pauli::Z);
        assert_eq!(p.get(3), Pauli::Y);
        assert_eq!(p.weight(), 3);
        assert_eq!(p.phase(), 0);
        let m = PauliString::from_str("-XX");
        assert_eq!(m.phase(), 2);
    }

    #[test]
    fn commutation_rules() {
        let x = PauliString::from_str("X");
        let z = PauliString::from_str("Z");
        let y = PauliString::from_str("Y");
        assert!(!x.commutes_with(&z));
        assert!(!x.commutes_with(&y));
        assert!(!y.commutes_with(&z));
        assert!(x.commutes_with(&x));
        // XX vs ZZ: two anticommuting factors -> commute overall.
        let xx = PauliString::from_str("XX");
        let zz = PauliString::from_str("ZZ");
        assert!(xx.commutes_with(&zz));
        // XI vs ZZ: one anticommuting factor -> anticommute.
        let xi = PauliString::from_str("XI");
        assert!(!xi.commutes_with(&zz));
    }

    #[test]
    fn multiplication_phases() {
        // X·Y = iZ
        let mut p = PauliString::from_str("X");
        p.mul_assign(&PauliString::from_str("Y"));
        assert_eq!(p.get(0), Pauli::Z);
        assert_eq!(p.phase(), 1);
        // Y·X = -iZ
        let mut p = PauliString::from_str("Y");
        p.mul_assign(&PauliString::from_str("X"));
        assert_eq!(p.get(0), Pauli::Z);
        assert_eq!(p.phase(), 3);
        // X·X = I
        let mut p = PauliString::from_str("X");
        p.mul_assign(&PauliString::from_str("X"));
        assert_eq!(p.get(0), Pauli::I);
        assert_eq!(p.phase(), 0);
    }

    #[test]
    fn multiword_strings() {
        let n = 130;
        let mut p = PauliString::identity(n);
        p.set(0, Pauli::X);
        p.set(64, Pauli::Y);
        p.set(129, Pauli::Z);
        assert_eq!(p.weight(), 3);
        assert_eq!(p.get(64), Pauli::Y);
        let mut q = PauliString::identity(n);
        q.set(64, Pauli::Z);
        assert!(!p.commutes_with(&q));
    }

    #[test]
    fn set_overwrites() {
        let mut p = PauliString::identity(2);
        p.set(1, Pauli::Y);
        p.set(1, Pauli::X);
        assert_eq!(p.get(1), Pauli::X);
        p.set(1, Pauli::I);
        assert_eq!(p.weight(), 0);
    }

    #[test]
    fn debug_format() {
        let p = PauliString::from_str("-XZ");
        assert_eq!(format!("{p:?}"), "-XZ");
    }
}
