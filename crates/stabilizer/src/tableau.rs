//! Aaronson–Gottesman CHP tableau simulation (arXiv:quant-ph/0406196).
//!
//! Exact per-shot stabilizer simulation: `2n` generator rows (destabilizers
//! then stabilizers) over bit-packed X/Z parts plus sign bits. This is the
//! *slow path* the frame sampler's reference run uses, and the per-shot
//! baseline the E6 experiment compares bulk frame sampling against.

use crate::pauli::{Pauli, PauliString};
use ptsbe_rng::Rng;

/// CHP tableau over `n` qubits.
#[derive(Clone)]
pub struct Tableau {
    n: usize,
    w: usize,
    /// Rows 0..n are destabilizers, n..2n stabilizers; row 2n is scratch.
    x: Vec<Vec<u64>>,
    z: Vec<Vec<u64>>,
    /// Sign bit per row (true = −1).
    r: Vec<bool>,
}

impl Tableau {
    /// |0…0⟩: destabilizers Xᵢ, stabilizers Zᵢ.
    pub fn zero_state(n: usize) -> Self {
        let w = n.div_ceil(64);
        let mut t = Self {
            n,
            w,
            x: vec![vec![0; w]; 2 * n + 1],
            z: vec![vec![0; w]; 2 * n + 1],
            r: vec![false; 2 * n + 1],
        };
        for i in 0..n {
            t.x[i][i / 64] |= 1 << (i % 64);
            t.z[n + i][i / 64] |= 1 << (i % 64);
        }
        t
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn xbit(&self, row: usize, q: usize) -> bool {
        (self.x[row][q / 64] >> (q % 64)) & 1 == 1
    }

    #[inline]
    fn zbit(&self, row: usize, q: usize) -> bool {
        (self.z[row][q / 64] >> (q % 64)) & 1 == 1
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let xb = self.x[row][w] & b != 0;
            let zb = self.z[row][w] & b != 0;
            if xb && zb {
                self.r[row] = !self.r[row];
            }
            // Swap the bits.
            if xb != zb {
                self.x[row][w] ^= b;
                self.z[row][w] ^= b;
            }
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let xb = self.x[row][w] & b != 0;
            let zb = self.z[row][w] & b != 0;
            if xb && zb {
                self.r[row] = !self.r[row];
            }
            if xb {
                self.z[row][w] ^= b;
            }
        }
    }

    /// S† = S·S·S.
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// √X = H·S·H (composition applied right-to-left on states).
    pub fn sx(&mut self, q: usize) {
        self.h(q);
        self.s(q);
        self.h(q);
    }

    /// √X† = (√X)³.
    pub fn sxdg(&mut self, q: usize) {
        self.sx(q);
        self.sx(q);
        self.sx(q);
    }

    /// √Y = X·H as a matrix product (apply H's conjugation, then X's).
    pub fn sy(&mut self, q: usize) {
        self.h(q);
        self.x(q);
    }

    /// √Y† = (√Y)³.
    pub fn sydg(&mut self, q: usize) {
        self.sy(q);
        self.sy(q);
        self.sy(q);
    }

    /// Pauli X on `q` (sign bookkeeping only).
    pub fn x(&mut self, q: usize) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            if self.z[row][w] & b != 0 {
                self.r[row] = !self.r[row];
            }
        }
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            if self.x[row][w] & b != 0 {
                self.r[row] = !self.r[row];
            }
        }
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let flip = (self.x[row][w] ^ self.z[row][w]) & b != 0;
            if flip {
                self.r[row] = !self.r[row];
            }
        }
    }

    /// Apply an arbitrary Pauli (used for noise injection).
    pub fn apply_pauli(&mut self, q: usize, p: Pauli) {
        match p {
            Pauli::I => {}
            Pauli::X => self.x(q),
            Pauli::Y => self.y(q),
            Pauli::Z => self.z(q),
        }
    }

    /// CNOT with control `c`, target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        assert_ne!(c, t);
        let (cw, cb) = (c / 64, 1u64 << (c % 64));
        let (tw, tb) = (t / 64, 1u64 << (t % 64));
        for row in 0..2 * self.n {
            let xc = self.x[row][cw] & cb != 0;
            let zc = self.z[row][cw] & cb != 0;
            let xt = self.x[row][tw] & tb != 0;
            let zt = self.z[row][tw] & tb != 0;
            if xc && zt && (xt == zc) {
                self.r[row] = !self.r[row];
            }
            if xc {
                self.x[row][tw] ^= tb;
            }
            if zt {
                self.z[row][cw] ^= cb;
            }
        }
    }

    /// CZ = H(t)·CX(c,t)·H(t).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Row multiplication `row_h ← row_h · row_i` with AG phase tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        // Phase exponent of i accumulated over qubits (mod 4).
        let mut g_sum: i32 = if self.r[h] { 2 } else { 0 };
        g_sum += if self.r[i] { 2 } else { 0 };
        for q in 0..self.n {
            let x1 = self.xbit(i, q) as i32;
            let z1 = self.zbit(i, q) as i32;
            let x2 = self.xbit(h, q) as i32;
            let z2 = self.zbit(h, q) as i32;
            let g = match (x1, z1) {
                (0, 0) => 0,
                (1, 1) => z2 - x2,
                (1, 0) => z2 * (2 * x2 - 1),
                (0, 1) => x2 * (1 - 2 * z2),
                _ => unreachable!(),
            };
            g_sum += g;
        }
        self.r[h] = g_sum.rem_euclid(4) == 2;
        for w in 0..self.w {
            self.x[h][w] ^= self.x[i][w];
            self.z[h][w] ^= self.z[i][w];
        }
    }

    /// Measure qubit `q` in the Z basis. Returns (outcome, was_random).
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> (bool, bool) {
        let n = self.n;
        let (w, b) = (q / 64, 1u64 << (q % 64));
        // Find a stabilizer row with an X component on q.
        let p = (n..2 * n).find(|&row| self.x[row][w] & b != 0);
        match p {
            Some(p) => {
                // Random outcome.
                for row in 0..2 * n {
                    if row != p && self.x[row][w] & b != 0 {
                        self.rowsum(row, p);
                    }
                }
                // Destabilizer p-n becomes old stabilizer p.
                let (xp, zp, rp) = (self.x[p].clone(), self.z[p].clone(), self.r[p]);
                self.x[p - n] = xp;
                self.z[p - n] = zp;
                self.r[p - n] = rp;
                // New stabilizer = ±Z_q.
                self.x[p].fill(0);
                self.z[p].fill(0);
                self.z[p][w] |= b;
                let outcome = rng.bernoulli(0.5);
                self.r[p] = outcome;
                (outcome, true)
            }
            None => {
                // Deterministic outcome: accumulate into scratch row 2n.
                let scratch = 2 * n;
                self.x[scratch].fill(0);
                self.z[scratch].fill(0);
                self.r[scratch] = false;
                for i in 0..n {
                    if self.x[i][w] & b != 0 {
                        self.rowsum(scratch, i + n);
                    }
                }
                (self.r[scratch], false)
            }
        }
    }

    /// Expectation status of a Pauli observable: `Some(sign)` when the
    /// observable is in the stabilizer group (deterministic), `None` when
    /// the outcome would be random.
    pub fn expectation(&mut self, obs: &PauliString) -> Option<bool> {
        assert_eq!(obs.n_qubits(), self.n);
        // If obs anticommutes with any stabilizer, expectation is 0.
        for row in self.n..2 * self.n {
            let mut anti = 0u32;
            for qw in 0..self.w {
                anti ^= (self.x[row][qw] & obs.z_words()[qw]).count_ones() & 1;
                anti ^= (self.z[row][qw] & obs.x_words()[qw]).count_ones() & 1;
            }
            if anti == 1 {
                return None;
            }
        }
        // Deterministic: express obs as a product of stabilizers using the
        // destabilizer pairing, tracking sign in the scratch row.
        let n = self.n;
        let scratch = 2 * n;
        self.x[scratch].fill(0);
        self.z[scratch].fill(0);
        self.r[scratch] = false;
        for i in 0..n {
            // Destabilizer i anticommutes only with stabilizer i; obs needs
            // stabilizer i iff it anticommutes with destabilizer i.
            let mut anti = 0u32;
            for qw in 0..self.w {
                anti ^= (self.x[i][qw] & obs.z_words()[qw]).count_ones() & 1;
                anti ^= (self.z[i][qw] & obs.x_words()[qw]).count_ones() & 1;
            }
            if anti == 1 {
                self.rowsum(scratch, i + n);
            }
        }
        // Sign comparison: scratch row should equal ±obs.
        debug_assert_eq!(&self.x[scratch], obs.x_words());
        debug_assert_eq!(&self.z[scratch], obs.z_words());
        // Expectation is +1 when the reconstructed sign matches the
        // observable's sign (both +P or both −P).
        let obs_negative = obs.phase() == 2;
        Some(self.r[scratch] == obs_negative)
    }

    /// The current destabilizer generators as Pauli strings (signs
    /// reported as stored; only the X/Z parts are meaningful).
    pub fn destabilizers(&self) -> Vec<PauliString> {
        (0..self.n).map(|row| self.row_to_pauli(row)).collect()
    }

    fn row_to_pauli(&self, row: usize) -> PauliString {
        let mut p = PauliString::identity(self.n);
        for q in 0..self.n {
            p.set(q, Pauli::from_bits(self.xbit(row, q), self.zbit(row, q)));
        }
        p.set_phase(if self.r[row] { 2 } else { 0 });
        p
    }

    /// The current stabilizer generators as Pauli strings.
    pub fn stabilizers(&self) -> Vec<PauliString> {
        (self.n..2 * self.n)
            .map(|row| {
                let mut p = PauliString::identity(self.n);
                for q in 0..self.n {
                    p.set(q, Pauli::from_bits(self.xbit(row, q), self.zbit(row, q)));
                }
                p.set_phase(if self.r[row] { 2 } else { 0 });
                p
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_rng::PhiloxRng;

    #[test]
    fn zero_state_measures_zero() {
        let mut t = Tableau::zero_state(3);
        let mut rng = PhiloxRng::new(90, 0);
        for q in 0..3 {
            let (outcome, random) = t.measure(q, &mut rng);
            assert!(!outcome);
            assert!(!random);
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::zero_state(2);
        t.x(1);
        let mut rng = PhiloxRng::new(91, 0);
        assert_eq!(t.measure(0, &mut rng), (false, false));
        assert_eq!(t.measure(1, &mut rng), (true, false));
    }

    #[test]
    fn hadamard_gives_random_then_repeatable() {
        let mut rng = PhiloxRng::new(92, 0);
        let mut zeros = 0;
        for trial in 0..200 {
            let mut t = Tableau::zero_state(1);
            t.h(0);
            let (o1, random) = t.measure(0, &mut rng);
            assert!(random, "trial {trial}");
            // Second measurement must repeat deterministically.
            let (o2, random2) = t.measure(0, &mut rng);
            assert!(!random2);
            assert_eq!(o1, o2);
            if !o1 {
                zeros += 1;
            }
        }
        assert!((60..=140).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn bell_correlations() {
        let mut rng = PhiloxRng::new(93, 0);
        for _ in 0..100 {
            let mut t = Tableau::zero_state(2);
            t.h(0);
            t.cx(0, 1);
            let (a, _) = t.measure(0, &mut rng);
            let (b, random) = t.measure(1, &mut rng);
            assert!(!random, "second Bell measurement is determined");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_stabilizers() {
        let mut t = Tableau::zero_state(3);
        t.h(0);
        t.cx(0, 1);
        t.cx(1, 2);
        // XXX and ZZI, IZZ stabilize GHZ.
        assert_eq!(t.expectation(&PauliString::from_str("XXX")), Some(true));
        assert_eq!(t.expectation(&PauliString::from_str("ZZI")), Some(true));
        assert_eq!(t.expectation(&PauliString::from_str("IZZ")), Some(true));
        assert_eq!(t.expectation(&PauliString::from_str("-XXX")), Some(false));
        // Single Z is random.
        assert_eq!(t.expectation(&PauliString::from_str("ZII")), None);
    }

    #[test]
    fn s_gate_phases() {
        // S|+⟩ has stabilizer Y.
        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0);
        assert_eq!(t.expectation(&PauliString::from_str("Y")), Some(true));
        // S†S† |+⟩ = Z|+⟩ = |−⟩: stabilizer −X.
        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.sdg(0);
        t.sdg(0);
        assert_eq!(t.expectation(&PauliString::from_str("-X")), Some(true));
    }

    #[test]
    fn sqrt_gates_match_squares() {
        // sx² = x: |0⟩ → |1⟩.
        let mut t = Tableau::zero_state(1);
        t.sx(0);
        t.sx(0);
        assert_eq!(t.expectation(&PauliString::from_str("-Z")), Some(true));
        // sy² = y: |0⟩ → i|1⟩ → still −Z eigenstate.
        let mut t = Tableau::zero_state(1);
        t.sy(0);
        t.sy(0);
        assert_eq!(t.expectation(&PauliString::from_str("-Z")), Some(true));
        // sx·sxdg = I.
        let mut t = Tableau::zero_state(1);
        t.sx(0);
        t.sxdg(0);
        assert_eq!(t.expectation(&PauliString::from_str("Z")), Some(true));
        // sy·sydg = I.
        let mut t = Tableau::zero_state(1);
        t.sy(0);
        t.sydg(0);
        assert_eq!(t.expectation(&PauliString::from_str("Z")), Some(true));
    }

    #[test]
    fn sy_conjugation_direction() {
        // √Y maps Z → X ... |0⟩ (Z=+1) → √Y|0⟩ should be X=−1? Verify via
        // the statevector: √Y|0⟩ = (1+i)/2 (|0⟩+|1⟩) → +X eigenstate?
        // (1+i)/2 * [1,1]: X eigenvalue +1. Our tableau:
        let mut t = Tableau::zero_state(1);
        t.sy(0);
        let exp_x = t.expectation(&PauliString::from_str("X"));
        // Cross-check with the statevector backend.
        let mut sv = ptsbe_statevector::StateVector::<f64>::zero_state(1);
        sv.apply_1q(&ptsbe_math::gates::sy(), 0);
        let x_exp = {
            let a = sv.amplitudes();
            2.0 * (a[0].conj() * a[1]).re
        };
        if x_exp > 0.5 {
            assert_eq!(exp_x, Some(true));
        } else if x_exp < -0.5 {
            assert_eq!(exp_x, Some(false));
        } else {
            panic!("unexpected X expectation {x_exp}");
        }
    }

    #[test]
    fn cz_and_swap() {
        // CZ on |++⟩ gives the cluster pair: stabilizers XZ and ZX.
        let mut t = Tableau::zero_state(2);
        t.h(0);
        t.h(1);
        t.cz(0, 1);
        assert_eq!(t.expectation(&PauliString::from_str("XZ")), Some(true));
        assert_eq!(t.expectation(&PauliString::from_str("ZX")), Some(true));
        // SWAP moves |10⟩ to |01⟩.
        let mut t = Tableau::zero_state(2);
        t.x(0);
        t.swap(0, 1);
        let mut rng = PhiloxRng::new(94, 0);
        assert!(!t.measure(0, &mut rng).0);
        assert!(t.measure(1, &mut rng).0);
    }

    #[test]
    fn pauli_noise_changes_outcome() {
        let mut t = Tableau::zero_state(1);
        t.apply_pauli(0, Pauli::X);
        let mut rng = PhiloxRng::new(95, 0);
        assert!(t.measure(0, &mut rng).0);
        let mut t = Tableau::zero_state(1);
        t.apply_pauli(0, Pauli::Z); // no effect on |0⟩
        assert!(!t.measure(0, &mut rng).0);
    }

    #[test]
    fn large_tableau_multiword() {
        let n = 130;
        let mut t = Tableau::zero_state(n);
        let mut rng = PhiloxRng::new(96, 0);
        t.h(0);
        for q in 0..n - 1 {
            t.cx(q, q + 1);
        }
        let (first, random) = t.measure(0, &mut rng);
        assert!(random);
        for q in 1..n {
            let (o, random) = t.measure(q, &mut rng);
            assert!(!random);
            assert_eq!(o, first, "GHZ correlation broken at {q}");
        }
    }

    #[test]
    fn stabilizer_extraction() {
        let mut t = Tableau::zero_state(2);
        t.h(0);
        t.cx(0, 1);
        let stabs = t.stabilizers();
        assert_eq!(stabs.len(), 2);
        // The stabilizer group of Bell is generated by XX and ZZ.
        let xx = PauliString::from_str("XX");
        let zz = PauliString::from_str("ZZ");
        for s in &stabs {
            assert!(s.commutes_with(&xx));
            assert!(s.commutes_with(&zz));
        }
    }
}
