//! Property tests: tableau vs. statevector on random Clifford circuits,
//! and frame-sampler agreement on deterministic-reference workloads.

use proptest::prelude::*;
use ptsbe_circuit::{channels, Circuit, NoiseModel, NoisyCircuit};
use ptsbe_rng::PhiloxRng;
use ptsbe_stabilizer::frame::{tableau_sample_one, FrameSampler};
use ptsbe_stabilizer::{PauliString, Tableau};

/// Random Clifford gate recipe.
fn clifford_recipe() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    prop::collection::vec((0u8..8, 0usize..4, 0usize..4), 1..20)
}

fn apply_recipe_tableau(t: &mut Tableau, recipe: &[(u8, usize, usize)]) {
    for &(kind, a, b) in recipe {
        match kind {
            0 => t.h(a),
            1 => t.s(a),
            2 => t.sx(a),
            3 => t.sy(a),
            4 => t.x(a),
            5 if a != b => t.cx(a, b),
            6 if a != b => t.cz(a, b),
            _ => t.z(a),
        }
    }
}

fn apply_recipe_sv(sv: &mut ptsbe_statevector::StateVector<f64>, recipe: &[(u8, usize, usize)]) {
    use ptsbe_math::gates;
    for &(kind, a, b) in recipe {
        match kind {
            0 => sv.apply_1q(&gates::h(), a),
            1 => sv.apply_1q(&gates::s(), a),
            2 => sv.apply_1q(&gates::sx(), a),
            3 => sv.apply_1q(&gates::sy(), a),
            4 => sv.apply_1q(&gates::x(), a),
            5 if a != b => sv.apply_cx(a, b),
            6 if a != b => sv.apply_cz(a, b),
            _ => sv.apply_1q(&gates::z(), a),
        }
    }
}

/// ⟨ψ|P|ψ⟩ on the statevector for a phase-free Pauli string.
fn sv_pauli_expectation(sv: &ptsbe_statevector::StateVector<f64>, p: &PauliString) -> f64 {
    use ptsbe_math::gates;
    let mut copy = sv.clone();
    for q in 0..p.n_qubits() {
        match p.get(q) {
            ptsbe_stabilizer::Pauli::I => {}
            ptsbe_stabilizer::Pauli::X => copy.apply_1q(&gates::x(), q),
            ptsbe_stabilizer::Pauli::Y => copy.apply_1q(&gates::y(), q),
            ptsbe_stabilizer::Pauli::Z => copy.apply_1q(&gates::z(), q),
        }
    }
    sv.inner(&copy).re
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Every deterministic tableau expectation matches the statevector.
    #[test]
    fn tableau_expectations_match_statevector(recipe in clifford_recipe(), obs_bits in prop::collection::vec(0u8..4, 4)) {
        let n = 4;
        let mut tab = Tableau::zero_state(n);
        let mut sv = ptsbe_statevector::StateVector::<f64>::zero_state(n);
        apply_recipe_tableau(&mut tab, &recipe);
        apply_recipe_sv(&mut sv, &recipe);

        let mut obs = PauliString::identity(n);
        for (q, &b) in obs_bits.iter().enumerate() {
            obs.set(q, match b {
                0 => ptsbe_stabilizer::Pauli::I,
                1 => ptsbe_stabilizer::Pauli::X,
                2 => ptsbe_stabilizer::Pauli::Y,
                _ => ptsbe_stabilizer::Pauli::Z,
            });
        }
        let exact = sv_pauli_expectation(&sv, &obs);
        match tab.expectation(&obs) {
            Some(true) => prop_assert!((exact - 1.0).abs() < 1e-9, "tableau says +1, sv {exact}"),
            Some(false) => prop_assert!((exact + 1.0).abs() < 1e-9, "tableau says -1, sv {exact}"),
            None => prop_assert!(exact.abs() < 1e-9, "tableau says 0, sv {exact}"),
        }
    }

    /// Frame sampler and per-shot tableau agree on syndrome-style
    /// circuits (identity-composition CX networks with Pauli noise).
    #[test]
    fn frame_sampler_matches_tableau_random(seed in 0u64..200, p in 0.0f64..0.3) {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(1, 2).cx(0, 1).measure_all();
        let noisy: NoisyCircuit = NoiseModel::new()
            .with_default_2q(channels::depolarizing(p))
            .apply(&c);
        let mut rng = PhiloxRng::new(seed, 21);
        let sampler = FrameSampler::new(&noisy, &mut rng).unwrap();
        prop_assume!(!sampler.sample(1, &mut rng).reference_was_random);

        let shots = 20_000;
        let bulk = sampler.sample(shots, &mut rng);
        let mut h_bulk = [0usize; 8];
        for &s in &bulk.shots {
            h_bulk[s as usize] += 1;
        }
        let program = sampler.program();
        let mut h_tab = [0usize; 8];
        for _ in 0..shots {
            h_tab[tableau_sample_one(program, &mut rng) as usize] += 1;
        }
        for i in 0..8 {
            let a = h_bulk[i] as f64 / shots as f64;
            let b = h_tab[i] as f64 / shots as f64;
            prop_assert!((a - b).abs() < 0.02, "outcome {i}: {a} vs {b}");
        }
    }

    /// Measurement repeatability: measuring the same qubit twice gives
    /// the same outcome, on any Clifford state.
    #[test]
    fn repeated_measurement_is_stable(recipe in clifford_recipe(), q in 0usize..4, seed in 0u64..500) {
        let mut tab = Tableau::zero_state(4);
        apply_recipe_tableau(&mut tab, &recipe);
        let mut rng = PhiloxRng::new(seed, 22);
        let (o1, _) = tab.measure(q, &mut rng);
        let (o2, random2) = tab.measure(q, &mut rng);
        prop_assert!(!random2, "second measurement must be deterministic");
        prop_assert_eq!(o1, o2);
    }
}
