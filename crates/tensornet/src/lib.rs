//! Matrix-product-state (MPS) tensor-network simulator — the CPU stand-in
//! for CUDA-Q's `tensornet` backend.
//!
//! The paper's 85-qubit experiment (Fig. 5) runs on a tensor-network
//! backend whose sampling "requires nearly all of the tensor network
//! contraction process to reoccur for each sample"; its future-work list
//! asks for contraction-path caching and correlated (conditional)
//! sampling. This crate implements both ends of that spectrum so the
//! Fig. 5 reproduction can show the current *and* projected behavior:
//!
//! - [`sample::sample_shots_cached`] — canonicalize once (O(n·χ³)), then
//!   draw each shot by a conditional left-to-right sweep (O(n·χ²) per
//!   shot): the "cached intermediates" mode;
//! - [`sample::sample_shots_naive`] — redo the canonicalization sweep for
//!   every shot: the surrogate for CUDA-Q's current re-contraction
//!   behavior.
//!
//! The [`mps::Mps`] type keeps a mixed-canonical gauge with an explicit
//! orthogonality center, truncates bonds by one-sided Jacobi SVD
//! ([`ptsbe_math::svd`]), tracks accumulated truncation error, and
//! supports the same Kraus-branch operations as the statevector backend
//! (state-dependent probabilities via local reduced density matrices,
//! normalized branch application) so PTSBE runs unchanged on either.

pub mod exec;
pub mod mps;
pub mod sample;
pub mod tensor;

pub use exec::{
    advance_mps, compile_mps, compile_mps_opts, compile_mps_with, prepare_mps, MpsCompiled,
    MpsError,
};
pub use mps::{BondStats, Mps, MpsConfig, MpsOrdering};
pub use tensor::Tensor3;
