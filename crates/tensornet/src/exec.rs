//! Noisy-circuit execution on the MPS backend (the tensornet analog of
//! `ptsbe_statevector::exec`).

use crate::mps::{Mps, MpsConfig, MpsOrdering};
use ptsbe_circuit::fusion::{FusedKernel, FusedOp, Fuser, FusionStats};
use ptsbe_circuit::{ChannelKind, Gate, NoisyCircuit, NoisyOp};
use ptsbe_math::{Complex, Matrix, Scalar};

/// MPS execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpsError {
    /// Gates after measurement.
    MidCircuitMeasurement,
    /// Reset unsupported in fixed-assignment execution.
    UnsupportedReset,
    /// Gates above 2 qubits are not lowered for MPS.
    UnsupportedArity(usize),
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsError::MidCircuitMeasurement => {
                write!(f, "batched execution requires terminal measurements")
            }
            MpsError::UnsupportedReset => write!(f, "reset unsupported on the MPS backend"),
            MpsError::UnsupportedArity(k) => write!(f, "{k}-qubit gates unsupported on MPS"),
        }
    }
}

impl std::error::Error for MpsError {}

/// One lowered MPS operation.
#[derive(Clone, Debug)]
pub enum MpsOp<T: Scalar> {
    /// 1-qubit matrix (general; may be non-unitary — pays a gauge move).
    G1(Matrix<T>, usize),
    /// 2-qubit matrix in gate-argument basis.
    G2(Matrix<T>, usize, usize),
    /// Fused *unitary* 1-qubit matrix: applied in place, no gauge move.
    U1(Matrix<T>, usize),
    /// Fused diagonal unitary 1-qubit gate: slice scaling, no
    /// contraction and no gauge move.
    D1(Complex<T>, Complex<T>, usize),
    /// Noise site.
    Site(usize),
}

/// Lowered noise site.
#[derive(Clone, Debug)]
pub struct MpsSite<T: Scalar> {
    /// Channel qubits in argument order.
    pub qubits: Vec<usize>,
    /// Branch matrices (unitaries for mixtures, Kraus ops otherwise).
    pub mats: Vec<Matrix<T>>,
    /// True for unitary mixtures.
    pub is_unitary_mixture: bool,
    /// Pre-sampling probabilities.
    pub probs: Vec<f64>,
    /// Exact-identity branch flags (same compile-time `f64` detection as
    /// `ptsbe_statevector::exec::CompiledSite::skip_identity`, so the MPS
    /// path skips exactly the branches the statevector paths skip).
    pub skip_identity: Vec<bool>,
}

/// A noisy circuit lowered for repeated MPS execution.
///
/// Like `ptsbe_statevector::exec::Compiled`, the op stream is split into
/// segments delimited by noise sites so the trajectory-tree executor can
/// share common prefixes across trajectories: segment `k < n_sites` ends
/// with site `k`; the final segment is the trailing gate run.
#[derive(Clone, Debug)]
pub struct MpsCompiled<T: Scalar> {
    n_qubits: usize,
    ops: Vec<MpsOp<T>>,
    sites: Vec<MpsSite<T>>,
    measured: Vec<usize>,
    /// `seg_bounds[k]..seg_bounds[k + 1]` = op range of segment `k`.
    seg_bounds: Vec<usize>,
    /// Fusion report (ops in/out per kernel class).
    fusion_stats: FusionStats,
    /// Qubit→site permutation chosen at compile time (`None` = identity).
    /// Ops, sites, and `measured` are already lowered through it.
    site_of: Option<Vec<usize>>,
}

impl<T: Scalar> MpsCompiled<T> {
    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }
    /// Lowered op stream.
    pub fn ops(&self) -> &[MpsOp<T>] {
        &self.ops
    }
    /// Lowered sites.
    pub fn sites(&self) -> &[MpsSite<T>] {
        &self.sites
    }
    /// Measured qubits in record order.
    pub fn measured_qubits(&self) -> &[usize] {
        &self.measured
    }
    /// Number of segments (`n_sites + 1`).
    pub fn n_segments(&self) -> usize {
        self.seg_bounds.len() - 1
    }
    /// The fusion report for this compilation (all-passthrough when the
    /// circuit was compiled unfused).
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion_stats
    }
    /// The qubit→site permutation the compiler chose (`None` when sites
    /// follow circuit qubits 1:1). Measured-bit extraction is already
    /// expressed in site indices, so record bits are unaffected; only
    /// callers inspecting raw site amplitudes need this map.
    pub fn qubit_ordering(&self) -> Option<&[usize]> {
        self.site_of.as_deref()
    }
}

/// Lower a noisy circuit for the MPS backend, fusing adjacent-gate runs
/// within each segment (the default; see [`compile_mps_with`]).
///
/// # Errors
/// See [`MpsError`].
pub fn compile_mps<T: Scalar>(nc: &NoisyCircuit) -> Result<MpsCompiled<T>, MpsError> {
    compile_mps_with(nc, true)
}

/// Lower a noisy circuit for the MPS backend with fusion explicitly on
/// or off (linear qubit ordering; see [`compile_mps_opts`]).
///
/// # Errors
/// See [`MpsError`].
pub fn compile_mps_with<T: Scalar>(
    nc: &NoisyCircuit,
    fuse: bool,
) -> Result<MpsCompiled<T>, MpsError> {
    compile_mps_opts(nc, fuse, MpsOrdering::Linear)
}

/// Lower a noisy circuit for the MPS backend with fusion and qubit
/// ordering explicitly chosen. Toffoli gates are first decomposed into
/// the standard 2q + T network, whose pieces then feed the same fuser —
/// so the decomposition overhead is largely fused back away. Fusion
/// never crosses a noise site (the fuser is flushed before every
/// [`MpsOp::Site`]).
///
/// With [`MpsOrdering::Auto`], a qubit→site permutation is picked from
/// the circuit's weighted two-qubit interaction graph (greedy
/// max-attachment clustering) and kept only when it lowers the
/// Σ weight·distance cost versus the linear layout; every op, noise
/// site, and measured qubit is lowered through it, so sampled records
/// are byte-identical in meaning to the linear layout's.
///
/// # Errors
/// See [`MpsError`].
pub fn compile_mps_opts<T: Scalar>(
    nc: &NoisyCircuit,
    fuse: bool,
    ordering: MpsOrdering,
) -> Result<MpsCompiled<T>, MpsError> {
    let mut ops = Vec::with_capacity(nc.ops().len());
    let mut measured = Vec::new();
    let mut seen_measure = false;
    let mut fusion_stats = FusionStats::default();
    let mut fuser = Fuser::new();
    let flush = |ops: &mut Vec<MpsOp<T>>, fuser: &mut Fuser, stats: &mut FusionStats| {
        let (before, run) = fuser.finish();
        stats.record_run(before, &run);
        ops.extend(run.iter().map(lower_fused_mps));
    };
    for op in nc.ops() {
        match op {
            NoisyOp::Gate(g) => {
                if seen_measure {
                    return Err(MpsError::MidCircuitMeasurement);
                }
                match g.qubits.len() {
                    1 if fuse => fuser.push(&g.gate.matrix::<f64>(), &g.qubits),
                    2 if fuse => fuser.push(&g.gate.matrix::<f64>(), &g.qubits),
                    1 => {
                        fusion_stats.record_passthrough();
                        ops.push(MpsOp::G1(g.gate.matrix(), g.qubits[0]));
                    }
                    2 => {
                        fusion_stats.record_passthrough();
                        ops.push(MpsOp::G2(g.gate.matrix(), g.qubits[0], g.qubits[1]));
                    }
                    3 if matches!(g.gate, Gate::Ccx) => {
                        // Decompose Toffoli into the standard 2q + T
                        // network; the pieces feed the fuser like any
                        // other gates.
                        for step in toffoli_network::<f64>(g.qubits[0], g.qubits[1], g.qubits[2]) {
                            match step {
                                MpsOp::G1(m, q) if fuse => fuser.push(&m, &[q]),
                                MpsOp::G2(m, a, b) if fuse => fuser.push(&m, &[a, b]),
                                MpsOp::G1(m, q) => {
                                    fusion_stats.record_passthrough();
                                    ops.push(MpsOp::G1(Matrix::from_f64_matrix(&m), q));
                                }
                                MpsOp::G2(m, a, b) => {
                                    fusion_stats.record_passthrough();
                                    ops.push(MpsOp::G2(Matrix::from_f64_matrix(&m), a, b));
                                }
                                _ => unreachable!("toffoli network is gates only"),
                            }
                        }
                    }
                    k => return Err(MpsError::UnsupportedArity(k)),
                }
            }
            NoisyOp::Site(id) => {
                if seen_measure {
                    return Err(MpsError::MidCircuitMeasurement);
                }
                if fuse {
                    flush(&mut ops, &mut fuser, &mut fusion_stats);
                }
                ops.push(MpsOp::Site(*id));
            }
            NoisyOp::Measure { qubits } => {
                seen_measure = true;
                measured.extend_from_slice(qubits);
            }
            NoisyOp::Reset { .. } => return Err(MpsError::UnsupportedReset),
        }
    }
    if fuse {
        flush(&mut ops, &mut fuser, &mut fusion_stats);
    }
    let sites = nc
        .sites()
        .iter()
        .map(|site| {
            let (mats, is_mixture): (Vec<Matrix<T>>, bool) = match site.channel.kind() {
                ChannelKind::UnitaryMixture { unitaries, .. } => (
                    unitaries
                        .iter()
                        .map(|u| Matrix::from_f64_matrix(u))
                        .collect(),
                    true,
                ),
                ChannelKind::General { .. } => (
                    site.channel
                        .ops()
                        .iter()
                        .map(|k| Matrix::from_f64_matrix(k))
                        .collect(),
                    false,
                ),
            };
            MpsSite {
                qubits: site.qubits.clone(),
                mats,
                is_unitary_mixture: is_mixture,
                probs: site.channel.sampling_probs().to_vec(),
                skip_identity: site.channel.identity_skip_flags(),
            }
        })
        .collect();
    let mut sites: Vec<MpsSite<T>> = sites;
    let site_of = match ordering {
        MpsOrdering::Linear => None,
        MpsOrdering::Auto => choose_ordering(nc),
    };
    if let Some(map) = &site_of {
        for op in &mut ops {
            match op {
                MpsOp::G1(_, q) | MpsOp::U1(_, q) | MpsOp::D1(_, _, q) => *q = map[*q],
                MpsOp::G2(_, a, b) => {
                    *a = map[*a];
                    *b = map[*b];
                }
                MpsOp::Site(_) => {}
            }
        }
        for site in &mut sites {
            for q in &mut site.qubits {
                *q = map[*q];
            }
        }
        for q in &mut measured {
            *q = map[*q];
        }
    }
    let mut seg_bounds = Vec::with_capacity(nc.n_sites() + 2);
    seg_bounds.push(0);
    for (i, op) in ops.iter().enumerate() {
        if let MpsOp::Site(id) = op {
            debug_assert_eq!(*id, seg_bounds.len() - 1, "site ids must be in op order");
            seg_bounds.push(i + 1);
        }
    }
    seg_bounds.push(ops.len());
    Ok(MpsCompiled {
        n_qubits: nc.n_qubits(),
        ops,
        sites,
        measured,
        seg_bounds,
        fusion_stats,
        site_of,
    })
}

/// Weighted-interaction-graph linear arrangement: every two-qubit gate
/// and two-qubit noise site contributes an edge; qubits are placed
/// greedily by strongest attachment to the already-placed prefix (the
/// internal weight of dense clusters — e.g. QEC code blocks — keeps
/// their qubits contiguous). Returns the qubit→site map only when it
/// strictly lowers the Σ weight·|site distance| cost of the circuit.
fn choose_ordering(nc: &NoisyCircuit) -> Option<Vec<usize>> {
    let n = nc.n_qubits();
    if n < 3 {
        return None;
    }
    let mut w = vec![0.0f64; n * n];
    let mut add = |a: usize, b: usize, weight: f64| {
        if a != b {
            w[a * n + b] += weight;
            w[b * n + a] += weight;
        }
    };
    for op in nc.ops() {
        if let NoisyOp::Gate(g) = op {
            match *g.qubits.as_slice() {
                [a, b] => add(a, b, 1.0),
                // Toffoli lowers to six CX across its three pairs.
                [a, b, c] => {
                    add(a, c, 2.0);
                    add(b, c, 2.0);
                    add(a, b, 2.0);
                }
                _ => {}
            }
        }
    }
    for site in nc.sites() {
        if let &[a, b] = site.qubits.as_slice() {
            add(a, b, 1.0);
        }
    }
    // Greedy placement: seed with the heaviest qubit, then repeatedly
    // append the unplaced qubit with the strongest total weight into the
    // placed set (ties and zero attachment fall back to lowest index, so
    // untouched qubits keep their relative order).
    let strength: Vec<f64> = (0..n).map(|q| w[q * n..(q + 1) * n].iter().sum()).collect();
    let seed = (0..n)
        .max_by(|&a, &b| strength[a].total_cmp(&strength[b]))
        .unwrap_or(0);
    if strength[seed] == 0.0 {
        return None;
    }
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut attach = vec![0.0f64; n];
    order.push(seed);
    placed[seed] = true;
    for q in 0..n {
        attach[q] = w[q * n + seed];
    }
    while order.len() < n {
        let mut best: Option<usize> = None;
        for q in 0..n {
            if placed[q] {
                continue;
            }
            match best {
                Some(b) if attach[q] <= attach[b] => {}
                _ => best = Some(q),
            }
        }
        let q = best.expect("unplaced qubit must exist");
        order.push(q);
        placed[q] = true;
        for p in 0..n {
            attach[p] += w[p * n + q];
        }
    }
    let mut site_of = vec![0usize; n];
    for (site, &q) in order.iter().enumerate() {
        site_of[q] = site;
    }
    let cost = |pos: &dyn Fn(usize) -> usize| {
        let mut c = 0.0f64;
        for a in 0..n {
            for b in a + 1..n {
                let weight = w[a * n + b];
                if weight > 0.0 {
                    c += weight * pos(a).abs_diff(pos(b)) as f64;
                }
            }
        }
        c
    };
    let linear_cost = cost(&|q| q);
    let auto_cost = cost(&|q| site_of[q]);
    (auto_cost < linear_cost).then_some(site_of)
}

/// Lower one classified fused op onto the MPS kernel set: diagonal 1q →
/// slice scaling, any other 1q → in-place unitary apply, 2q → dense
/// two-site update (diagonal/permutation 2q ops still need the two-site
/// contraction on MPS, so they stay dense here).
fn lower_fused_mps<T: Scalar>(op: &FusedOp) -> MpsOp<T> {
    let m = &op.matrix;
    match (op.kind, op.qubits.as_slice()) {
        (FusedKernel::Diagonal, &[q]) => MpsOp::D1(
            Complex::from_f64_complex(m[(0, 0)]),
            Complex::from_f64_complex(m[(1, 1)]),
            q,
        ),
        (_, &[q]) => MpsOp::U1(Matrix::from_f64_matrix(m), q),
        (_, &[a, b]) => MpsOp::G2(Matrix::from_f64_matrix(m), a, b),
        (_, qs) => unreachable!("fused ops are 1- or 2-qubit, got {}", qs.len()),
    }
}

/// Standard 6-CNOT Toffoli decomposition.
fn toffoli_network<T: Scalar>(c0: usize, c1: usize, t: usize) -> Vec<MpsOp<T>> {
    use ptsbe_math::gates;
    let cx = gates::cx::<T>();
    vec![
        MpsOp::G1(gates::h(), t),
        MpsOp::G2(cx.clone(), c1, t),
        MpsOp::G1(gates::tdg(), t),
        MpsOp::G2(cx.clone(), c0, t),
        MpsOp::G1(gates::t(), t),
        MpsOp::G2(cx.clone(), c1, t),
        MpsOp::G1(gates::tdg(), t),
        MpsOp::G2(cx.clone(), c0, t),
        MpsOp::G1(gates::t(), c1),
        MpsOp::G1(gates::t(), t),
        MpsOp::G2(cx.clone(), c0, c1),
        MpsOp::G1(gates::h(), t),
        MpsOp::G1(gates::t(), c0),
        MpsOp::G1(gates::tdg(), c1),
        MpsOp::G2(cx, c0, c1),
    ]
}

/// Execute under a fixed Kraus assignment. Returns the prepared MPS and
/// the realized joint trajectory probability (importance-weighting input).
///
/// Non-adjacent gates and general-channel sites are applied directly in
/// operator-Schmidt (MPO) form by [`Mps::apply_2q`] — no swap chains.
pub fn prepare_mps<T: Scalar>(
    compiled: &MpsCompiled<T>,
    choices: &[usize],
    config: MpsConfig,
) -> (Mps<T>, f64) {
    assert_eq!(
        choices.len(),
        compiled.sites.len(),
        "assignment length does not match site count"
    );
    // Degenerate single-span path through the segmented executor.
    let mut mps = Mps::zero_state(compiled.n_qubits, config);
    let realized = advance_mps(compiled, &mut mps, 0..compiled.n_segments(), choices);
    (mps, realized)
}

/// Advance an MPS through segments `segments.start..segments.end`,
/// resolving fired noise sites via `choices[site_id]`. Returns the span's
/// partial trajectory probability (product of branch probabilities in op
/// order). The MPS analog of `ptsbe_statevector::exec::advance`.
///
/// # Panics
/// Panics when the segment range or the assignment prefix is out of
/// bounds.
pub fn advance_mps<T: Scalar>(
    compiled: &MpsCompiled<T>,
    mps: &mut Mps<T>,
    segments: std::ops::Range<usize>,
    choices: &[usize],
) -> f64 {
    assert!(
        segments.end <= compiled.n_segments(),
        "segment range {segments:?} exceeds {} segments",
        compiled.n_segments()
    );
    assert!(
        choices.len() >= segments.end.min(compiled.sites.len()),
        "assignment length {} does not cover sites fired by segments {segments:?}",
        choices.len()
    );
    let mut realized = 1.0f64;
    if segments.is_empty() {
        return realized;
    }
    let ops = &compiled.ops[compiled.seg_bounds[segments.start]..compiled.seg_bounds[segments.end]];
    for op in ops {
        match op {
            MpsOp::G1(m, q) => mps.apply_1q(m, *q),
            MpsOp::G2(m, a, b) => mps.apply_2q(m, *a, *b),
            MpsOp::U1(m, q) => mps.apply_unitary_1q(m, *q),
            MpsOp::D1(d0, d1, q) => mps.apply_diag_1q(*d0, *d1, *q),
            MpsOp::Site(id) => {
                let site = &compiled.sites[*id];
                let k = choices[*id];
                if site.is_unitary_mixture {
                    realized *= site.probs[k];
                    // Exact-identity branches skip (consistent with the
                    // statevector paths); on MPS this also avoids a
                    // gratuitous two-site SVD for adjacent-pair sites.
                    if site.skip_identity[k] {
                        continue;
                    }
                    match site.qubits.as_slice() {
                        [q] => mps.apply_1q(&site.mats[k], *q),
                        [a, b] => mps.apply_2q(&site.mats[k], *a, *b),
                        _ => unreachable!("channels are 1- or 2-qubit"),
                    }
                } else {
                    realized *= mps.apply_kraus_normalized(&site.mats[k], &site.qubits);
                }
            }
        }
    }
    realized
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_circuit::{channels, Circuit, NoiseModel};

    fn exact() -> MpsConfig {
        MpsConfig::exact()
    }

    fn noisy_ghz(p: f64, n: usize) -> NoisyCircuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        NoiseModel::new()
            .with_default_1q(channels::depolarizing(p))
            .with_default_2q(channels::depolarizing(p))
            .apply(&c)
    }

    #[test]
    fn identity_trajectory_matches_statevector() {
        let nc = noisy_ghz(0.1, 5);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let ident = nc.identity_assignment().unwrap();
        let (mps, p) = prepare_mps(&compiled, &ident, exact());
        let sv = {
            let sv_compiled = ptsbe_statevector::exec::compile::<f64>(&nc).unwrap();
            ptsbe_statevector::exec::prepare(&sv_compiled, &ident).0
        };
        for bits in 0..(1u128 << 5) {
            let a = mps.amplitude(bits).norm_sqr();
            let b = sv.probability(bits as u64);
            assert!((a - b).abs() < 1e-10);
        }
        assert!((p - 0.9f64.powi(nc.n_sites() as i32)).abs() < 1e-9);
    }

    #[test]
    fn f32_fused_compile_executes() {
        // Regression guard: fused f64 matrices converted to f32 deviate
        // from exact unitarity by well over f64 tolerances; the fast-path
        // debug_asserts must scale with the precision, not panic.
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .rz(1, 0.4)
            .s(1)
            .cx(0, 1)
            .x(2)
            .cx(1, 2)
            .measure_all();
        let nc = NoiseModel::new()
            .with_default_2q(channels::depolarizing2(0.05))
            .apply(&c);
        let compiled = compile_mps::<f32>(&nc).unwrap();
        assert!(compiled.fusion_stats().ops_after < compiled.fusion_stats().ops_before);
        let ident = nc.identity_assignment().unwrap();
        let (mps, _) = prepare_mps(&compiled, &ident, exact());
        let compiled64 = compile_mps::<f64>(&nc).unwrap();
        let (mps64, _) = prepare_mps(&compiled64, &ident, exact());
        for bits in 0..8u128 {
            let a = f64::from(mps.amplitude(bits).norm_sqr());
            let b = mps64.amplitude(bits).norm_sqr();
            assert!((a - b).abs() < 1e-5, "bits {bits}");
        }
    }

    #[test]
    fn error_trajectory_matches_statevector() {
        let nc = noisy_ghz(0.1, 4);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let mut choices = nc.identity_assignment().unwrap();
        choices[2] = 3; // a Z somewhere mid-circuit
        choices[4] = 1; // an X later
        let (mps, _) = prepare_mps(&compiled, &choices, exact());
        let sv_compiled = ptsbe_statevector::exec::compile::<f64>(&nc).unwrap();
        let (sv, _) = ptsbe_statevector::exec::prepare(&sv_compiled, &choices);
        for bits in 0..(1u128 << 4) {
            assert!((mps.amplitude(bits).norm_sqr() - sv.probability(bits as u64)).abs() < 1e-10);
        }
    }

    #[test]
    fn general_channel_weights_match_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.25))
            .with_default_2q(channels::amplitude_damping(0.25))
            .apply(&c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let sv_compiled = ptsbe_statevector::exec::compile::<f64>(&nc).unwrap();
        // Try several assignments incl. damping branches.
        for choices in [
            vec![0; nc.n_sites()],
            {
                let mut v = vec![0; nc.n_sites()];
                v[1] = 1;
                v
            },
            {
                let mut v = vec![0; nc.n_sites()];
                v[0] = 1;
                v[3] = 1;
                v
            },
        ] {
            let (mps, p_mps) = prepare_mps(&compiled, &choices, exact());
            let (sv, p_sv) = ptsbe_statevector::exec::prepare(&sv_compiled, &choices);
            assert!((p_mps - p_sv).abs() < 1e-10, "weights {p_mps} vs {p_sv}");
            if p_sv > 0.0 {
                for bits in 0..8u128 {
                    assert!(
                        (mps.amplitude(bits).norm_sqr() - sv.probability(bits as u64)).abs() < 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn toffoli_decomposition_correct() {
        let mut c = Circuit::new(3);
        c.x(0).x(1).ccx(0, 1, 2).measure_all();
        let nc = NoiseModel::new().apply(&c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let (mps, _) = prepare_mps(&compiled, &[], exact());
        // |110⟩ with ccx(0,1,2) → target qubit 2 flips → |111⟩.
        assert!((mps.amplitude(0b111).norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auto_ordering_preserves_state_through_permutation() {
        // Two interleaved "blocks" {0,2,4} and {1,3,5} with heavy
        // intra-block coupling: Auto should regroup them, and the
        // compiled state must equal the linear one up to the site
        // permutation.
        let mut c = Circuit::new(6);
        c.h(0).h(1);
        for _ in 0..3 {
            c.cx(0, 2).cx(2, 4).cx(1, 3).cx(3, 5);
        }
        c.cx(0, 1).measure_all();
        let nc = NoiseModel::new().apply(&c);
        let lin = compile_mps_opts::<f64>(&nc, true, crate::mps::MpsOrdering::Linear).unwrap();
        let auto = compile_mps_opts::<f64>(&nc, true, crate::mps::MpsOrdering::Auto).unwrap();
        let map = auto
            .qubit_ordering()
            .expect("interleaved blocks must beat the linear layout")
            .to_vec();
        let (m_lin, _) = prepare_mps(&lin, &[], exact());
        let (m_auto, _) = prepare_mps(&auto, &[], exact());
        for bits in 0..64u128 {
            let mut permuted = 0u128;
            for (q, &site) in map.iter().enumerate() {
                if (bits >> q) & 1 == 1 {
                    permuted |= 1 << site;
                }
            }
            let d = (m_lin.amplitude(bits) - m_auto.amplitude(permuted)).abs();
            assert!(d < 1e-10, "bits {bits} differ by {d}");
        }
        // Measured-bit extraction is expressed in sites: record order
        // still follows circuit qubits.
        assert_eq!(
            auto.measured_qubits(),
            (0..6).map(|q| map[q]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mid_circuit_measurement_rejected() {
        let mut c = Circuit::new(2);
        c.measure(&[0]);
        c.h(1);
        let nc = NoisyCircuit::from_circuit(c);
        assert_eq!(
            compile_mps::<f64>(&nc).unwrap_err(),
            MpsError::MidCircuitMeasurement
        );
    }

    use ptsbe_circuit::NoisyCircuit;
}
