//! The MPS state: mixed-canonical gauge, gate application with SVD
//! truncation, Kraus-branch operations, and exact contraction helpers.

use crate::tensor::Tensor3;
use ptsbe_math::qr::qr_thin;
use ptsbe_math::svd::{svd, svd_qr};
use ptsbe_math::{Complex, Matrix, Scalar};

/// Qubit-ordering policy the MPS compiler applies before lowering a
/// circuit onto the chain (see `ptsbe_tensornet::exec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MpsOrdering {
    /// Site `i` = circuit qubit `i` (the historical behavior).
    #[default]
    Linear,
    /// Choose a site permutation from the circuit's weighted two-qubit
    /// interaction graph at compile time (greedy clustering; falls back
    /// to `Linear` when it does not lower the Σ weight·distance cost).
    Auto,
}

impl MpsOrdering {
    /// Stable tag for cache-key hashing.
    pub fn tag(self) -> u8 {
        match self {
            MpsOrdering::Linear => 0,
            MpsOrdering::Auto => 1,
        }
    }
}

/// Truncation policy for two-site updates.
///
/// Two regimes share this struct:
///
/// - **Cap-driven** ([`MpsConfig::new`], the legacy policy): keep up to
///   `max_bond` singular values, discarding only those below the
///   relative `cutoff`. Accuracy is whatever the cap allows; no error
///   target is enforced.
/// - **Budget-driven** ([`MpsConfig::adaptive`]): each two-site update
///   grows `keep` until the *discarded relative mass* of that update is
///   below `trunc_per_update`; `max_bond` acts only as a hard ceiling.
///   The per-update allowance tightens automatically where weight
///   concentrates (high-entropy bonds keep more) and as the cumulative
///   `trunc_budget` depletes, so a run either stays inside its fidelity
///   budget or reports [`Mps::budget_exhausted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpsConfig {
    /// Hard cap on bond dimension χ.
    pub max_bond: usize,
    /// Relative singular-value cutoff: σᵢ < cutoff·σ₀ is discarded.
    pub cutoff: f64,
    /// Per-update truncation budget: the largest relative discarded mass
    /// a single two-site update may incur. `0.0` disables budget-driven
    /// truncation (cap-driven regime).
    pub trunc_per_update: f64,
    /// Cumulative truncation budget: the largest total
    /// [`Mps::truncation_error`] (`1 − fidelity` lower bound) the run may
    /// accumulate before [`Mps::budget_exhausted`] reports true. `0.0`
    /// disables the cumulative check.
    pub trunc_budget: f64,
    /// Qubit-ordering policy applied by the MPS compiler.
    pub ordering: MpsOrdering,
}

impl MpsConfig {
    /// Default bond ceiling shared by [`MpsConfig::new`] and
    /// [`MpsConfig::default`].
    pub const DEFAULT_MAX_BOND: usize = 64;
    /// Default relative singular-value cutoff.
    pub const DEFAULT_CUTOFF: f64 = 1e-12;
    /// Bond ceiling used by [`MpsConfig::exact`] — generous enough that
    /// the small circuits exact contraction is meant for never hit it.
    pub const EXACT_MAX_BOND: usize = 256;

    /// Cap-driven policy: bond ceiling `max_bond`, default cutoff, no
    /// truncation budgets.
    pub fn new(max_bond: usize) -> Self {
        Self {
            max_bond,
            cutoff: Self::DEFAULT_CUTOFF,
            trunc_per_update: 0.0,
            trunc_budget: 0.0,
            ordering: MpsOrdering::Linear,
        }
    }

    /// Lossless contraction for small circuits: zero cutoff, no budgets,
    /// and a ceiling of [`MpsConfig::EXACT_MAX_BOND`]. This is *the* one
    /// constructor every exact-oracle test helper shares, so callers
    /// cannot silently disagree on capacity.
    pub fn exact() -> Self {
        Self {
            cutoff: 0.0,
            ..Self::new(Self::EXACT_MAX_BOND)
        }
    }

    /// Budget-driven policy: `max_bond` is only a ceiling; each two-site
    /// update keeps singular values until its discarded relative mass is
    /// below `per_update`, and the run-level [`Mps::truncation_error`] is
    /// held under `cumulative` (per-update allowances tighten as the
    /// budget depletes).
    pub fn adaptive(max_bond: usize, per_update: f64, cumulative: f64) -> Self {
        Self {
            trunc_per_update: per_update,
            trunc_budget: cumulative,
            ..Self::new(max_bond)
        }
    }

    /// Builder-style bond-ceiling override.
    pub fn with_max_bond(mut self, max_bond: usize) -> Self {
        self.max_bond = max_bond;
        self
    }

    /// Builder-style cutoff override.
    pub fn with_cutoff(mut self, cutoff: f64) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Builder-style ordering override.
    pub fn with_ordering(mut self, ordering: MpsOrdering) -> Self {
        self.ordering = ordering;
        self
    }
}

impl Default for MpsConfig {
    fn default() -> Self {
        Self::new(Self::DEFAULT_MAX_BOND)
    }
}

/// Per-bond truncation/spectrum statistics, updated on every two-site
/// update crossing the bond ([`Mps::bond_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BondStats {
    /// Von Neumann entropy (nats) of the most recent kept spectrum.
    pub entropy: f64,
    /// Relative discarded mass accumulated at this bond.
    pub discarded: f64,
    /// Peak bond dimension kept at this bond.
    pub peak_dim: usize,
    /// Number of two-site updates that crossed this bond.
    pub updates: usize,
}

/// Matrix product state over `n` qubits (site `i` = qubit `i`).
///
/// Invariant: sites `< center` are left-canonical, sites `> center` are
/// right-canonical; the full state norm lives in the center tensor.
#[derive(Debug)]
pub struct Mps<T: Scalar> {
    tensors: Vec<Tensor3<T>>,
    center: usize,
    config: MpsConfig,
    /// Running lower bound on the squared fidelity kept through all
    /// truncations: `Π (1 − ε_i)` over per-update relative discarded
    /// masses `ε_i`. Starts at 1; exposed as
    /// `truncation_error() = 1 − kept_fidelity`.
    kept_fidelity: f64,
    /// Largest bond dimension reached over the state's history.
    max_bond_reached: usize,
    /// Per-bond spectrum/truncation stats (`bond_stats[i]` = bond between
    /// sites `i` and `i + 1`).
    bond_stats: Vec<BondStats>,
    /// Scratch for the two-site θ contraction — reused across every
    /// [`Mps::apply_2q`] instead of reallocated per gate. Not part of the
    /// state: clones start empty, `copy_from` keeps the destination's.
    theta: Vec<Complex<T>>,
    /// Scratch for the gated θ′ tensor (recovered from the SVD input
    /// matrix after each two-site update).
    theta2: Vec<Complex<T>>,
}

impl<T: Scalar> Clone for Mps<T> {
    fn clone(&self) -> Self {
        Self {
            tensors: self.tensors.clone(),
            center: self.center,
            config: self.config,
            kept_fidelity: self.kept_fidelity,
            max_bond_reached: self.max_bond_reached,
            bond_stats: self.bond_stats.clone(),
            // Scratch is per-instance working memory, not state.
            theta: Vec::new(),
            theta2: Vec::new(),
        }
    }
}

impl<T: Scalar> Mps<T> {
    /// |0…0⟩ on `n` qubits.
    pub fn zero_state(n: usize, config: MpsConfig) -> Self {
        assert!(n >= 1, "MPS needs at least one site");
        Self {
            tensors: (0..n).map(|_| Tensor3::product(false)).collect(),
            center: 0,
            config,
            kept_fidelity: 1.0,
            max_bond_reached: 1,
            bond_stats: vec![BondStats::default(); n.saturating_sub(1)],
            theta: Vec::new(),
            theta2: Vec::new(),
        }
    }

    /// Overwrite `self` with `src`'s state, recycling this instance's
    /// tensor buffers (and keeping its scratch) instead of reallocating —
    /// the pooled-fork path (`Backend::fork_into`). Tensor entries are
    /// copied verbatim, so a state forked into a recycled instance is
    /// bitwise identical to a fresh clone.
    pub fn copy_from(&mut self, src: &Self) {
        self.tensors.truncate(src.tensors.len());
        let have = self.tensors.len();
        for (dst, s) in self.tensors.iter_mut().zip(&src.tensors) {
            dst.copy_from(s);
        }
        self.tensors.extend(src.tensors[have..].iter().cloned());
        self.center = src.center;
        self.config = src.config;
        self.kept_fidelity = src.kept_fidelity;
        self.max_bond_reached = src.max_bond_reached;
        self.bond_stats.clear();
        self.bond_stats.extend_from_slice(&src.bond_stats);
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.tensors.len()
    }

    /// Truncation policy.
    pub fn config(&self) -> MpsConfig {
        self.config
    }

    /// Accumulated truncation error as `1 − F²_lb`, where `F²_lb =
    /// Π (1 − ε_i)` over per-update relative discarded masses `ε_i` is a
    /// lower bound on the squared fidelity between this state and the
    /// untruncated evolution. Exactly `0.0` when no update ever discarded
    /// mass. (The pre-adaptive accounting summed the `ε_i` — a quantity
    /// that is neither a fidelity bound nor bounded by 1; budgets are
    /// compared against this product form instead.)
    pub fn truncation_error(&self) -> f64 {
        1.0 - self.kept_fidelity
    }

    /// True when a cumulative truncation budget is configured and
    /// [`Mps::truncation_error`] has exceeded it — the state's samples
    /// can no longer be trusted to the requested fidelity.
    pub fn budget_exhausted(&self) -> bool {
        self.config.trunc_budget > 0.0 && self.truncation_error() > self.config.trunc_budget
    }

    /// Largest bond dimension the state has needed.
    pub fn max_bond_reached(&self) -> usize {
        self.max_bond_reached
    }

    /// Per-bond spectrum/truncation statistics (`[i]` = bond `i`,`i+1`).
    pub fn bond_stats(&self) -> &[BondStats] {
        &self.bond_stats
    }

    /// Current orthogonality center.
    pub fn center(&self) -> usize {
        self.center
    }

    /// Site tensor accessor (sampling internals).
    pub fn tensor(&self, i: usize) -> &Tensor3<T> {
        &self.tensors[i]
    }

    /// Current bond dimension between sites `i` and `i+1`.
    pub fn bond_dim(&self, i: usize) -> usize {
        self.tensors[i].dr
    }

    /// `⟨ψ|ψ⟩` — O(1) thanks to the canonical gauge.
    pub fn norm_sqr(&self) -> T {
        self.tensors[self.center].norm_sqr()
    }

    /// Normalize; returns the prior squared norm.
    pub fn normalize(&mut self) -> T {
        let n2 = self.norm_sqr();
        if n2 > T::ZERO {
            let inv = T::ONE / n2.sqrt();
            self.tensors[self.center].scale(inv);
        }
        n2
    }

    /// Move the orthogonality center to `target` by QR sweeps.
    pub fn move_center(&mut self, target: usize) {
        assert!(target < self.n_qubits());
        while self.center < target {
            let i = self.center;
            // Left-canonicalize A_i: (dl*2, dr) = Q R; carry R right.
            let m = self.tensors[i].to_matrix_lp_r();
            let qr = qr_thin(&m);
            let dl = self.tensors[i].dl;
            self.tensors[i] = Tensor3::from_matrix_lp_r(&qr.q, dl);
            // A_{i+1} ← R · A_{i+1}  (contract over its left bond).
            let next = &self.tensors[i + 1];
            let next_m = next.to_matrix_l_pr();
            let merged = qr.r.mul_ref(&next_m);
            self.tensors[i + 1] = Tensor3::from_matrix_l_pr(&merged, next.dr);
            self.center += 1;
        }
        while self.center > target {
            let i = self.center;
            // Right-canonicalize A_i: A = L · Q with Q's rows orthonormal.
            let m = self.tensors[i].to_matrix_l_pr();
            let qr = qr_thin(&m.dagger());
            // m = (Q R)† reversed: m† = Q R  =>  m = R† Q†.
            let l = qr.r.dagger();
            let q = qr.q.dagger();
            let dr = self.tensors[i].dr;
            self.tensors[i] = Tensor3::from_matrix_l_pr(&q, dr);
            // A_{i-1} ← A_{i-1} · L (contract over its right bond).
            let prev = &self.tensors[i - 1];
            let prev_m = prev.to_matrix_lp_r();
            let merged = prev_m.mul_ref(&l);
            let dl = prev.dl;
            self.tensors[i - 1] = Tensor3::from_matrix_lp_r(&merged, dl);
            self.center -= 1;
        }
    }

    /// Apply a single-qubit gate (or any 2×2 matrix) at site `q`.
    /// Non-unitary matrices are allowed; the caller handles normalization.
    pub fn apply_1q(&mut self, m: &Matrix<T>, q: usize) {
        assert!(q < self.n_qubits());
        self.move_center(q);
        self.tensors[q].apply_phys(m);
    }

    /// Debug-assert slack for "is this a unitary?" routing checks: far
    /// above `T::tol()` and long-run accumulated `Gate::unitary1`
    /// admission error (1e-9 each), far below a misrouted Kraus branch's
    /// O(1) deviation.
    fn unitarity_slack() -> T {
        T::from_f64(1e-6).max(T::tol() * T::from_f64(100.0))
    }

    /// Apply a *unitary* single-qubit gate at site `q` without moving the
    /// orthogonality center: a unitary on the physical leg preserves
    /// left/right canonical form (`Σ_p B_p†B_p = Σ_p A_p†(m†m)A_p = I`),
    /// so the gauge sweep [`Mps::apply_1q`] pays for non-unitary inputs
    /// is unnecessary. This is the MPS fast path the fused gate stream
    /// rides: fused gates are products of unitaries, hence unitary.
    pub fn apply_unitary_1q(&mut self, m: &Matrix<T>, q: usize) {
        assert!(q < self.n_qubits());
        // Routing sanity check, not a precision gate: Gate::unitary1
        // admits matrices up to 1e-9 from unitary and the fuser multiplies
        // runs of them, so the bound must sit well above accumulated
        // admission error while still catching a misrouted Kraus branch
        // (those deviate O(1)).
        debug_assert!(
            m.is_unitary(Self::unitarity_slack()),
            "gate must be unitary"
        );
        self.tensors[q].apply_phys(m);
    }

    /// Apply a diagonal unitary `diag(d0, d1)` at site `q`: scales the
    /// two physical slices in place — no gauge moves, no contraction.
    pub fn apply_diag_1q(&mut self, d0: Complex<T>, d1: Complex<T>, q: usize) {
        assert!(q < self.n_qubits());
        debug_assert!(
            (d0.norm_sqr() - T::ONE).abs() < Self::unitarity_slack()
                && (d1.norm_sqr() - T::ONE).abs() < Self::unitarity_slack(),
            "diagonal must be unitary to preserve the canonical gauge"
        );
        self.tensors[q].scale_phys(d0, d1);
    }

    /// Apply a two-qubit gate on sites `(a, b)`; non-adjacent pairs are
    /// applied directly via the gate's operator-Schmidt (MPO) form — no
    /// SWAP chains. Matrix basis is `(bit_a << 1) | bit_b`.
    pub fn apply_2q(&mut self, m: &Matrix<T>, a: usize, b: usize) {
        assert!(a != b && a < self.n_qubits() && b < self.n_qubits());
        let (lo, hi) = (a.min(b), a.max(b));
        let m_local = reorder_for_sites(m, a < b);
        if hi - lo == 1 {
            self.apply_2q_adjacent(&m_local, lo);
            return;
        }
        self.apply_2q_long_range(&m_local, lo, hi);
    }

    /// Effective per-update truncation budget for an update crossing bond
    /// `q`: the configured `trunc_per_update`, tightened (i) on bonds
    /// whose kept spectrum carries high entropy — where weight
    /// concentrates, discarding is costliest — and (ii) to at most half
    /// the remaining cumulative budget, so a run approaches
    /// `trunc_budget` geometrically instead of overshooting it in one
    /// update. `0.0` means budgets are off (or spent) and the cutoff/cap
    /// policy alone decides.
    fn effective_budget(&self, q: usize) -> f64 {
        let mut budget = self.config.trunc_per_update;
        if budget <= 0.0 {
            return 0.0;
        }
        budget /= 1.0 + self.bond_stats[q].entropy;
        if self.config.trunc_budget > 0.0 {
            let remaining = (self.config.trunc_budget - self.truncation_error()).max(0.0);
            budget = budget.min(remaining * 0.5);
        }
        budget
    }

    /// Apply a two-site gate on non-adjacent sites `lo < hi` directly via
    /// a truncating **zip-up sweep**: operator-Schmidt-decompose the 4×4
    /// matrix (`(p_lo << 1) | p_hi` basis) as `Σ_k A_k ⊗ B_k` (rank ≤ 4;
    /// 2 for CX/CZ), absorb the `A_k` at `lo`, then push the rank-wide
    /// MPO bond rightward one site at a time — contract the carry into
    /// the next (right-canonical) site tensor and SVD-truncate the
    /// crossed bond immediately — until `B_k` is absorbed at `hi`. The
    /// window's bonds are never inflated ×rank up front, so versus the
    /// older inflate-everything + gauge-repair + identity-sweep path this
    /// skips a full QR sweep over ×rank bonds and halves every SVD's
    /// width (`(2χ)×(χ·rank)` cores instead of `(2χ)×(2χ·rank)`). Ends
    /// with the center at `hi`.
    fn apply_2q_long_range(&mut self, m: &Matrix<T>, lo: usize, hi: usize) {
        debug_assert!(lo + 1 < hi && hi < self.n_qubits());
        let (a_ops, b_ops) = operator_schmidt(m);
        let rank = a_ops.len();
        if rank == 1 {
            // Product operator: two independent single-site applications
            // (gauge handled by `apply_1q`; no bond is touched).
            self.apply_1q(&a_ops[0], lo);
            self.apply_1q(&b_ops[0], hi);
            return;
        }
        // Bring the center to `lo` so every site in (lo, hi] is
        // right-canonical: identity-extended right-canonical tensors stay
        // isometric, which keeps the zip-up's per-bond truncation
        // decisions honest.
        self.move_center(lo);
        // Site lo: M[(l, p'), r·rank + k] = Σ_p A_k[p', p] T[l, p, r],
        // split immediately — the carry S·Vh keeps the norm and the open
        // MPO index.
        let mut carry = {
            let t = &self.tensors[lo];
            let (dl, dr) = (t.dl, t.dr);
            let mut mat = Matrix::<T>::zeros(dl * 2, dr * rank);
            for l in 0..dl {
                for po in 0..2 {
                    for pi in 0..2 {
                        for (k, ak) in a_ops.iter().enumerate() {
                            let g = ak[(po, pi)];
                            if g == Complex::zero() {
                                continue;
                            }
                            for r in 0..dr {
                                mat[(l * 2 + po, r * rank + k)] += g * t.get(l, pi, r);
                            }
                        }
                    }
                }
            }
            self.split_truncate(&mat, lo, dl)
        };
        // Middle sites carry the MPO index untouched:
        // N[(α, p), r·rank + k] = Σ_l C[α, l·rank + k] T[l, p, r].
        for j in lo + 1..hi {
            carry = {
                let t = &self.tensors[j];
                let (dl, dr) = (t.dl, t.dr);
                let alpha = carry.rows();
                debug_assert_eq!(carry.cols(), dl * rank);
                let mut mat = Matrix::<T>::zeros(alpha * 2, dr * rank);
                for a_idx in 0..alpha {
                    for l in 0..dl {
                        for k in 0..rank {
                            let c = carry[(a_idx, l * rank + k)];
                            if c == Complex::zero() {
                                continue;
                            }
                            for p in 0..2 {
                                for r in 0..dr {
                                    mat[(a_idx * 2 + p, r * rank + k)] += c * t.get(l, p, r);
                                }
                            }
                        }
                    }
                }
                self.split_truncate(&mat, j, alpha)
            };
        }
        // Site hi closes the MPO index against B_k:
        // out[α, p', r] = Σ_{l,k,p} C[α, l·rank + k] B_k[p', p] T[l, p, r].
        {
            let t = &self.tensors[hi];
            let (dl, dr) = (t.dl, t.dr);
            let alpha = carry.rows();
            debug_assert_eq!(carry.cols(), dl * rank);
            let mut out = Tensor3::<T>::zeros(alpha, dr);
            for a_idx in 0..alpha {
                for l in 0..dl {
                    for (k, bk) in b_ops.iter().enumerate() {
                        let c = carry[(a_idx, l * rank + k)];
                        if c == Complex::zero() {
                            continue;
                        }
                        for po in 0..2 {
                            for pi in 0..2 {
                                let g = bk[(po, pi)];
                                if g == Complex::zero() {
                                    continue;
                                }
                                let w = c * g;
                                for r in 0..dr {
                                    let cur = out.get(a_idx, po, r);
                                    out.set(a_idx, po, r, cur + w * t.get(l, pi, r));
                                }
                            }
                        }
                    }
                }
            }
            self.tensors[hi] = out;
        }
        self.center = hi;
    }

    /// Reference long-range application via full ×rank bond inflation,
    /// gauge repair, and a truncating identity sweep — the pre-zip-up
    /// path. Kept (test-only surface) so differential tests can pin the
    /// zip-up against it on random circuits; not part of the public API.
    #[doc(hidden)]
    pub fn apply_2q_via_inflation(&mut self, m: &Matrix<T>, a: usize, b: usize) {
        assert!(a != b && a < self.n_qubits() && b < self.n_qubits());
        let (lo, hi) = (a.min(b), a.max(b));
        let m_local = reorder_for_sites(m, a < b);
        if hi - lo == 1 {
            self.apply_2q_adjacent(&m_local, lo);
            return;
        }
        self.apply_2q_long_range_inflate(&m_local, lo, hi);
    }

    fn apply_2q_long_range_inflate(&mut self, m: &Matrix<T>, lo: usize, hi: usize) {
        debug_assert!(lo + 1 < hi && hi < self.n_qubits());
        let (a_ops, b_ops) = operator_schmidt(m);
        let rank = a_ops.len();
        if rank == 1 {
            self.apply_1q(&a_ops[0], lo);
            self.apply_1q(&b_ops[0], hi);
            return;
        }
        // Bring the center to `lo` so every site in (lo, hi] is
        // right-canonical before absorption.
        self.move_center(lo);
        // Site lo: T'[l, p', r·rank + k] = Σ_p A_k[p', p] T[l, p, r].
        {
            let t = &self.tensors[lo];
            let (dl, dr) = (t.dl, t.dr);
            let mut out = Tensor3::<T>::zeros(dl, dr * rank);
            for l in 0..dl {
                for po in 0..2 {
                    for pi in 0..2 {
                        for (k, ak) in a_ops.iter().enumerate() {
                            let g = ak[(po, pi)];
                            if g == Complex::zero() {
                                continue;
                            }
                            for r in 0..dr {
                                let add = g * t.get(l, pi, r);
                                let cur = out.get(l, po, r * rank + k);
                                out.set(l, po, r * rank + k, cur + add);
                            }
                        }
                    }
                }
            }
            self.tensors[lo] = out;
        }
        // Middle sites: kron the bonds with an identity on the Schmidt
        // index; right-canonical tensors stay right-canonical.
        for j in lo + 1..hi {
            self.tensors[j] = self.tensors[j].expand_bonds(rank);
        }
        // Site hi: T'[l·rank + k, p', r] = Σ_p B_k[p', p] T[l, p, r].
        {
            let t = &self.tensors[hi];
            let (dl, dr) = (t.dl, t.dr);
            let mut out = Tensor3::<T>::zeros(dl * rank, dr);
            for l in 0..dl {
                for po in 0..2 {
                    for pi in 0..2 {
                        for (k, bk) in b_ops.iter().enumerate() {
                            let g = bk[(po, pi)];
                            if g == Complex::zero() {
                                continue;
                            }
                            for r in 0..dr {
                                let add = g * t.get(l, pi, r);
                                let cur = out.get(l * rank + k, po, r);
                                out.set(l * rank + k, po, r, cur + add);
                            }
                        }
                    }
                }
            }
            self.tensors[hi] = out;
        }
        // Gauge repair: sites (lo, hi] lost canonical form (lo absorbed
        // the A_k, hi the B_k; the kron middles stayed right-canonical).
        // A QR sweep from hi back to lo right-canonicalizes the span
        // without truncation, leaving the true center at lo.
        self.center = hi;
        self.move_center(lo);
        // Compress the ×rank-inflated bonds with a truncating identity
        // sweep — this is where the gate's truncation error is actually
        // incurred and recorded, via the same policy as any two-site
        // update. Ends with the center at `hi`.
        let id4 = {
            let mut id = Matrix::<T>::zeros(4, 4);
            for i in 0..4 {
                id[(i, i)] = Complex::one();
            }
            id
        };
        for q in lo..hi {
            self.apply_2q_adjacent(&id4, q);
        }
    }

    /// Two-site update on `(q, q+1)` with matrix in `(p_lo << 1) | p_hi`
    /// basis; SVD-truncates the new bond.
    fn apply_2q_adjacent(&mut self, m: &Matrix<T>, q: usize) {
        assert!(q + 1 < self.n_qubits());
        self.move_center(q);
        // Take the θ scratch buffers up front (ends the &mut borrows
        // before the tensor reads below); they are handed back — via the
        // SVD input matrix for θ′ — at the end, so steady-state two-site
        // updates allocate nothing.
        let mut theta = std::mem::take(&mut self.theta);
        let mut theta2 = std::mem::take(&mut self.theta2);
        let a = &self.tensors[q];
        let b = &self.tensors[q + 1];
        let (dl, dr) = (a.dl, b.dr);
        let mid = a.dr;
        debug_assert_eq!(mid, b.dl, "bond mismatch between {q} and {}", q + 1);

        // theta[l, p1, p2, r] = Σ_k A[l,p1,k] B[k,p2,r], then gate applied
        // to (p1, p2).
        theta.clear();
        theta.resize(dl * 4 * dr, Complex::<T>::zero());
        for l in 0..dl {
            for p1 in 0..2 {
                for k in 0..mid {
                    let av = a.get(l, p1, k);
                    if av == Complex::zero() {
                        continue;
                    }
                    for p2 in 0..2 {
                        for r in 0..dr {
                            let idx = ((l * 2 + p1) * 2 + p2) * dr + r;
                            theta[idx] += av * b.get(k, p2, r);
                        }
                    }
                }
            }
        }
        // Gate: theta'[l, p1', p2', r] = Σ m[(p1'<<1)|p2', (p1<<1)|p2] theta[l,p1,p2,r]
        theta2.clear();
        theta2.resize(dl * 4 * dr, Complex::<T>::zero());
        for l in 0..dl {
            for pp in 0..4usize {
                for p in 0..4usize {
                    let g = m[(pp, p)];
                    if g == Complex::zero() {
                        continue;
                    }
                    let (p1, p2) = (p >> 1, p & 1);
                    let (q1, q2) = (pp >> 1, pp & 1);
                    for r in 0..dr {
                        let src = ((l * 2 + p1) * 2 + p2) * dr + r;
                        let dst = ((l * 2 + q1) * 2 + q2) * dr + r;
                        theta2[dst] += g * theta[src];
                    }
                }
            }
        }
        // Reshape to (dl*2) × (2*dr), split across bond q, and install
        // the carry as the new center tensor at q+1.
        let mat = Matrix::from_vec(dl * 2, 2 * dr, theta2);
        // Hand the scratch allocations back for the next two-site update.
        self.theta = theta;
        let carry = self.split_truncate(&mat, q, dl);
        self.theta2 = mat.into_vec();
        self.tensors[q + 1] = Tensor3::from_matrix_l_pr(&carry, dr);
        self.center = q + 1;
    }

    /// SVD-split a `(dl·2) × w` matrix across bond `q` under the standard
    /// truncation policy (cutoff, cap, per-update budget), install the
    /// left-canonical `U` factor as the site-`q` tensor, record the
    /// bond's truncation/spectrum statistics, and return the `keep × w`
    /// carry `S·Vh` (which owns the norm). Shared by the adjacent
    /// two-site update and the zip-up MPO sweep so both incur identical
    /// accounting. The SVD runs QR-first ([`svd_qr`]): rectangular
    /// inputs — wide gate splits, rank-extended zip-up columns, chain
    /// edges — reduce to a `min(m, w)` Jacobi core.
    fn split_truncate(&mut self, mat: &Matrix<T>, q: usize, dl: usize) -> Matrix<T> {
        let w = mat.cols();
        // The per-update SVD time is the MPS cost driver, so it gets its
        // own (histogram-only) telemetry stage — this is what decomposes
        // "prep is slow" into bonds × SVD cost.
        let dec = {
            let _t = ptsbe_telemetry::timer(ptsbe_telemetry::Stage::MpsSvd);
            svd_qr(mat)
        };
        // Truncate: cutoff and cap give the hard-stop `keep` (the legacy
        // cap-driven policy); under a per-update budget, `keep` then grows
        // from 1 only until the discarded relative mass drops below the
        // effective allowance, so weightless tails are dropped without
        // waiting for them to fall under `cutoff`.
        let total: f64 = dec.s.iter().map(|&s| (s * s).to_f64()).sum();
        let smax = dec.s.first().copied().unwrap_or(T::ZERO);
        let rel_cut = T::from_f64(self.config.cutoff) * smax;
        let mut keep = 0usize;
        for (i, &s) in dec.s.iter().enumerate() {
            if i >= self.config.max_bond || (i > 0 && s < rel_cut) {
                break;
            }
            keep = i + 1;
        }
        let mut keep = keep.max(1);
        let budget = self.effective_budget(q);
        if budget > 0.0 && total > 0.0 {
            let allowed = budget * total;
            let mut kept = 0.0f64;
            for k in 1..=keep {
                kept += (dec.s[k - 1] * dec.s[k - 1]).to_f64();
                if total - kept <= allowed {
                    keep = k;
                    break;
                }
            }
        }
        // Kept mass is re-summed over the final `keep` in spectrum order so
        // a no-discard update yields ε = 0 exactly (same floating-point sum
        // as `total`).
        let kept_mass: f64 = dec.s[..keep].iter().map(|&s| (s * s).to_f64()).sum();
        let eps = if total > 0.0 {
            ((total - kept_mass).max(0.0) / total.max(1e-300)).min(1.0)
        } else {
            0.0
        };
        self.kept_fidelity *= 1.0 - eps;
        self.max_bond_reached = self.max_bond_reached.max(keep);
        let stats = &mut self.bond_stats[q];
        stats.updates += 1;
        stats.discarded += eps;
        stats.peak_dim = stats.peak_dim.max(keep);
        if kept_mass > 0.0 {
            let mut entropy = 0.0f64;
            for &s in &dec.s[..keep] {
                let p = (s * s).to_f64() / kept_mass;
                if p > 0.0 {
                    entropy -= p * p.ln();
                }
            }
            stats.entropy = entropy;
        }

        // A_q = U[.., ..keep] (left-canonical); carry = S·Vh.
        let mut u_keep = Matrix::zeros(dl * 2, keep);
        for rr in 0..dl * 2 {
            for c in 0..keep {
                u_keep[(rr, c)] = dec.u[(rr, c)];
            }
        }
        self.tensors[q] = Tensor3::from_matrix_lp_r(&u_keep, dl);
        let mut sv = Matrix::zeros(keep, w);
        for rr in 0..keep {
            let s = dec.s[rr];
            for c in 0..w {
                sv[(rr, c)] = dec.vh[(rr, c)].scale(s);
            }
        }
        sv
    }

    /// Amplitude `⟨bits|ψ⟩` where bit `i` of `bits` selects site `i`'s
    /// physical index. O(n·χ²).
    pub fn amplitude(&self, bits: u128) -> Complex<T> {
        // Left vector starts at the 1-dim left boundary.
        let mut vec: Vec<Complex<T>> = vec![Complex::one()];
        for (i, t) in self.tensors.iter().enumerate() {
            let p = ((bits >> i) & 1) as usize;
            let mut next = vec![Complex::<T>::zero(); t.dr];
            for (l, &vl) in vec.iter().enumerate() {
                if vl == Complex::zero() {
                    continue;
                }
                for (r, nr) in next.iter_mut().enumerate() {
                    *nr += vl * t.get(l, p, r);
                }
            }
            vec = next;
        }
        debug_assert_eq!(vec.len(), 1);
        vec[0]
    }

    /// Reduced density matrix on sites `[q]` or `[q, q+1]` (the center
    /// must be movable; `&mut self` because the gauge shifts).
    pub fn local_density(&mut self, qubits: &[usize]) -> Matrix<T> {
        match qubits {
            [q] => {
                self.move_center(*q);
                let t = &self.tensors[*q];
                let mut rho = Matrix::zeros(2, 2);
                for p in 0..2 {
                    for pp in 0..2 {
                        let mut acc = Complex::zero();
                        for l in 0..t.dl {
                            for r in 0..t.dr {
                                acc += t.get(l, p, r) * t.get(l, pp, r).conj();
                            }
                        }
                        rho[(p, pp)] = acc;
                    }
                }
                rho
            }
            [a, b] if *b == a + 1 => {
                self.move_center(*a);
                let ta = &self.tensors[*a];
                let tb = &self.tensors[*b];
                let (dl, mid, dr) = (ta.dl, ta.dr, tb.dr);
                // theta[(l,p1,p2,r)]
                let mut theta = vec![Complex::<T>::zero(); dl * 4 * dr];
                for l in 0..dl {
                    for p1 in 0..2 {
                        for k in 0..mid {
                            let av = ta.get(l, p1, k);
                            for p2 in 0..2 {
                                for r in 0..dr {
                                    theta[((l * 2 + p1) * 2 + p2) * dr + r] +=
                                        av * tb.get(k, p2, r);
                                }
                            }
                        }
                    }
                }
                let mut rho = Matrix::zeros(4, 4);
                for p in 0..4usize {
                    for pp in 0..4usize {
                        let mut acc = Complex::zero();
                        for l in 0..dl {
                            for r in 0..dr {
                                let pi = ((l * 2 + (p >> 1)) * 2 + (p & 1)) * dr + r;
                                let pj = ((l * 2 + (pp >> 1)) * 2 + (pp & 1)) * dr + r;
                                acc += theta[pi] * theta[pj].conj();
                            }
                        }
                        rho[(p, pp)] = acc;
                    }
                }
                rho
            }
            _ => panic!("local_density supports 1 site or an adjacent pair"),
        }
    }

    /// Kraus branch probabilities `tr(K ρ_local K†)` for a 1- or 2-qubit
    /// channel. Two-qubit channels must act on adjacent sites (the
    /// executor routes non-adjacent channels through swaps).
    pub fn kraus_probabilities(&mut self, ops: &[Matrix<T>], qubits: &[usize]) -> Vec<f64> {
        match qubits {
            [q] => {
                let rho = self.local_density(&[*q]);
                ops.iter()
                    .map(|k| {
                        k.mul_ref(&rho)
                            .mul_ref(&k.dagger())
                            .trace()
                            .re
                            .to_f64()
                            .max(0.0)
                    })
                    .collect()
            }
            [a, b] => {
                let (lo, hi) = (*a.min(b), *a.max(b));
                assert_eq!(hi, lo + 1, "2-qubit channels must act on adjacent sites");
                let rho = self.local_density(&[lo, hi]);
                // rho is in (p_lo, p_hi) bit order; remap each op from the
                // channel's (first, second) argument order.
                let first_is_lo = *a == lo;
                ops.iter()
                    .map(|k| {
                        let k_local = reorder_for_sites(k, first_is_lo);
                        k_local
                            .mul_ref(&rho)
                            .mul_ref(&k_local.dagger())
                            .trace()
                            .re
                            .to_f64()
                            .max(0.0)
                    })
                    .collect()
            }
            _ => panic!("Kraus channels limited to 2 qubits"),
        }
    }

    /// Apply a (generally non-unitary) Kraus operator and renormalize;
    /// returns the realized branch probability.
    pub fn apply_kraus_normalized(&mut self, k: &Matrix<T>, qubits: &[usize]) -> f64 {
        match qubits {
            [q] => {
                self.apply_1q(k, *q);
                let p = self.norm_sqr().to_f64();
                self.normalize();
                p
            }
            [a, b] => {
                self.apply_2q(k, *a, *b);
                let p = self.norm_sqr().to_f64();
                self.normalize();
                p
            }
            _ => panic!("Kraus operators limited to 2 qubits"),
        }
    }

    /// Contract to a full statevector (test helper; n ≤ 20).
    pub fn to_statevector(&self) -> Vec<Complex<T>> {
        let n = self.n_qubits();
        assert!(n <= 20, "to_statevector is a test helper");
        (0..(1usize << n))
            .map(|bits| self.amplitude(bits as u128))
            .collect()
    }
}

/// Operator-Schmidt decomposition of a 4×4 two-site matrix in the
/// `(p_lo << 1) | p_hi` basis across the lo|hi split: returns
/// √s-weighted factor pairs with `m = Σ_k A_k ⊗ B_k`, rank ≤ 4
/// (2 for CX/CZ, 1 for product operators).
fn operator_schmidt<T: Scalar>(m: &Matrix<T>) -> (Vec<Matrix<T>>, Vec<Matrix<T>>) {
    // R[(a', a), (b', b)] = m[(a' << 1) | b', (a << 1) | b]; its SVD is
    // the operator-Schmidt decomposition.
    let mut rmat = Matrix::<T>::zeros(4, 4);
    for ap in 0..2 {
        for a in 0..2 {
            for bp in 0..2 {
                for b in 0..2 {
                    rmat[(ap * 2 + a, bp * 2 + b)] = m[((ap << 1) | bp, (a << 1) | b)];
                }
            }
        }
    }
    let dec = svd(&rmat);
    let smax = dec.s.first().copied().unwrap_or(T::ZERO);
    let op_cut = T::from_f64(1e-14) * smax;
    let rank = dec
        .s
        .iter()
        .take_while(|&&s| s > op_cut)
        .count()
        .clamp(1, 4);
    // A_k[a', a] = √s_k · U[(a', a), k];  B_k[b', b] = √s_k · Vh[k, (b', b)].
    let mut a_ops = Vec::with_capacity(rank);
    let mut b_ops = Vec::with_capacity(rank);
    for k in 0..rank {
        let root = dec.s[k].sqrt();
        let mut ak = Matrix::<T>::zeros(2, 2);
        let mut bk = Matrix::<T>::zeros(2, 2);
        for o in 0..2 {
            for i in 0..2 {
                ak[(o, i)] = dec.u[(o * 2 + i, k)].scale(root);
                bk[(o, i)] = dec.vh[(k, o * 2 + i)].scale(root);
            }
        }
        a_ops.push(ak);
        b_ops.push(bk);
    }
    (a_ops, b_ops)
}

/// Convert a gate matrix from the `(bit_first << 1) | bit_second`
/// convention to the site-local `(p_lo << 1) | p_hi` basis.
/// `first_is_lo` says whether the gate's first argument is the lower site.
fn reorder_for_sites<T: Scalar>(m: &Matrix<T>, first_is_lo: bool) -> Matrix<T> {
    if first_is_lo {
        return m.clone();
    }
    // Swap the two index bits on both rows and columns.
    let swap_bits = |i: usize| ((i & 1) << 1) | (i >> 1);
    let mut out = Matrix::zeros(4, 4);
    for r in 0..4 {
        for c in 0..4 {
            out[(swap_bits(r), swap_bits(c))] = m[(r, c)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_math::gates;
    use ptsbe_statevector::StateVector;

    fn exact() -> MpsConfig {
        MpsConfig::exact()
    }

    fn assert_matches_statevector(mps: &Mps<f64>, sv: &StateVector<f64>, tol: f64) {
        let amps = mps.to_statevector();
        // Compare up to global phase via fidelity.
        let fid = {
            let mut acc = Complex::<f64>::zero();
            for (a, b) in amps.iter().zip(sv.amplitudes()) {
                acc += a.conj() * *b;
            }
            acc.norm_sqr()
        };
        assert!((fid - 1.0).abs() < tol, "fidelity {fid}");
    }

    #[test]
    fn zero_state_amplitudes() {
        let mps = Mps::<f64>::zero_state(4, exact());
        assert!((mps.amplitude(0).re - 1.0).abs() < 1e-12);
        assert!(mps.amplitude(5).abs() < 1e-12);
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_gates_match() {
        let mut mps = Mps::<f64>::zero_state(3, exact());
        let mut sv = StateVector::<f64>::zero_state(3);
        for (q, g) in [(0, gates::h::<f64>()), (1, gates::sx()), (2, gates::t())] {
            mps.apply_1q(&g, q);
            sv.apply_1q(&g, q);
        }
        assert_matches_statevector(&mps, &sv, 1e-10);
    }

    #[test]
    fn bell_state_via_mps() {
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 1);
        let a00 = mps.amplitude(0b00);
        let a11 = mps.amplitude(0b11);
        assert!((a00.norm_sqr() - 0.5).abs() < 1e-10);
        assert!((a11.norm_sqr() - 0.5).abs() < 1e-10);
        assert!(mps.amplitude(0b01).abs() < 1e-10);
        assert_eq!(mps.bond_dim(0), 2);
    }

    #[test]
    fn reversed_gate_arguments() {
        // cx(1, 0): control = site 1.
        let mut mps = Mps::<f64>::zero_state(2, exact());
        let mut sv = StateVector::<f64>::zero_state(2);
        mps.apply_1q(&gates::h(), 1);
        sv.apply_1q(&gates::h(), 1);
        mps.apply_2q(&gates::cx(), 1, 0);
        sv.apply_2q(&gates::cx(), 1, 0);
        assert_matches_statevector(&mps, &sv, 1e-10);
    }

    #[test]
    fn non_adjacent_gate_direct() {
        let mut mps = Mps::<f64>::zero_state(4, exact());
        let mut sv = StateVector::<f64>::zero_state(4);
        mps.apply_1q(&gates::h(), 0);
        sv.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 3);
        sv.apply_cx(0, 3);
        assert_matches_statevector(&mps, &sv, 1e-10);
        // Bonds between untouched middle sites grew as needed and the
        // state stayed normalized.
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-10);
        assert!(mps.truncation_error() < 1e-12);
    }

    #[test]
    fn long_range_random_gates_match_statevector() {
        // Dense (rank-4) gates at various distances, both argument
        // orders, on an already-entangled state — exercises the full
        // operator-Schmidt MPO path including gauge repair.
        let mut rng = ptsbe_rng::PhiloxRng::new(77, 0);
        let n = 7;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = StateVector::<f64>::zero_state(n);
        for q in 0..n {
            mps.apply_1q(&gates::h(), q);
            sv.apply_1q(&gates::h(), q);
        }
        for (a, b) in [(0, 6), (6, 0), (2, 5), (5, 1), (0, 2), (4, 6)] {
            let u = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            mps.apply_2q(&u, a, b);
            sv.apply_2q(&u, a, b);
        }
        assert_matches_statevector(&mps, &sv, 1e-8);
        assert!(mps.truncation_error() < 1e-10);
    }

    #[test]
    fn long_range_rank_one_gate_is_product_path() {
        // Z⊗Z has operator-Schmidt rank 1: the direct path must not
        // inflate any bond.
        let mut mps = Mps::<f64>::zero_state(5, exact());
        let mut sv = StateVector::<f64>::zero_state(5);
        for q in 0..5 {
            mps.apply_1q(&gates::h(), q);
            sv.apply_1q(&gates::h(), q);
        }
        let mut zz = Matrix::<f64>::zeros(4, 4);
        for (i, d) in [1.0, -1.0, -1.0, 1.0].into_iter().enumerate() {
            zz[(i, i)] = Complex::from_f64(d, 0.0);
        }
        mps.apply_2q(&zz, 0, 4);
        sv.apply_2q(&zz, 0, 4);
        assert_matches_statevector(&mps, &sv, 1e-10);
        assert_eq!(mps.max_bond_reached(), 1);
    }

    #[test]
    fn long_range_kraus_via_mpo_matches_dense() {
        // A non-unitary operator across a distance (diagonal with
        // operator-Schmidt rank 2): the MPO path must agree with the
        // statevector oracle on the realized probability and state.
        let mut k = Matrix::<f64>::zeros(4, 4);
        for (i, d) in [1.0, 0.8, 0.6, 0.4].into_iter().enumerate() {
            k[(i, i)] = Complex::from_f64(d, 0.0);
        }
        let mut mps = Mps::<f64>::zero_state(4, exact());
        let mut sv = StateVector::<f64>::zero_state(4);
        for q in 0..4 {
            mps.apply_1q(&gates::h(), q);
            sv.apply_1q(&gates::h(), q);
        }
        mps.apply_2q(&gates::cx(), 0, 1);
        sv.apply_cx(0, 1);
        let p = mps.apply_kraus_normalized(&k, &[0, 3]);
        sv.apply_2q(&k, 0, 3);
        // ⟨ψ|K†K|ψ⟩ for the uniform-superposition input.
        let p_sv = sv.amplitudes().iter().map(|a| a.norm_sqr()).sum::<f64>();
        assert!((p - p_sv).abs() < 1e-10, "{p} vs {p_sv}");
        let scale = 1.0 / p_sv.sqrt();
        for bits in 0..16u128 {
            let a = mps.amplitude(bits);
            let b = sv.amplitudes()[bits as usize].scale(scale);
            assert!((a - b).abs() < 1e-10, "amp {bits}");
        }
    }

    #[test]
    fn adaptive_budget_truncates_and_bounds_error() {
        let mut rng = ptsbe_rng::PhiloxRng::new(505, 0);
        let n = 8;
        let budget = 1e-2;
        let cfg = MpsConfig::adaptive(64, 1e-3, budget);
        let mut mps = Mps::<f64>::zero_state(n, cfg);
        let mut lossless = Mps::<f64>::zero_state(n, MpsConfig::exact());
        for step in 0..40 {
            let u2 = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            let q = step % (n - 1);
            mps.apply_2q(&u2, q, q + 1);
            lossless.apply_2q(&u2, q, q + 1);
        }
        // The budget actually truncated (random circuits saturate bonds)…
        assert!(mps.max_bond_reached() < lossless.max_bond_reached());
        assert!(mps.truncation_error() > 0.0);
        // …but the cumulative fidelity budget held.
        assert!(!mps.budget_exhausted());
        assert!(mps.truncation_error() <= budget);
        // And the recorded error really is a fidelity lower bound.
        mps.normalize();
        let mut overlap = Complex::<f64>::zero();
        for bits in 0..(1u128 << n) {
            overlap += mps.amplitude(bits).conj() * lossless.amplitude(bits);
        }
        assert!(
            overlap.norm_sqr() >= 1.0 - budget - 1e-9,
            "fidelity {} below budget floor",
            overlap.norm_sqr()
        );
    }

    #[test]
    fn bond_stats_track_entropy_and_peaks() {
        let mut mps = Mps::<f64>::zero_state(3, exact());
        mps.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 1);
        let stats = mps.bond_stats()[0];
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.peak_dim, 2);
        // Bell pair: maximally mixed spectrum → entropy ln 2.
        assert!((stats.entropy - std::f64::consts::LN_2).abs() < 1e-9);
        assert_eq!(stats.discarded, 0.0);
        assert_eq!(mps.bond_stats()[1].updates, 0);
    }

    #[test]
    fn random_circuit_matches_statevector() {
        let mut rng = ptsbe_rng::PhiloxRng::new(110, 0);
        let n = 6;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = StateVector::<f64>::zero_state(n);
        for step in 0..30 {
            let u1 = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
            let q = step % n;
            mps.apply_1q(&u1, q);
            sv.apply_1q(&u1, q);
            let u2 = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            let a = (step * 3 + 1) % n;
            let mut b = (step * 5 + 2) % n;
            if a == b {
                b = (b + 1) % n;
            }
            mps.apply_2q(&u2, a, b);
            sv.apply_2q(&u2, a, b);
        }
        assert_matches_statevector(&mps, &sv, 1e-8);
        assert!(mps.truncation_error() < 1e-12);
    }

    #[test]
    fn move_center_preserves_state() {
        let mut mps = Mps::<f64>::zero_state(5, exact());
        mps.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 1);
        mps.apply_2q(&gates::cx(), 1, 2);
        let before = mps.to_statevector();
        mps.move_center(4);
        mps.move_center(0);
        mps.move_center(2);
        let after = mps.to_statevector();
        for (a, b) in before.iter().zip(&after) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn truncation_reduces_bond_and_records_error() {
        let mut rng = ptsbe_rng::PhiloxRng::new(111, 0);
        let n = 8;
        let mut mps = Mps::<f64>::zero_state(n, MpsConfig::exact().with_max_bond(2));
        for step in 0..20 {
            let u2 = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            mps.apply_2q(&u2, step % (n - 1), step % (n - 1) + 1);
        }
        assert!(mps.max_bond_reached() <= 2);
        assert!(
            mps.truncation_error() > 0.0,
            "random circuit must truncate at χ=2"
        );
    }

    #[test]
    fn ghz_needs_only_bond_2() {
        let n = 12;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        mps.apply_1q(&gates::h(), 0);
        for q in 0..n - 1 {
            mps.apply_2q(&gates::cx(), q, q + 1);
        }
        assert_eq!(mps.max_bond_reached(), 2);
        assert!((mps.amplitude(0).norm_sqr() - 0.5).abs() < 1e-10);
        assert!((mps.amplitude((1 << n) - 1).norm_sqr() - 0.5).abs() < 1e-10);
        assert!(mps.truncation_error() < 1e-12);
    }

    #[test]
    fn local_density_of_bell_half() {
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 1);
        let rho = mps.local_density(&[0]);
        assert!((rho[(0, 0)].re - 0.5).abs() < 1e-10);
        assert!((rho[(1, 1)].re - 0.5).abs() < 1e-10);
        assert!(rho[(0, 1)].abs() < 1e-10);
    }

    #[test]
    fn kraus_probabilities_match_statevector_backend() {
        let ch = ptsbe_circuit::channels::amplitude_damping(0.3);
        let ops64: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();
        let mut mps = Mps::<f64>::zero_state(3, exact());
        let mut sv = StateVector::<f64>::zero_state(3);
        mps.apply_1q(&gates::ry(0.8), 1);
        sv.apply_1q(&gates::ry(0.8), 1);
        mps.apply_2q(&gates::cx(), 1, 2);
        sv.apply_cx(1, 2);
        let p_mps = mps.kraus_probabilities(&ops64, &[1]);
        let p_sv = ptsbe_statevector::kraus::kraus_probabilities(&sv, &ops64, &[1]);
        for (a, b) in p_mps.iter().zip(&p_sv) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_kraus_normalized_probability() {
        let gamma: f64 = 0.4;
        let ch = ptsbe_circuit::channels::amplitude_damping(gamma);
        let k1 = (*ch.op(1)).clone();
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        let p = mps.apply_kraus_normalized(&k1, &[0]);
        assert!((p - gamma / 2.0).abs() < 1e-10);
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-10);
        assert!((mps.amplitude(0).norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unitary_1q_fast_path_matches_gauge_moving_apply() {
        // Entangle first so every bond is non-trivial, then apply a gate
        // far from the center via both paths.
        let build = || {
            let mut m = Mps::<f64>::zero_state(4, exact());
            m.apply_1q(&gates::h(), 0);
            m.apply_2q(&gates::cx(), 0, 1);
            m.apply_2q(&gates::cx(), 1, 2);
            m.apply_2q(&gates::cx(), 2, 3);
            m.move_center(0);
            m
        };
        let mut fast = build();
        let mut slow = build();
        fast.apply_unitary_1q(&gates::sx(), 3);
        slow.apply_1q(&gates::sx(), 3);
        for bits in 0..16u128 {
            let d = (fast.amplitude(bits) - slow.amplitude(bits)).abs();
            assert!(d < 1e-10, "amp {bits} differs by {d}");
        }
        // The fast path must not have moved the center.
        assert_eq!(fast.center(), 0);
        // Canonical gauge preserved: a subsequent 2q+SVD pass stays
        // consistent with the statevector oracle.
        fast.apply_2q(&gates::cx(), 3, 0);
        slow.apply_2q(&gates::cx(), 3, 0);
        for bits in 0..16u128 {
            assert!((fast.amplitude(bits) - slow.amplitude(bits)).abs() < 1e-10);
        }
    }

    #[test]
    fn diag_1q_fast_path_matches_dense() {
        let mut fast = Mps::<f64>::zero_state(3, exact());
        let mut slow = fast.clone();
        for m in [&mut fast, &mut slow] {
            m.apply_1q(&gates::h(), 0);
            m.apply_2q(&gates::cx(), 0, 1);
            m.apply_2q(&gates::cx(), 1, 2);
        }
        let d0 = Complex::cis(0.4);
        let d1 = Complex::cis(-1.3);
        let mut dm = Matrix::<f64>::zeros(2, 2);
        dm[(0, 0)] = d0;
        dm[(1, 1)] = d1;
        fast.apply_diag_1q(d0, d1, 1);
        slow.apply_1q(&dm, 1);
        for bits in 0..8u128 {
            assert!((fast.amplitude(bits) - slow.amplitude(bits)).abs() < 1e-10);
        }
        assert!((fast.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn copy_from_recycles_buffers_bitwise() {
        let entangle = |seed: u64| {
            let mut rng = ptsbe_rng::PhiloxRng::new(seed, 0);
            let mut m = Mps::<f64>::zero_state(4, exact());
            m.apply_1q(&gates::h(), 0);
            for q in 0..3 {
                let u = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
                m.apply_2q(&u, q, q + 1);
            }
            m
        };
        let src = entangle(300);
        // Dirty destination with different entanglement structure.
        let mut dst = entangle(301);
        dst.copy_from(&src);
        let fresh = src.clone();
        for bits in 0..16u128 {
            let a = dst.amplitude(bits);
            let b = fresh.amplitude(bits);
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "amp {bits}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "amp {bits}");
        }
        assert_eq!(dst.center(), src.center());
        assert_eq!(dst.max_bond_reached(), src.max_bond_reached());
        // A recycled state must keep evolving identically to a clone.
        let mut dst2 = dst;
        let mut fresh2 = fresh;
        dst2.apply_2q(&gates::cx(), 1, 3);
        fresh2.apply_2q(&gates::cx(), 1, 3);
        for bits in 0..16u128 {
            assert!((dst2.amplitude(bits) - fresh2.amplitude(bits)).abs() < 1e-14);
        }
    }

    #[test]
    fn theta_scratch_reuse_is_invisible() {
        // Repeated two-site updates must give the same state whether the
        // scratch starts empty (fresh state) or warm (after prior gates).
        let mut warm = Mps::<f64>::zero_state(3, exact());
        warm.apply_1q(&gates::h(), 0);
        warm.apply_2q(&gates::cx(), 0, 1);
        let mut cold = warm.clone(); // clone starts with empty scratch
        warm.apply_2q(&gates::cx(), 1, 2);
        cold.apply_2q(&gates::cx(), 1, 2);
        for bits in 0..8u128 {
            let (a, b) = (warm.amplitude(bits), cold.amplitude(bits));
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn f32_mps_tracks_f64() {
        let mut a = Mps::<f64>::zero_state(4, exact());
        let mut b = Mps::<f32>::zero_state(4, exact());
        let h64 = gates::h::<f64>();
        let h32 = gates::h::<f32>();
        let cx64 = gates::cx::<f64>();
        let cx32 = gates::cx::<f32>();
        a.apply_1q(&h64, 0);
        b.apply_1q(&h32, 0);
        a.apply_2q(&cx64, 0, 2);
        b.apply_2q(&cx32, 0, 2);
        for bits in 0..16u128 {
            let x = a.amplitude(bits).norm_sqr();
            let y = b.amplitude(bits).norm_sqr();
            assert!((x - f64::from(y)).abs() < 1e-5);
        }
    }
}
