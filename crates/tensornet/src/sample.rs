//! MPS shot sampling: cached-sweep (conditional) vs. naive re-contraction.
//!
//! The two modes bracket the paper's Fig. 5 discussion. `cached` pays one
//! O(n·χ³) canonicalization then O(n·χ²) per shot — the "conditional and
//! correlated tensor network sampling [reusing] cached intermediates" the
//! paper projects. `naive` redoes the sweep for every shot — the surrogate
//! for the current CUDA-Q behavior the paper measured 16× against.

use crate::mps::Mps;
use ptsbe_math::{Complex, Matrix, Scalar};
use ptsbe_rng::Rng;

/// Draw `m` shots by conditional sampling with cached canonicalization.
///
/// The state is right-canonicalized once (center → site 0); every shot is
/// then a single left-to-right sweep of conditional single-site
/// distributions.
pub fn sample_shots_cached<T: Scalar, R: Rng + ?Sized>(
    mps: &mut Mps<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u128> {
    mps.move_center(0);
    // Guard against unnormalized states (e.g. post-Kraus): conditional
    // probabilities are normalized per site below, so only a zero state is
    // pathological.
    (0..m).map(|_| sample_one(mps, rng)).collect()
}

/// Draw `m` shots with *no cached intermediates*: at every site of every
/// shot, the right environment is recontracted from scratch — O(n²·χ³)
/// per shot, the paper's "nearly all of the tensor network contraction
/// process [reoccurs] for each sample, caching only the minimally
/// optimized contraction path".
pub fn sample_shots_naive<T: Scalar, R: Rng + ?Sized>(
    mps: &Mps<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u128> {
    (0..m).map(|_| sample_one_uncached(mps, rng)).collect()
}

/// One cache-free conditional sample. Works in any gauge: marginals are
/// evaluated by full transfer-matrix contraction.
fn sample_one_uncached<T: Scalar, R: Rng + ?Sized>(mps: &Mps<T>, rng: &mut R) -> u128 {
    let n = mps.n_qubits();
    let mut bits = 0u128;
    // Left-conditioned density at the current left bond (starts 1×1).
    let mut lrho = Matrix::<T>::identity(1);
    for i in 0..n {
        // Right environment over sites i+1.. — recomputed from scratch
        // (this is the deliberate inefficiency).
        let renv = right_env_from(mps, i + 1);
        let t = mps.tensor(i);
        let mut p = [0.0f64; 2];
        let mut cand: [Option<Matrix<T>>; 2] = [None, None];
        for b in 0..2 {
            // M_b: dl × dr slice of the site tensor at physical index b.
            let mut mb = Matrix::<T>::zeros(t.dl, t.dr);
            for l in 0..t.dl {
                for r in 0..t.dr {
                    mb[(l, r)] = t.get(l, b, r);
                }
            }
            let lb = mb.dagger().mul_ref(&lrho).mul_ref(&mb);
            p[b] = lb.mul_ref(&renv).trace().re.to_f64().max(0.0);
            cand[b] = Some(lb);
        }
        let total = p[0] + p[1];
        let outcome = if total <= 0.0 {
            false
        } else {
            rng.next_f64() * total >= p[0]
        };
        let idx = usize::from(outcome);
        if outcome {
            bits |= 1u128 << i;
        }
        let mut next = cand[idx].take().expect("candidate computed");
        let pc = p[idx];
        if pc > 0.0 {
            next = next.scaled_real(T::from_f64(1.0 / pc));
        }
        lrho = next;
    }
    bits
}

/// Transfer-matrix contraction of sites `from..n` into a `dl_from ×
/// dl_from` environment (identity at the right boundary).
fn right_env_from<T: Scalar>(mps: &Mps<T>, from: usize) -> Matrix<T> {
    let n = mps.n_qubits();
    if from >= n {
        return Matrix::identity(1);
    }
    let mut renv = Matrix::<T>::identity(mps.tensor(n - 1).dr);
    for j in (from..n).rev() {
        let t = mps.tensor(j);
        let mut next = Matrix::<T>::zeros(t.dl, t.dl);
        for b in 0..2 {
            let mut mb = Matrix::<T>::zeros(t.dl, t.dr);
            for l in 0..t.dl {
                for r in 0..t.dr {
                    mb[(l, r)] = t.get(l, b, r);
                }
            }
            // next += M_b · R · M_b†
            let term = mb.mul_ref(&renv).mul_ref(&mb.dagger());
            next = &next + &term;
        }
        renv = next;
    }
    renv
}

/// One conditional sweep. Requires the center at site 0 (right-canonical
/// tail), which both entry points guarantee.
fn sample_one<T: Scalar, R: Rng + ?Sized>(mps: &Mps<T>, rng: &mut R) -> u128 {
    debug_assert_eq!(mps.center(), 0);
    let n = mps.n_qubits();
    let mut bits = 0u128;
    // Left environment vector after fixing previous bits.
    let mut left: Vec<Complex<T>> = vec![Complex::one()];
    for i in 0..n {
        let t = mps.tensor(i);
        // w[p][r] = Σ_l left[l] · A[l, p, r]
        let mut w0 = vec![Complex::<T>::zero(); t.dr];
        let mut w1 = vec![Complex::<T>::zero(); t.dr];
        for (l, &vl) in left.iter().enumerate() {
            if vl == Complex::zero() {
                continue;
            }
            for r in 0..t.dr {
                w0[r] += vl * t.get(l, 0, r);
                w1[r] += vl * t.get(l, 1, r);
            }
        }
        let p0: f64 = w0.iter().map(|z| z.norm_sqr().to_f64()).sum();
        let p1: f64 = w1.iter().map(|z| z.norm_sqr().to_f64()).sum();
        let total = p0 + p1;
        let outcome = if total <= 0.0 {
            false
        } else {
            rng.next_f64() * total >= p0
        };
        let (chosen, pc) = if outcome { (w1, p1) } else { (w0, p0) };
        if outcome {
            bits |= 1u128 << i;
        }
        // Normalize the left environment to the conditional branch.
        let inv = if pc > 0.0 {
            T::from_f64(1.0 / pc.sqrt())
        } else {
            T::ZERO
        };
        left = chosen.into_iter().map(|z| z.scale(inv)).collect();
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mps::MpsConfig;
    use ptsbe_math::gates;
    use ptsbe_rng::PhiloxRng;

    fn exact() -> MpsConfig {
        MpsConfig::exact()
    }

    #[test]
    fn deterministic_state_sampling() {
        let mut mps = Mps::<f64>::zero_state(5, exact());
        mps.apply_1q(&gates::x(), 2);
        let mut rng = PhiloxRng::new(120, 0);
        let shots = sample_shots_cached(&mut mps, 100, &mut rng);
        assert!(shots.iter().all(|&s| s == 0b00100));
    }

    #[test]
    fn bell_sampling_statistics() {
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 1);
        let mut rng = PhiloxRng::new(121, 0);
        let m = 40_000;
        let shots = sample_shots_cached(&mut mps, m, &mut rng);
        let ones = shots.iter().filter(|&&s| s == 0b11).count();
        let zeros = shots.iter().filter(|&&s| s == 0b00).count();
        assert_eq!(ones + zeros, m, "Bell shots must be 00 or 11");
        assert!((ones as f64 / m as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn naive_and_cached_agree_in_distribution() {
        let mut rng = PhiloxRng::new(122, 0);
        let n = 5;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        for q in 0..n {
            mps.apply_1q(&gates::ry(0.3 + 0.4 * q as f64), q);
        }
        for q in 0..n - 1 {
            mps.apply_2q(&gates::cx(), q, q + 1);
        }
        let m = 30_000;
        let naive = sample_shots_naive(&mps, m, &mut rng);
        let cached = sample_shots_cached(&mut mps, m, &mut rng);
        let mut h_naive = vec![0usize; 1 << n];
        let mut h_cached = vec![0usize; 1 << n];
        for &s in &naive {
            h_naive[s as usize] += 1;
        }
        for &s in &cached {
            h_cached[s as usize] += 1;
        }
        for i in 0..(1 << n) {
            let a = h_naive[i] as f64 / m as f64;
            let b = h_cached[i] as f64 / m as f64;
            assert!(
                (a - b).abs() < 0.015,
                "outcome {i}: naive {a} vs cached {b}"
            );
        }
    }

    #[test]
    fn sampling_matches_statevector_distribution() {
        let mut rng = PhiloxRng::new(123, 0);
        let n = 4;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = ptsbe_statevector::StateVector::<f64>::zero_state(n);
        for step in 0..10 {
            let u = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            let a = step % n;
            let b = (step + 1) % n;
            if a != b {
                mps.apply_2q(&u, a, b);
                sv.apply_2q(&u, a, b);
            }
        }
        let m = 60_000;
        let shots = sample_shots_cached(&mut mps, m, &mut rng);
        let mut hist = vec![0usize; 1 << n];
        for &s in &shots {
            hist[s as usize] += 1;
        }
        for (i, &count) in hist.iter().enumerate() {
            let frac = count as f64 / m as f64;
            let expect = sv.probability(i as u64);
            assert!(
                (frac - expect).abs() < 0.012,
                "outcome {i}: sampled {frac} vs exact {expect}"
            );
        }
    }

    #[test]
    fn unnormalized_state_sampled_correctly() {
        // Post-Kraus states may carry norm != 1; conditional sampling
        // normalizes per site.
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        // Scale the center tensor artificially.
        let k = ptsbe_math::Matrix::<f64>::identity(2).scaled_real(0.5);
        mps.apply_1q(&k, 0);
        let mut rng = PhiloxRng::new(124, 0);
        let shots = sample_shots_cached(&mut mps, 20_000, &mut rng);
        let ones = shots.iter().filter(|&&s| s & 1 == 1).count();
        assert!((ones as f64 / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn empty_request() {
        let mut mps = Mps::<f64>::zero_state(2, exact());
        let mut rng = PhiloxRng::new(125, 0);
        assert!(sample_shots_cached(&mut mps, 0, &mut rng).is_empty());
        assert!(sample_shots_naive(&mps, 0, &mut rng).is_empty());
    }

    #[test]
    fn large_system_sampling() {
        // 40-qubit GHZ: trivially representable as MPS, impossible as a
        // dense statevector on this machine — the point of the backend.
        let n = 40;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        mps.apply_1q(&gates::h(), 0);
        for q in 0..n - 1 {
            mps.apply_2q(&gates::cx(), q, q + 1);
        }
        let mut rng = PhiloxRng::new(126, 0);
        let shots = sample_shots_cached(&mut mps, 2_000, &mut rng);
        let all_ones = (1u128 << n) - 1;
        for &s in &shots {
            assert!(s == 0 || s == all_ones);
        }
        let ones = shots.iter().filter(|&&s| s == all_ones).count();
        assert!((ones as f64 / 2_000.0 - 0.5).abs() < 0.05);
    }
}
