//! MPS shot sampling: batched prefix-trie, cached-sweep (conditional),
//! and naive re-contraction.
//!
//! `cached` and `naive` bracket the paper's Fig. 5 discussion. `cached`
//! pays one O(n·χ³) canonicalization then O(n·χ²) per shot — the
//! "conditional and correlated tensor network sampling [reusing] cached
//! intermediates" the paper projects. `naive` redoes the sweep for every
//! shot — the surrogate for the current CUDA-Q behavior the paper
//! measured 16× against.
//!
//! `batched` ([`sample_shots_batched`]) goes one step further along the
//! paper's non-degenerate batched-sampling axis: the conditional left
//! environments depend only on the *bit prefix* drawn so far, so shots
//! that share a prefix share the partial contraction. A [`SampleTrie`]
//! memoizes, per visited prefix, the conditional branch probabilities
//! and the two normalized child environments; repeat visits are O(1)
//! per site instead of O(χ²). Because the memoized floats are the exact
//! values the sequential sweep would recompute (same operations, same
//! order) and the RNG is consulted with the same cadence, the output
//! bytes are bitwise identical to [`sample_shots_cached`].

use crate::mps::Mps;
use ptsbe_math::{Complex, Matrix, Scalar};
use ptsbe_rng::Rng;

/// Draw `m` shots by conditional sampling with cached canonicalization.
///
/// The state is right-canonicalized once (center → site 0); every shot is
/// then a single left-to-right sweep of conditional single-site
/// distributions.
pub fn sample_shots_cached<T: Scalar, R: Rng + ?Sized>(
    mps: &mut Mps<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u128> {
    mps.move_center(0);
    // Guard against unnormalized states (e.g. post-Kraus): conditional
    // probabilities are normalized per site below, so only a zero state is
    // pathological.
    (0..m).map(|_| sample_one(mps, rng)).collect()
}

/// Draw `m` shots with *no cached intermediates*: at every site of every
/// shot, the right environment is recontracted from scratch — O(n²·χ³)
/// per shot, the paper's "nearly all of the tensor network contraction
/// process [reoccurs] for each sample, caching only the minimally
/// optimized contraction path".
pub fn sample_shots_naive<T: Scalar, R: Rng + ?Sized>(
    mps: &Mps<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u128> {
    (0..m).map(|_| sample_one_uncached(mps, rng)).collect()
}

/// One cache-free conditional sample. Works in any gauge: marginals are
/// evaluated by full transfer-matrix contraction.
fn sample_one_uncached<T: Scalar, R: Rng + ?Sized>(mps: &Mps<T>, rng: &mut R) -> u128 {
    let n = mps.n_qubits();
    let mut bits = 0u128;
    // Left-conditioned density at the current left bond (starts 1×1).
    let mut lrho = Matrix::<T>::identity(1);
    for i in 0..n {
        // Right environment over sites i+1.. — recomputed from scratch
        // (this is the deliberate inefficiency).
        let renv = right_env_from(mps, i + 1);
        let t = mps.tensor(i);
        let mut p = [0.0f64; 2];
        let mut cand: [Option<Matrix<T>>; 2] = [None, None];
        for b in 0..2 {
            // M_b: dl × dr slice of the site tensor at physical index b.
            let mut mb = Matrix::<T>::zeros(t.dl, t.dr);
            for l in 0..t.dl {
                for r in 0..t.dr {
                    mb[(l, r)] = t.get(l, b, r);
                }
            }
            let lb = mb.dagger().mul_ref(&lrho).mul_ref(&mb);
            p[b] = lb.mul_ref(&renv).trace().re.to_f64().max(0.0);
            cand[b] = Some(lb);
        }
        let total = p[0] + p[1];
        let outcome = if total <= 0.0 {
            false
        } else {
            rng.next_f64() * total >= p[0]
        };
        let idx = usize::from(outcome);
        if outcome {
            bits |= 1u128 << i;
        }
        let mut next = cand[idx].take().expect("candidate computed");
        let pc = p[idx];
        if pc > 0.0 {
            next = next.scaled_real(T::from_f64(1.0 / pc));
        }
        lrho = next;
    }
    bits
}

/// Transfer-matrix contraction of sites `from..n` into a `dl_from ×
/// dl_from` environment (identity at the right boundary).
fn right_env_from<T: Scalar>(mps: &Mps<T>, from: usize) -> Matrix<T> {
    let n = mps.n_qubits();
    if from >= n {
        return Matrix::identity(1);
    }
    let mut renv = Matrix::<T>::identity(mps.tensor(n - 1).dr);
    for j in (from..n).rev() {
        let t = mps.tensor(j);
        let mut next = Matrix::<T>::zeros(t.dl, t.dl);
        for b in 0..2 {
            let mut mb = Matrix::<T>::zeros(t.dl, t.dr);
            for l in 0..t.dl {
                for r in 0..t.dr {
                    mb[(l, r)] = t.get(l, b, r);
                }
            }
            // next += M_b · R · M_b†
            let term = mb.mul_ref(&renv).mul_ref(&mb.dagger());
            next = &next + &term;
        }
        renv = next;
    }
    renv
}

/// One conditional sweep. Requires the center at site 0 (right-canonical
/// tail), which both entry points guarantee.
fn sample_one<T: Scalar, R: Rng + ?Sized>(mps: &Mps<T>, rng: &mut R) -> u128 {
    debug_assert_eq!(mps.center(), 0);
    sample_tail(mps, 0, vec![Complex::one()], rng, 0)
}

/// Conditional branch weights at one site: `w_b[r] = Σ_l left[l] ·
/// A[l, b, r]` and the unnormalized probabilities `p_b = ‖w_b‖²`.
///
/// This is the one place the per-site floats are computed — the
/// sequential sweep, the trie expansion, and the trie's capacity
/// fallback all call it, which is what makes batched output bitwise
/// identical to sequential.
#[allow(clippy::type_complexity)]
fn site_branches<T: Scalar>(
    t: &crate::tensor::Tensor3<T>,
    left: &[Complex<T>],
) -> (Vec<Complex<T>>, Vec<Complex<T>>, f64, f64) {
    let mut w0 = vec![Complex::<T>::zero(); t.dr];
    let mut w1 = vec![Complex::<T>::zero(); t.dr];
    for (l, &vl) in left.iter().enumerate() {
        if vl == Complex::zero() {
            continue;
        }
        for r in 0..t.dr {
            w0[r] += vl * t.get(l, 0, r);
            w1[r] += vl * t.get(l, 1, r);
        }
    }
    let p0: f64 = w0.iter().map(|z| z.norm_sqr().to_f64()).sum();
    let p1: f64 = w1.iter().map(|z| z.norm_sqr().to_f64()).sum();
    (w0, w1, p0, p1)
}

/// Scale a branch weight vector into the conditional left environment
/// for the next site (zero environment for an impossible branch).
fn normalize_branch<T: Scalar>(w: Vec<Complex<T>>, pc: f64) -> Vec<Complex<T>> {
    let inv = if pc > 0.0 {
        T::from_f64(1.0 / pc.sqrt())
    } else {
        T::ZERO
    };
    w.into_iter().map(|z| z.scale(inv)).collect()
}

/// Finish one shot from site `from` with left environment `left` and the
/// bits already drawn for sites `0..from`.
fn sample_tail<T: Scalar, R: Rng + ?Sized>(
    mps: &Mps<T>,
    from: usize,
    mut left: Vec<Complex<T>>,
    rng: &mut R,
    mut bits: u128,
) -> u128 {
    let n = mps.n_qubits();
    for i in from..n {
        let (w0, w1, p0, p1) = site_branches(mps.tensor(i), &left);
        let total = p0 + p1;
        let outcome = if total <= 0.0 {
            false
        } else {
            rng.next_f64() * total >= p0
        };
        let (chosen, pc) = if outcome { (w1, p1) } else { (w0, p0) };
        if outcome {
            bits |= 1u128 << i;
        }
        left = normalize_branch(chosen, pc);
    }
    bits
}

// ---------------------------------------------------------------------------
// Batched sampling: the prefix trie.

/// Sentinel child index (also the pre-expansion placeholder).
const NO_CHILD: u32 = u32::MAX;

/// Memory the trie may hold in cached environments before further
/// prefixes fall back to transient [`sample_tail`] sweeps.
const TRIE_ENV_BYTE_CAP: usize = 128 << 20;

struct TrieNode<T: Scalar> {
    /// Left environment entering this node's site. Freed once the node
    /// is expanded (the branch weights have been folded into the
    /// children); retained on unexpanded frontier nodes so a capacity
    /// fallback can resume from here.
    env: Vec<Complex<T>>,
    /// Unnormalized branch probabilities, valid once `expanded`.
    p0: f64,
    p1: f64,
    expanded: bool,
    child: [u32; 2],
}

/// A prefix trie of conditional sampling state over a fixed MPS.
///
/// Node at depth `i` caches the branch probabilities of site `i` given
/// the bits on the path to it; its children hold the normalized left
/// environments entering site `i + 1`. One trie serves any number of
/// shots and any number of independent RNG streams against the same
/// prepared state — each draw walks root→leaf, expanding unvisited
/// prefixes on first touch. Beyond [`TRIE_ENV_BYTE_CAP`] of cached
/// environments, new prefixes are completed transiently instead of
/// being inserted (the hot prefixes are by then already resident).
pub struct SampleTrie<T: Scalar> {
    nodes: Vec<TrieNode<T>>,
    env_bytes: usize,
    env_cap: usize,
}

impl<T: Scalar> SampleTrie<T> {
    /// An empty trie rooted at site 0 (left boundary environment `[1]`).
    pub fn new() -> Self {
        Self::with_env_cap(TRIE_ENV_BYTE_CAP)
    }

    /// An empty trie with an explicit cached-environment byte budget
    /// (tests exercise the capacity fallback with a tiny cap).
    pub fn with_env_cap(env_cap: usize) -> Self {
        Self {
            nodes: vec![TrieNode {
                env: vec![Complex::one()],
                p0: 0.0,
                p1: 0.0,
                expanded: false,
                child: [NO_CHILD; 2],
            }],
            env_bytes: std::mem::size_of::<Complex<T>>(),
            env_cap,
        }
    }

    /// Compute site `depth`'s branch weights at `node`, cache the
    /// probabilities, and install both child environments (interior
    /// sites only — the last site needs no children).
    fn expand(&mut self, mps: &Mps<T>, node: u32, depth: usize) {
        let (w0, w1, p0, p1) = site_branches(mps.tensor(depth), &self.nodes[node as usize].env);
        if depth + 1 < mps.n_qubits() {
            for (b, (w, pc)) in [(w0, p0), (w1, p1)].into_iter().enumerate() {
                let env = normalize_branch(w, pc);
                self.env_bytes += env.len() * std::mem::size_of::<Complex<T>>();
                let idx = u32::try_from(self.nodes.len()).expect("trie node count fits u32");
                self.nodes.push(TrieNode {
                    env,
                    p0: 0.0,
                    p1: 0.0,
                    expanded: false,
                    child: [NO_CHILD; 2],
                });
                self.nodes[node as usize].child[b] = idx;
            }
        }
        let nd = &mut self.nodes[node as usize];
        nd.p0 = p0;
        nd.p1 = p1;
        nd.expanded = true;
        // The environment has been folded into the children; only
        // frontier nodes need to keep theirs.
        self.env_bytes -= nd.env.len() * std::mem::size_of::<Complex<T>>();
        nd.env = Vec::new();
    }

    /// Draw one shot, expanding the trie along the sampled prefix.
    /// Requires `mps.center() == 0`, like the sequential sweep.
    pub fn sample_one<R: Rng + ?Sized>(&mut self, mps: &Mps<T>, rng: &mut R) -> u128 {
        debug_assert_eq!(mps.center(), 0);
        let n = mps.n_qubits();
        let mut bits = 0u128;
        let mut cur = 0u32;
        for i in 0..n {
            if !self.nodes[cur as usize].expanded {
                if self.env_bytes > self.env_cap {
                    let left = self.nodes[cur as usize].env.clone();
                    return sample_tail(mps, i, left, rng, bits);
                }
                self.expand(mps, cur, i);
            }
            let nd = &self.nodes[cur as usize];
            let total = nd.p0 + nd.p1;
            let outcome = if total <= 0.0 {
                false
            } else {
                rng.next_f64() * total >= nd.p0
            };
            if outcome {
                bits |= 1u128 << i;
            }
            if i + 1 < n {
                cur = nd.child[usize::from(outcome)];
            }
        }
        bits
    }
}

impl<T: Scalar> Default for SampleTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Draw shot batches for several independent requests — typically the
/// deduplicated trajectories sharing one prepared tree-node state, each
/// with its own Philox stream — amortizing the conditional partial
/// contractions across every shot of every request through one shared
/// [`SampleTrie`]. Bitwise identical to calling [`sample_shots_cached`]
/// per request in order.
pub fn sample_shots_batched<T: Scalar, R: Rng + ?Sized>(
    mps: &mut Mps<T>,
    requests: &mut [(usize, &mut R)],
) -> Vec<Vec<u128>> {
    mps.move_center(0);
    let mut trie = SampleTrie::new();
    requests
        .iter_mut()
        .map(|(shots, rng)| (0..*shots).map(|_| trie.sample_one(mps, rng)).collect())
        .collect()
}

/// Single-request batched sampling: one trie amortizes the conditional
/// contractions across all `m` shots of one trajectory. Bitwise
/// identical to [`sample_shots_cached`].
pub fn sample_shots_batched_one<T: Scalar, R: Rng + ?Sized>(
    mps: &mut Mps<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u128> {
    mps.move_center(0);
    let mut trie = SampleTrie::new();
    (0..m).map(|_| trie.sample_one(mps, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mps::MpsConfig;
    use ptsbe_math::gates;
    use ptsbe_rng::PhiloxRng;

    fn exact() -> MpsConfig {
        MpsConfig::exact()
    }

    #[test]
    fn deterministic_state_sampling() {
        let mut mps = Mps::<f64>::zero_state(5, exact());
        mps.apply_1q(&gates::x(), 2);
        let mut rng = PhiloxRng::new(120, 0);
        let shots = sample_shots_cached(&mut mps, 100, &mut rng);
        assert!(shots.iter().all(|&s| s == 0b00100));
    }

    #[test]
    fn bell_sampling_statistics() {
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        mps.apply_2q(&gates::cx(), 0, 1);
        let mut rng = PhiloxRng::new(121, 0);
        let m = 40_000;
        let shots = sample_shots_cached(&mut mps, m, &mut rng);
        let ones = shots.iter().filter(|&&s| s == 0b11).count();
        let zeros = shots.iter().filter(|&&s| s == 0b00).count();
        assert_eq!(ones + zeros, m, "Bell shots must be 00 or 11");
        assert!((ones as f64 / m as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn naive_and_cached_agree_in_distribution() {
        let mut rng = PhiloxRng::new(122, 0);
        let n = 5;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        for q in 0..n {
            mps.apply_1q(&gates::ry(0.3 + 0.4 * q as f64), q);
        }
        for q in 0..n - 1 {
            mps.apply_2q(&gates::cx(), q, q + 1);
        }
        let m = 30_000;
        let naive = sample_shots_naive(&mps, m, &mut rng);
        let cached = sample_shots_cached(&mut mps, m, &mut rng);
        let mut h_naive = vec![0usize; 1 << n];
        let mut h_cached = vec![0usize; 1 << n];
        for &s in &naive {
            h_naive[s as usize] += 1;
        }
        for &s in &cached {
            h_cached[s as usize] += 1;
        }
        for i in 0..(1 << n) {
            let a = h_naive[i] as f64 / m as f64;
            let b = h_cached[i] as f64 / m as f64;
            assert!(
                (a - b).abs() < 0.015,
                "outcome {i}: naive {a} vs cached {b}"
            );
        }
    }

    #[test]
    fn sampling_matches_statevector_distribution() {
        let mut rng = PhiloxRng::new(123, 0);
        let n = 4;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = ptsbe_statevector::StateVector::<f64>::zero_state(n);
        for step in 0..10 {
            let u = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            let a = step % n;
            let b = (step + 1) % n;
            if a != b {
                mps.apply_2q(&u, a, b);
                sv.apply_2q(&u, a, b);
            }
        }
        let m = 60_000;
        let shots = sample_shots_cached(&mut mps, m, &mut rng);
        let mut hist = vec![0usize; 1 << n];
        for &s in &shots {
            hist[s as usize] += 1;
        }
        for (i, &count) in hist.iter().enumerate() {
            let frac = count as f64 / m as f64;
            let expect = sv.probability(i as u64);
            assert!(
                (frac - expect).abs() < 0.012,
                "outcome {i}: sampled {frac} vs exact {expect}"
            );
        }
    }

    #[test]
    fn unnormalized_state_sampled_correctly() {
        // Post-Kraus states may carry norm != 1; conditional sampling
        // normalizes per site.
        let mut mps = Mps::<f64>::zero_state(2, exact());
        mps.apply_1q(&gates::h(), 0);
        // Scale the center tensor artificially.
        let k = ptsbe_math::Matrix::<f64>::identity(2).scaled_real(0.5);
        mps.apply_1q(&k, 0);
        let mut rng = PhiloxRng::new(124, 0);
        let shots = sample_shots_cached(&mut mps, 20_000, &mut rng);
        let ones = shots.iter().filter(|&&s| s & 1 == 1).count();
        assert!((ones as f64 / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn empty_request() {
        let mut mps = Mps::<f64>::zero_state(2, exact());
        let mut rng = PhiloxRng::new(125, 0);
        assert!(sample_shots_cached(&mut mps, 0, &mut rng).is_empty());
        assert!(sample_shots_naive(&mps, 0, &mut rng).is_empty());
    }

    /// An entangled, noisy-ish state with some zero-amplitude branches.
    fn scrambled(n: usize) -> Mps<f64> {
        let mut rng = PhiloxRng::new(777, 0);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        for step in 0..2 * n {
            let u = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            let a = step % (n - 1);
            mps.apply_2q(&u, a, a + 1);
        }
        // A projector-like 1q Kraus op leaves unnormalized weight and an
        // exactly-impossible branch at site 0.
        let k = ptsbe_math::Matrix::<f64>::from_vec(
            2,
            2,
            vec![
                Complex::new(0.9, 0.0),
                Complex::zero(),
                Complex::zero(),
                Complex::zero(),
            ],
        );
        mps.apply_1q(&k, 0);
        mps
    }

    #[test]
    fn batched_bitwise_matches_sequential() {
        let mut mps = scrambled(6);
        // Sequential reference: each request samples on its own stream
        // against the shared (canonicalized-once) state.
        let mut seq = Vec::new();
        for t in 0..3u64 {
            let mut rng = PhiloxRng::for_trajectory(9, t);
            seq.push(sample_shots_cached(&mut mps, 400, &mut rng));
        }
        let mut rngs: Vec<PhiloxRng> = (0..3).map(|t| PhiloxRng::for_trajectory(9, t)).collect();
        let mut reqs: Vec<(usize, &mut PhiloxRng)> =
            rngs.iter_mut().map(|r| (400usize, r)).collect();
        let batched = sample_shots_batched(&mut mps, &mut reqs);
        assert_eq!(seq, batched, "batched sampling diverged from sequential");
    }

    #[test]
    fn batched_single_request_bitwise_matches_cached() {
        let mut mps = scrambled(5);
        let mut r1 = PhiloxRng::new(131, 0);
        let expect = sample_shots_cached(&mut mps, 1_000, &mut r1);
        let mut r2 = PhiloxRng::new(131, 0);
        let got = sample_shots_batched_one(&mut mps, 1_000, &mut r2);
        assert_eq!(expect, got);
    }

    #[test]
    fn trie_capacity_fallback_stays_bitwise() {
        let mut mps = scrambled(7);
        let mut r1 = PhiloxRng::new(132, 0);
        let expect = sample_shots_cached(&mut mps, 600, &mut r1);
        // A cap this small forces the transient-tail fallback on nearly
        // every shot after the first few expansions.
        let mut trie = SampleTrie::<f64>::with_env_cap(256);
        let mut r2 = PhiloxRng::new(132, 0);
        let got: Vec<u128> = (0..600).map(|_| trie.sample_one(&mps, &mut r2)).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn large_system_sampling() {
        // 40-qubit GHZ: trivially representable as MPS, impossible as a
        // dense statevector on this machine — the point of the backend.
        let n = 40;
        let mut mps = Mps::<f64>::zero_state(n, exact());
        mps.apply_1q(&gates::h(), 0);
        for q in 0..n - 1 {
            mps.apply_2q(&gates::cx(), q, q + 1);
        }
        let mut rng = PhiloxRng::new(126, 0);
        let shots = sample_shots_cached(&mut mps, 2_000, &mut rng);
        let all_ones = (1u128 << n) - 1;
        for &s in &shots {
            assert!(s == 0 || s == all_ones);
        }
        let ones = shots.iter().filter(|&&s| s == all_ones).count();
        assert!((ones as f64 / 2_000.0 - 0.5).abs() < 0.05);
    }
}
