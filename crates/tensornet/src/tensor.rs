//! Rank-3 MPS site tensors.

use ptsbe_math::{Complex, Matrix, Scalar};

/// A site tensor `A[l, p, r]` with physical dimension 2, stored row-major
/// as `data[(l*2 + p) * dr + r]`.
#[derive(Clone, Debug)]
pub struct Tensor3<T: Scalar> {
    /// Left bond dimension.
    pub dl: usize,
    /// Right bond dimension.
    pub dr: usize,
    /// Flat storage, `(dl*2) × dr` row-major.
    pub data: Vec<Complex<T>>,
}

impl<T: Scalar> Tensor3<T> {
    /// Zero tensor of the given bond dimensions.
    pub fn zeros(dl: usize, dr: usize) -> Self {
        Self {
            dl,
            dr,
            data: vec![Complex::zero(); dl * 2 * dr],
        }
    }

    /// Product-state tensor: bond dims 1, physical bit `bit`.
    pub fn product(bit: bool) -> Self {
        let mut t = Self::zeros(1, 1);
        t.data[usize::from(bit)] = Complex::one();
        t
    }

    /// Overwrite `self` with `src`'s shape and entries, reusing the
    /// existing storage allocation when its capacity allows (the
    /// pooled-fork path).
    pub fn copy_from(&mut self, src: &Self) {
        self.dl = src.dl;
        self.dr = src.dr;
        self.data.clone_from(&src.data);
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, l: usize, p: usize, r: usize) -> Complex<T> {
        debug_assert!(l < self.dl && p < 2 && r < self.dr);
        self.data[(l * 2 + p) * self.dr + r]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, l: usize, p: usize, r: usize, v: Complex<T>) {
        debug_assert!(l < self.dl && p < 2 && r < self.dr);
        self.data[(l * 2 + p) * self.dr + r] = v;
    }

    /// View as a `(dl*2) × dr` matrix (grouping `(l,p)` as rows) — the
    /// shape used for left-canonicalization.
    pub fn to_matrix_lp_r(&self) -> Matrix<T> {
        Matrix::from_vec(self.dl * 2, self.dr, self.data.clone())
    }

    /// View as a `dl × (2*dr)` matrix (grouping `(p,r)` as columns) — the
    /// shape used for right-canonicalization.
    pub fn to_matrix_l_pr(&self) -> Matrix<T> {
        // data[(l*2+p)*dr + r] -> row l, col p*dr + r: needs a transpose of
        // the (l,p) grouping.
        let mut m = Matrix::zeros(self.dl, 2 * self.dr);
        for l in 0..self.dl {
            for p in 0..2 {
                for r in 0..self.dr {
                    m[(l, p * self.dr + r)] = self.get(l, p, r);
                }
            }
        }
        m
    }

    /// Rebuild from the `(dl*2) × dr` matrix view.
    pub fn from_matrix_lp_r(m: &Matrix<T>, dl: usize) -> Self {
        assert_eq!(m.rows(), dl * 2);
        Self {
            dl,
            dr: m.cols(),
            data: m.as_slice().to_vec(),
        }
    }

    /// Rebuild from the `dl × (2*dr)` matrix view.
    pub fn from_matrix_l_pr(m: &Matrix<T>, dr: usize) -> Self {
        assert_eq!(m.cols(), 2 * dr);
        let dl = m.rows();
        let mut t = Self::zeros(dl, dr);
        for l in 0..dl {
            for p in 0..2 {
                for r in 0..dr {
                    t.set(l, p, r, m[(l, p * dr + r)]);
                }
            }
        }
        t
    }

    /// Apply a 2×2 matrix to the physical index.
    pub fn apply_phys(&mut self, m: &Matrix<T>) {
        for l in 0..self.dl {
            for r in 0..self.dr {
                let a0 = self.get(l, 0, r);
                let a1 = self.get(l, 1, r);
                self.set(l, 0, r, m[(0, 0)] * a0 + m[(0, 1)] * a1);
                self.set(l, 1, r, m[(1, 0)] * a0 + m[(1, 1)] * a1);
            }
        }
    }

    /// Scale the two physical slices by `d0`/`d1` (a diagonal gate on the
    /// physical index — one multiply per entry, no gather).
    pub fn scale_phys(&mut self, d0: Complex<T>, d1: Complex<T>) {
        for l in 0..self.dl {
            for r in 0..self.dr {
                self.set(l, 0, r, d0 * self.get(l, 0, r));
                self.set(l, 1, r, d1 * self.get(l, 1, r));
            }
        }
    }

    /// Kron both bond indices with a `rank`-dimensional identity:
    /// `out[l·rank + k, p, r·rank + k] = self[l, p, r]`. This is the
    /// middle-site step of routing an operator-Schmidt index through the
    /// chain when a long-range two-site gate is applied in MPO form; it
    /// preserves left/right-canonical form (the isometry condition holds
    /// blockwise per `k`).
    pub fn expand_bonds(&self, rank: usize) -> Self {
        let mut out = Self::zeros(self.dl * rank, self.dr * rank);
        for l in 0..self.dl {
            for p in 0..2 {
                for r in 0..self.dr {
                    let v = self.get(l, p, r);
                    if v == Complex::zero() {
                        continue;
                    }
                    for k in 0..rank {
                        out.set(l * rank + k, p, r * rank + k, v);
                    }
                }
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn norm_sqr(&self) -> T {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .fold(T::ZERO, |a, b| a + b)
    }

    /// Scale all entries by a real factor.
    pub fn scale(&mut self, s: T) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_math::gates;

    #[test]
    fn product_tensor() {
        let t = Tensor3::<f64>::product(true);
        assert_eq!(t.get(0, 1, 0), Complex::one());
        assert_eq!(t.get(0, 0, 0), Complex::zero());
        assert!((t.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_views_roundtrip() {
        let mut t = Tensor3::<f64>::zeros(3, 4);
        for l in 0..3 {
            for p in 0..2 {
                for r in 0..4 {
                    t.set(l, p, r, Complex::from_f64((l * 8 + p * 4 + r) as f64, 0.5));
                }
            }
        }
        let a = Tensor3::from_matrix_lp_r(&t.to_matrix_lp_r(), 3);
        let b = Tensor3::from_matrix_l_pr(&t.to_matrix_l_pr(), 4);
        for l in 0..3 {
            for p in 0..2 {
                for r in 0..4 {
                    assert_eq!(a.get(l, p, r), t.get(l, p, r));
                    assert_eq!(b.get(l, p, r), t.get(l, p, r));
                }
            }
        }
    }

    #[test]
    fn apply_phys_hadamard() {
        let mut t = Tensor3::<f64>::product(false);
        t.apply_phys(&gates::h());
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((t.get(0, 0, 0).re - s).abs() < 1e-12);
        assert!((t.get(0, 1, 0).re - s).abs() < 1e-12);
    }

    #[test]
    fn scale_and_norm() {
        let mut t = Tensor3::<f64>::product(false);
        t.scale(2.0);
        assert!((t.norm_sqr() - 4.0).abs() < 1e-12);
    }
}
