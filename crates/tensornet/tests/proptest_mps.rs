//! Property tests: MPS ↔ statevector agreement on random circuits, and
//! gauge invariants.

use proptest::prelude::*;
use ptsbe_math::random::haar_unitary;
use ptsbe_rng::PhiloxRng;
use ptsbe_statevector::StateVector;
use ptsbe_tensornet::{Mps, MpsConfig};

fn exact() -> MpsConfig {
    MpsConfig {
        max_bond: 128,
        cutoff: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_circuits_match_statevector(
        seed in 0u64..500,
        n in 2usize..6,
        ops in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY), 1..15),
    ) {
        let mut rng = PhiloxRng::new(seed, 11);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = StateVector::<f64>::zero_state(n);
        for (a_raw, b_raw, two_q) in ops {
            let a = a_raw % n;
            let b = b_raw % n;
            if two_q && a != b {
                let u = haar_unitary::<f64>(4, &mut rng);
                mps.apply_2q(&u, a, b);
                sv.apply_2q(&u, a, b);
            } else {
                let u = haar_unitary::<f64>(2, &mut rng);
                mps.apply_1q(&u, a);
                sv.apply_1q(&u, a);
            }
        }
        // Fidelity via amplitudes (global-phase-free).
        let amps = mps.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in amps.iter().zip(sv.amplitudes()) {
            acc += x.conj() * *y;
        }
        prop_assert!((acc.norm_sqr() - 1.0).abs() < 1e-7, "fidelity {}", acc.norm_sqr());
        prop_assert!(mps.truncation_error() < 1e-10);
    }

    #[test]
    fn gauge_moves_preserve_amplitudes(seed in 0u64..300, n in 2usize..6, target in 0usize..6) {
        let target = target % n;
        let mut rng = PhiloxRng::new(seed, 12);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            mps.apply_2q(&u, q, q + 1);
        }
        let before = mps.to_statevector();
        mps.move_center(target);
        mps.move_center(n - 1 - target.min(n - 1));
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((*x - *y).abs() < 1e-9);
        }
        prop_assert!((mps.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncation_error_bounds_fidelity_loss(seed in 0u64..200, chi in 2usize..6) {
        // With bond cap χ the recorded truncation error must upper-bound
        // the fidelity deficit against the exact state (triangle-ish
        // inequality; generous constant for accumulation).
        let n = 6;
        let mut rng = PhiloxRng::new(seed, 13);
        let mut exact_mps = Mps::<f64>::zero_state(n, exact());
        let mut trunc = Mps::<f64>::zero_state(n, MpsConfig { max_bond: chi, cutoff: 0.0 });
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            exact_mps.apply_2q(&u, q, q + 1);
            trunc.apply_2q(&u, q, q + 1);
        }
        let a = exact_mps.to_statevector();
        let b = trunc.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in a.iter().zip(&b) {
            acc += x.conj() * *y;
        }
        let infidelity = 1.0 - acc.norm_sqr();
        let bound = 4.0 * trunc.truncation_error() + 1e-9;
        prop_assert!(
            infidelity <= bound,
            "infidelity {infidelity} exceeds 4x recorded truncation {bound}"
        );
    }
}
