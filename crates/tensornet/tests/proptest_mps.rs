//! Property tests: MPS ↔ statevector agreement on random circuits, and
//! gauge invariants.

use proptest::prelude::*;
use ptsbe_circuit::{Circuit, NoisyCircuit};
use ptsbe_math::random::haar_unitary;
use ptsbe_rng::PhiloxRng;
use ptsbe_statevector::StateVector;
use ptsbe_tensornet::{compile_mps, prepare_mps, Mps, MpsConfig};

fn exact() -> MpsConfig {
    MpsConfig::exact().with_max_bond(128)
}

/// A random entangling circuit from the op stream proptest generates:
/// rotations interleaved with CX/CZ at arbitrary (also non-adjacent)
/// qubit pairs.
fn random_circuit(n: usize, ops: &[(usize, usize, bool, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(a_raw, b_raw, two_q, angle) in ops {
        let a = a_raw % n;
        let b = b_raw % n;
        if two_q && a != b {
            if angle < 0.0 {
                c.cz(a, b);
            } else {
                c.cx(a, b);
            }
        } else {
            c.ry(a, angle).t(a);
        }
    }
    c.measure_all();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_circuits_match_statevector(
        seed in 0u64..500,
        n in 2usize..6,
        ops in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY), 1..15),
    ) {
        let mut rng = PhiloxRng::new(seed, 11);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = StateVector::<f64>::zero_state(n);
        for (a_raw, b_raw, two_q) in ops {
            let a = a_raw % n;
            let b = b_raw % n;
            if two_q && a != b {
                let u = haar_unitary::<f64>(4, &mut rng);
                mps.apply_2q(&u, a, b);
                sv.apply_2q(&u, a, b);
            } else {
                let u = haar_unitary::<f64>(2, &mut rng);
                mps.apply_1q(&u, a);
                sv.apply_1q(&u, a);
            }
        }
        // Fidelity via amplitudes (global-phase-free).
        let amps = mps.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in amps.iter().zip(sv.amplitudes()) {
            acc += x.conj() * *y;
        }
        prop_assert!((acc.norm_sqr() - 1.0).abs() < 1e-7, "fidelity {}", acc.norm_sqr());
        prop_assert!(mps.truncation_error() < 1e-10);
    }

    #[test]
    fn gauge_moves_preserve_amplitudes(seed in 0u64..300, n in 2usize..6, target in 0usize..6) {
        let target = target % n;
        let mut rng = PhiloxRng::new(seed, 12);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            mps.apply_2q(&u, q, q + 1);
        }
        let before = mps.to_statevector();
        mps.move_center(target);
        mps.move_center(n - 1 - target.min(n - 1));
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((*x - *y).abs() < 1e-9);
        }
        prop_assert!((mps.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncation_error_bounds_fidelity_loss(seed in 0u64..200, chi in 2usize..6) {
        // With bond cap χ the recorded truncation error must upper-bound
        // the fidelity deficit against the exact state (triangle-ish
        // inequality; generous constant for accumulation).
        let n = 6;
        let mut rng = PhiloxRng::new(seed, 13);
        let mut exact_mps = Mps::<f64>::zero_state(n, exact());
        let mut trunc = Mps::<f64>::zero_state(n, MpsConfig::exact().with_max_bond(chi));
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            exact_mps.apply_2q(&u, q, q + 1);
            trunc.apply_2q(&u, q, q + 1);
        }
        let a = exact_mps.to_statevector();
        let b = trunc.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in a.iter().zip(&b) {
            acc += x.conj() * *y;
        }
        let infidelity = 1.0 - acc.norm_sqr();
        let bound = 4.0 * trunc.truncation_error() + 1e-9;
        prop_assert!(
            infidelity <= bound,
            "infidelity {infidelity} exceeds 4x recorded truncation {bound}"
        );
    }

    /// Budget-driven truncation at a tight per-update budget reproduces
    /// the exact contraction: on small random circuits the adaptive MPS
    /// must agree with `run_pure`'s dense statevector.
    #[test]
    fn adaptive_tight_budget_matches_run_pure(
        n in 2usize..6,
        ops in prop::collection::vec(
            (0usize..8, 0usize..8, prop::bool::ANY, -1.5f64..1.5), 1..25),
    ) {
        let c = random_circuit(n, &ops);
        let sv: StateVector<f64> = ptsbe_statevector::run_pure(&c).unwrap();
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let config = MpsConfig::adaptive(64, 1e-12, 1e-9);
        let (mps, _) = prepare_mps(&compiled, &[], config);
        prop_assert!(mps.truncation_error() <= config.trunc_budget);
        prop_assert!(!mps.budget_exhausted());
        let amps = mps.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in amps.iter().zip(sv.amplitudes()) {
            acc += x.conj() * *y;
        }
        prop_assert!(
            (acc.norm_sqr() - 1.0).abs() < 1e-7,
            "adaptive fidelity vs run_pure: {}",
            acc.norm_sqr()
        );
    }

    /// `trunc_error` stays *exactly* 0.0 on any run that never pushes a
    /// bond against the ceiling with the cutoff disabled — the invariant
    /// that makes a zero error report trustworthy.
    #[test]
    fn zero_trunc_error_whenever_ceiling_never_hit(
        n in 2usize..6,
        ops in prop::collection::vec(
            (0usize..8, 0usize..8, prop::bool::ANY, -1.5f64..1.5), 1..25),
    ) {
        let c = random_circuit(n, &ops);
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let config = MpsConfig::exact(); // cutoff 0, budgets off, χ ≤ 256
        let (mps, _) = prepare_mps(&compiled, &[], config);
        prop_assert!(mps.max_bond_reached() < config.max_bond);
        prop_assert_eq!(mps.truncation_error(), 0.0);
        prop_assert!(!mps.budget_exhausted());
        for bs in mps.bond_stats() {
            prop_assert_eq!(bs.discarded, 0.0);
        }
    }
}
