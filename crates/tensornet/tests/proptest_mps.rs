//! Property tests: MPS ↔ statevector agreement on random circuits, and
//! gauge invariants.

use proptest::prelude::*;
use ptsbe_circuit::{Circuit, NoisyCircuit};
use ptsbe_math::random::haar_unitary;
use ptsbe_rng::PhiloxRng;
use ptsbe_statevector::StateVector;
use ptsbe_tensornet::{compile_mps, prepare_mps, Mps, MpsConfig};

fn exact() -> MpsConfig {
    MpsConfig::exact().with_max_bond(128)
}

/// A random entangling circuit from the op stream proptest generates:
/// rotations interleaved with CX/CZ at arbitrary (also non-adjacent)
/// qubit pairs.
fn random_circuit(n: usize, ops: &[(usize, usize, bool, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(a_raw, b_raw, two_q, angle) in ops {
        let a = a_raw % n;
        let b = b_raw % n;
        if two_q && a != b {
            if angle < 0.0 {
                c.cz(a, b);
            } else {
                c.cx(a, b);
            }
        } else {
            c.ry(a, angle).t(a);
        }
    }
    c.measure_all();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_circuits_match_statevector(
        seed in 0u64..500,
        n in 2usize..6,
        ops in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY), 1..15),
    ) {
        let mut rng = PhiloxRng::new(seed, 11);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        let mut sv = StateVector::<f64>::zero_state(n);
        for (a_raw, b_raw, two_q) in ops {
            let a = a_raw % n;
            let b = b_raw % n;
            if two_q && a != b {
                let u = haar_unitary::<f64>(4, &mut rng);
                mps.apply_2q(&u, a, b);
                sv.apply_2q(&u, a, b);
            } else {
                let u = haar_unitary::<f64>(2, &mut rng);
                mps.apply_1q(&u, a);
                sv.apply_1q(&u, a);
            }
        }
        // Fidelity via amplitudes (global-phase-free).
        let amps = mps.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in amps.iter().zip(sv.amplitudes()) {
            acc += x.conj() * *y;
        }
        prop_assert!((acc.norm_sqr() - 1.0).abs() < 1e-7, "fidelity {}", acc.norm_sqr());
        prop_assert!(mps.truncation_error() < 1e-10);
    }

    #[test]
    fn gauge_moves_preserve_amplitudes(seed in 0u64..300, n in 2usize..6, target in 0usize..6) {
        let target = target % n;
        let mut rng = PhiloxRng::new(seed, 12);
        let mut mps = Mps::<f64>::zero_state(n, exact());
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            mps.apply_2q(&u, q, q + 1);
        }
        let before = mps.to_statevector();
        mps.move_center(target);
        mps.move_center(n - 1 - target.min(n - 1));
        let after = mps.to_statevector();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((*x - *y).abs() < 1e-9);
        }
        prop_assert!((mps.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncation_error_bounds_fidelity_loss(seed in 0u64..200, chi in 2usize..6) {
        // With bond cap χ the recorded truncation error must upper-bound
        // the fidelity deficit against the exact state (triangle-ish
        // inequality; generous constant for accumulation).
        let n = 6;
        let mut rng = PhiloxRng::new(seed, 13);
        let mut exact_mps = Mps::<f64>::zero_state(n, exact());
        let mut trunc = Mps::<f64>::zero_state(n, MpsConfig::exact().with_max_bond(chi));
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            exact_mps.apply_2q(&u, q, q + 1);
            trunc.apply_2q(&u, q, q + 1);
        }
        let a = exact_mps.to_statevector();
        let b = trunc.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in a.iter().zip(&b) {
            acc += x.conj() * *y;
        }
        let infidelity = 1.0 - acc.norm_sqr();
        let bound = 4.0 * trunc.truncation_error() + 1e-9;
        prop_assert!(
            infidelity <= bound,
            "infidelity {infidelity} exceeds 4x recorded truncation {bound}"
        );
    }

    /// Budget-driven truncation at a tight per-update budget reproduces
    /// the exact contraction: on small random circuits the adaptive MPS
    /// must agree with `run_pure`'s dense statevector.
    #[test]
    fn adaptive_tight_budget_matches_run_pure(
        n in 2usize..6,
        ops in prop::collection::vec(
            (0usize..8, 0usize..8, prop::bool::ANY, -1.5f64..1.5), 1..25),
    ) {
        let c = random_circuit(n, &ops);
        let sv: StateVector<f64> = ptsbe_statevector::run_pure(&c).unwrap();
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let config = MpsConfig::adaptive(64, 1e-12, 1e-9);
        let (mps, _) = prepare_mps(&compiled, &[], config);
        prop_assert!(mps.truncation_error() <= config.trunc_budget);
        prop_assert!(!mps.budget_exhausted());
        let amps = mps.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        for (x, y) in amps.iter().zip(sv.amplitudes()) {
            acc += x.conj() * *y;
        }
        prop_assert!(
            (acc.norm_sqr() - 1.0).abs() < 1e-7,
            "adaptive fidelity vs run_pure: {}",
            acc.norm_sqr()
        );
    }

    /// The zip-up long-range path must reproduce the old kron-identity
    /// inflation path: same gates, same state, within 1e-10 fidelity
    /// (the two differ only in gauge and truncation bookkeeping order).
    #[test]
    fn zip_up_long_range_matches_inflation(
        seed in 0u64..400,
        n in 3usize..7,
        pairs in prop::collection::vec((0usize..8, 0usize..8), 1..10),
    ) {
        let mut rng = PhiloxRng::new(seed, 14);
        let mut zip = Mps::<f64>::zero_state(n, exact());
        let mut inflate = Mps::<f64>::zero_state(n, exact());
        // Entangle first so long-range gates act on non-product states.
        for q in 0..n - 1 {
            let u = haar_unitary::<f64>(4, &mut rng);
            zip.apply_2q(&u, q, q + 1);
            inflate.apply_2q(&u, q, q + 1);
        }
        for (a_raw, b_raw) in pairs {
            let a = a_raw % n;
            let b = b_raw % n;
            if a == b {
                continue;
            }
            let u = haar_unitary::<f64>(4, &mut rng);
            zip.apply_2q(&u, a, b);
            inflate.apply_2q_via_inflation(&u, a, b);
        }
        let x = zip.to_statevector();
        let y = inflate.to_statevector();
        let mut acc = ptsbe_math::C64::zero();
        let mut nx = 0.0;
        let mut ny = 0.0;
        for (xa, ya) in x.iter().zip(&y) {
            acc += xa.conj() * *ya;
            nx += xa.norm_sqr();
            ny += ya.norm_sqr();
        }
        let fidelity = acc.norm_sqr() / (nx * ny);
        prop_assert!(
            (fidelity - 1.0).abs() < 1e-10,
            "zip-up vs inflation fidelity {fidelity}"
        );
    }

    /// The QR-first reduction is a drop-in for the dense Jacobi SVD:
    /// identical singular values and an exact reconstruction on random
    /// complex matrices of every aspect ratio.
    #[test]
    fn qr_first_svd_matches_dense_svd(
        rows in 1usize..24,
        cols in 1usize..24,
        raw in prop::collection::vec(-1.0f64..1.0, 2 * 24 * 24),
    ) {
        use ptsbe_math::svd::{svd, svd_qr};
        let data: Vec<ptsbe_math::C64> = (0..rows * cols)
            .map(|i| ptsbe_math::C64::new(raw[2 * i], raw[2 * i + 1]))
            .collect();
        let a = ptsbe_math::Matrix::from_vec(rows, cols, data);
        let dense = svd(&a);
        let qr = svd_qr(&a);
        prop_assert_eq!(dense.s.len(), qr.s.len());
        for (sd, sq) in dense.s.iter().zip(&qr.s) {
            prop_assert!((sd - sq).abs() < 1e-10, "singular values {sd} vs {sq}");
        }
        // Reconstruction: ‖A − U·S·Vh‖∞ ≈ 0.
        let k = qr.s.len();
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = ptsbe_math::C64::zero();
                for j in 0..k {
                    acc += qr.u[(r, j)] * qr.vh[(j, c)].scale(qr.s[j]);
                }
                prop_assert!((acc - a[(r, c)]).abs() < 1e-10);
            }
        }
    }

    /// Batched (prefix-trie) sampling is bitwise identical to the
    /// sequential cached sweep on random circuits, across several
    /// independent per-trajectory RNG streams.
    #[test]
    fn batched_sampling_bitwise_matches_sequential(
        seed in 0u64..300,
        n in 2usize..7,
        ops in prop::collection::vec(
            (0usize..8, 0usize..8, prop::bool::ANY, -1.5f64..1.5), 1..20),
    ) {
        let c = random_circuit(n, &ops);
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let (mut mps, _) = prepare_mps(&compiled, &[], exact());
        let mut expect = Vec::new();
        for t in 0..3u64 {
            let mut rng = PhiloxRng::for_trajectory(seed, t);
            expect.push(ptsbe_tensornet::sample::sample_shots_cached(
                &mut mps, 64, &mut rng,
            ));
        }
        let mut rngs: Vec<PhiloxRng> =
            (0..3).map(|t| PhiloxRng::for_trajectory(seed, t)).collect();
        let mut reqs: Vec<(usize, &mut PhiloxRng)> =
            rngs.iter_mut().map(|r| (64usize, r)).collect();
        let got = ptsbe_tensornet::sample::sample_shots_batched(&mut mps, &mut reqs);
        prop_assert_eq!(expect, got);
    }

    /// `trunc_error` stays *exactly* 0.0 on any run that never pushes a
    /// bond against the ceiling with the cutoff disabled — the invariant
    /// that makes a zero error report trustworthy.
    #[test]
    fn zero_trunc_error_whenever_ceiling_never_hit(
        n in 2usize..6,
        ops in prop::collection::vec(
            (0usize..8, 0usize..8, prop::bool::ANY, -1.5f64..1.5), 1..25),
    ) {
        let c = random_circuit(n, &ops);
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile_mps::<f64>(&nc).unwrap();
        let config = MpsConfig::exact(); // cutoff 0, budgets off, χ ≤ 256
        let (mps, _) = prepare_mps(&compiled, &[], config);
        prop_assert!(mps.max_bond_reached() < config.max_bond);
        prop_assert_eq!(mps.truncation_error(), 0.0);
        prop_assert!(!mps.budget_exhausted());
        for bs in mps.bond_stats() {
            prop_assert_eq!(bs.discarded, 0.0);
        }
    }
}
