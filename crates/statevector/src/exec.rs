//! Circuit execution on the statevector backend.
//!
//! [`compile`] lowers a [`NoisyCircuit`] once into precision-converted
//! matrices and fast-path tags; [`prepare`] then executes it under a fixed
//! trajectory assignment — the operation Batched Execution repeats once
//! per Kraus set instead of once per shot. Compilation is shared across
//! trajectories, eliminating the "redundant circuit recompilation" the
//! paper's BE bullet calls out.

use ptsbe_circuit::fusion::{self, FusedKernel, FusedOp, Fuser, FusionStats};
use ptsbe_circuit::{ChannelKind, Circuit, NoisyCircuit, NoisyOp, Op};
use ptsbe_math::{Complex, Matrix, Scalar};

use crate::kraus::apply_kraus_normalized;
use crate::state::StateVector;

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A stochastic op appeared where a deterministic stream was required.
    UnexpectedNoise,
    /// Gates after measurement (batched execution requires terminal
    /// measurement so one prepared state serves every shot).
    MidCircuitMeasurement,
    /// Reset is stochastic and unsupported in fixed-assignment execution.
    UnsupportedReset,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnexpectedNoise => write!(f, "circuit contains unresolved noise ops"),
            ExecError::MidCircuitMeasurement => {
                write!(f, "batched execution requires terminal measurements")
            }
            ExecError::UnsupportedReset => write!(f, "reset is not supported in this mode"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A gate lowered to its execution form.
#[derive(Clone, Debug)]
pub enum CompiledOp<T: Scalar> {
    /// Dense 1-qubit matrix.
    G1(Matrix<T>, usize),
    /// Dense 2-qubit matrix.
    G2(Matrix<T>, usize, usize),
    /// Diagonal 1-qubit fused kernel (pure phase multiply).
    D1([Complex<T>; 2], usize),
    /// Diagonal 2-qubit fused kernel, gate basis `(bit_a << 1) | bit_b`.
    D2([Complex<T>; 4], usize, usize),
    /// 1-qubit permutation fused kernel: `out[r] = phase[r]·in[perm[r]]`.
    P1([usize; 2], [Complex<T>; 2], usize),
    /// 2-qubit permutation fused kernel, gate basis `(bit_a << 1) | bit_b`.
    P2([usize; 4], [Complex<T>; 4], usize, usize),
    /// CNOT permutation fast path (unfused lowering).
    Cx(usize, usize),
    /// CZ diagonal fast path (unfused lowering).
    Cz(usize, usize),
    /// SWAP permutation fast path (unfused lowering).
    Swap(usize, usize),
    /// k-qubit dense matrix (k ≥ 3 gates pass through fusion unchanged).
    Gk(Matrix<T>, Vec<usize>),
    /// Noise site resolved through the trajectory assignment.
    Site(usize),
}

/// One lowered noise site: matrices pre-converted, classification cached.
#[derive(Clone, Debug)]
pub struct CompiledSite<T: Scalar> {
    /// Site qubits.
    pub qubits: Vec<usize>,
    /// Unitary branches (for mixtures) or Kraus operators (general).
    pub mats: Vec<Matrix<T>>,
    /// True when branches are unitaries with state-independent probs.
    pub is_unitary_mixture: bool,
    /// Pre-sampling probabilities (exact for mixtures, nominal otherwise).
    pub probs: Vec<f64>,
    /// `skip_identity[k]`: branch `k` is an *exact* identity whose
    /// application every execution path elides (detected on the `f64`
    /// channel matrices at compile time, so scalar, batch-major and MPS
    /// paths skip the same branches and stay bitwise aligned). Only ever
    /// true for unitary mixtures — general channels renormalize, which is
    /// never a no-op. Under low-noise unitary-mixture workloads the
    /// identity branch dominates, so this removes the single most common
    /// dense apply from `advance`.
    pub skip_identity: Vec<bool>,
}

impl<T: Scalar> CompiledSite<T> {
    /// Whether branch `k`'s application can be elided entirely.
    #[inline]
    pub fn skips(&self, k: usize) -> bool {
        self.is_unitary_mixture && self.skip_identity[k]
    }
}

/// A [`NoisyCircuit`] lowered for repeated execution at precision `T`.
///
/// The op stream is additionally split into *segments* delimited by noise
/// sites: segment `k < n_sites` is the gate run ending with (and
/// including) site `k`; the final segment is the trailing gate run after
/// the last site. Segmentation is what lets the trajectory-tree executor
/// re-play only the suffix of a circuit that differs between two
/// trajectories (see `ptsbe_core::be::TreeExecutor`).
#[derive(Clone, Debug)]
pub struct Compiled<T: Scalar> {
    n_qubits: usize,
    ops: Vec<CompiledOp<T>>,
    sites: Vec<CompiledSite<T>>,
    measured: Vec<usize>,
    /// `seg_bounds[k]..seg_bounds[k + 1]` = op range of segment `k`.
    seg_bounds: Vec<usize>,
    /// Fusion report (ops in/out per kernel class).
    fusion_stats: FusionStats,
}

impl<T: Scalar> Compiled<T> {
    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }
    /// Lowered op stream.
    pub fn ops(&self) -> &[CompiledOp<T>] {
        &self.ops
    }
    /// Lowered noise sites.
    pub fn sites(&self) -> &[CompiledSite<T>] {
        &self.sites
    }
    /// Mutable site access — exists for the unitary-mixture ablation
    /// benchmark (forcing the general-channel path); not a normal API.
    pub fn sites_mut(&mut self) -> &mut [CompiledSite<T>] {
        &mut self.sites
    }
    /// Terminal measurement qubits, record order.
    pub fn measured_qubits(&self) -> &[usize] {
        &self.measured
    }
    /// Number of segments (`n_sites + 1`; the last segment is the gate
    /// tail after the final noise site and fires no site).
    pub fn n_segments(&self) -> usize {
        self.seg_bounds.len() - 1
    }
    /// The ops covered by a contiguous segment span — the one slice both
    /// the scalar [`advance`] loop and the batch-major
    /// [`crate::batch::advance_batch`] loop walk, so the two paths can
    /// never disagree on op order.
    ///
    /// # Panics
    /// Panics when the range exceeds [`Compiled::n_segments`].
    pub fn segment_ops(&self, segments: std::ops::Range<usize>) -> &[CompiledOp<T>] {
        &self.ops[self.seg_bounds[segments.start]..self.seg_bounds[segments.end]]
    }
    /// The fusion report for this compilation (all-passthrough when the
    /// circuit was compiled unfused).
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion_stats
    }
}

/// Lower a noisy circuit for repeated fixed-assignment execution, fusing
/// adjacent-gate runs within each segment (the default compilation every
/// backend and executor shares; see [`compile_with`] for the unfused
/// reference path).
///
/// # Errors
/// [`ExecError::MidCircuitMeasurement`] if any gate/noise op follows a
/// measurement; [`ExecError::UnsupportedReset`] on reset ops.
pub fn compile<T: Scalar>(nc: &NoisyCircuit) -> Result<Compiled<T>, ExecError> {
    compile_with(nc, true)
}

/// Lower a noisy circuit with fusion explicitly on or off.
///
/// With `fuse = false` every gate is lowered individually (the reference
/// pipeline the fusion equivalence suite compares against). With
/// `fuse = true` runs of adjacent ≤2-qubit gates are merged by
/// [`ptsbe_circuit::fusion::Fuser`] and classified into dense/diagonal/
/// permutation kernels. Fusion never crosses a noise site: the fuser is
/// flushed before every [`CompiledOp::Site`], so segment boundaries,
/// Kraus branch points and Philox stream association are identical in
/// both modes.
///
/// # Errors
/// [`ExecError::MidCircuitMeasurement`] if any gate/noise op follows a
/// measurement; [`ExecError::UnsupportedReset`] on reset ops.
pub fn compile_with<T: Scalar>(nc: &NoisyCircuit, fuse: bool) -> Result<Compiled<T>, ExecError> {
    let mut ops = Vec::with_capacity(nc.ops().len());
    let mut measured = Vec::new();
    let mut seen_measure = false;
    let mut fusion_stats = FusionStats::default();
    let mut fuser = Fuser::new();
    let flush = |ops: &mut Vec<CompiledOp<T>>, fuser: &mut Fuser, stats: &mut FusionStats| {
        let (before, run) = fuser.finish();
        stats.record_run(before, &run);
        ops.extend(run.iter().map(lower_fused));
    };
    for op in nc.ops() {
        match op {
            NoisyOp::Gate(g) => {
                if seen_measure {
                    return Err(ExecError::MidCircuitMeasurement);
                }
                if fuse {
                    if g.qubits.len() <= 2 {
                        fuser.push(&g.gate.matrix::<f64>(), &g.qubits);
                    } else {
                        // Fusion barrier: flush, pass the k-qubit gate
                        // through unchanged.
                        flush(&mut ops, &mut fuser, &mut fusion_stats);
                        fusion_stats.record_passthrough();
                        ops.push(lower_gate(g));
                    }
                } else {
                    fusion_stats.record_passthrough();
                    ops.push(lower_gate(g));
                }
            }
            NoisyOp::Site(id) => {
                if seen_measure {
                    return Err(ExecError::MidCircuitMeasurement);
                }
                if fuse {
                    flush(&mut ops, &mut fuser, &mut fusion_stats);
                }
                ops.push(CompiledOp::Site(*id));
            }
            NoisyOp::Measure { qubits } => {
                seen_measure = true;
                measured.extend_from_slice(qubits);
            }
            NoisyOp::Reset { .. } => return Err(ExecError::UnsupportedReset),
        }
    }
    if fuse {
        flush(&mut ops, &mut fuser, &mut fusion_stats);
    }
    let sites = nc
        .sites()
        .iter()
        .map(|site| {
            let (mats, is_mixture): (Vec<Matrix<T>>, bool) = match site.channel.kind() {
                ChannelKind::UnitaryMixture { unitaries, .. } => (
                    unitaries
                        .iter()
                        .map(|u| Matrix::from_f64_matrix(u))
                        .collect(),
                    true,
                ),
                ChannelKind::General { .. } => (
                    site.channel
                        .ops()
                        .iter()
                        .map(|k| Matrix::from_f64_matrix(k))
                        .collect(),
                    false,
                ),
            };
            CompiledSite {
                qubits: site.qubits.clone(),
                mats,
                is_unitary_mixture: is_mixture,
                probs: site.channel.sampling_probs().to_vec(),
                skip_identity: site.channel.identity_skip_flags(),
            }
        })
        .collect();
    // Segment boundaries: one cut after every noise site. Site ids are
    // dense in encounter order (see `NoisyCircuit::from_circuit`), so
    // segment `k` always fires site `k` — the invariant the segmented
    // `advance` API and the trajectory-tree executor rely on.
    let mut seg_bounds = Vec::with_capacity(nc.n_sites() + 2);
    seg_bounds.push(0);
    for (i, op) in ops.iter().enumerate() {
        if let CompiledOp::Site(id) = op {
            debug_assert_eq!(*id, seg_bounds.len() - 1, "site ids must be in op order");
            seg_bounds.push(i + 1);
        }
    }
    seg_bounds.push(ops.len());
    Ok(Compiled {
        n_qubits: nc.n_qubits(),
        ops,
        sites,
        measured,
        seg_bounds,
        fusion_stats,
    })
}

fn lower_gate<T: Scalar>(g: &ptsbe_circuit::GateOp) -> CompiledOp<T> {
    use ptsbe_circuit::Gate;
    match (&g.gate, g.qubits.as_slice()) {
        (Gate::Cx, [c, t]) => CompiledOp::Cx(*c, *t),
        (Gate::Cz, [a, b]) => CompiledOp::Cz(*a, *b),
        (Gate::Swap, [a, b]) => CompiledOp::Swap(*a, *b),
        (gate, [q]) => CompiledOp::G1(gate.matrix(), *q),
        (gate, [a, b]) => CompiledOp::G2(gate.matrix(), *a, *b),
        (gate, qs) => CompiledOp::Gk(gate.matrix(), qs.to_vec()),
    }
}

/// Lower one classified fused op to its specialized kernel at precision
/// `T`.
fn lower_fused<T: Scalar>(op: &FusedOp) -> CompiledOp<T> {
    let m = &op.matrix;
    match (op.kind, op.qubits.as_slice()) {
        (FusedKernel::Diagonal, &[q]) => CompiledOp::D1(
            [
                Complex::from_f64_complex(m[(0, 0)]),
                Complex::from_f64_complex(m[(1, 1)]),
            ],
            q,
        ),
        (FusedKernel::Diagonal, &[a, b]) => {
            let d = [m[(0, 0)], m[(1, 1)], m[(2, 2)], m[(3, 3)]];
            let one = Complex::<f64>::one();
            // A fused op that is exactly CZ keeps the sign-flip fast
            // path (touches 1/4 of the amplitudes, no multiplies).
            if d[0] == one && d[1] == one && d[2] == one && d[3] == -one {
                return CompiledOp::Cz(a, b);
            }
            CompiledOp::D2(
                [
                    Complex::from_f64_complex(d[0]),
                    Complex::from_f64_complex(d[1]),
                    Complex::from_f64_complex(d[2]),
                    Complex::from_f64_complex(d[3]),
                ],
                a,
                b,
            )
        }
        (FusedKernel::Permutation, &[q]) => {
            let (perm, phase) = fusion::permutation_form(m);
            CompiledOp::P1(
                [perm[0], perm[1]],
                [
                    Complex::from_f64_complex(phase[0]),
                    Complex::from_f64_complex(phase[1]),
                ],
                q,
            )
        }
        (FusedKernel::Permutation, &[a, b]) => {
            let (perm, phase) = fusion::permutation_form(m);
            // Phase-free permutations that are exactly CX/SWAP keep the
            // arithmetic-free swap kernels (common when a segment holds
            // a single entangler, e.g. under noise-on-every-gate models
            // where fusion has nothing to merge).
            if phase.iter().all(|p| *p == Complex::<f64>::one()) {
                match perm.as_slice() {
                    [0, 1, 3, 2] => return CompiledOp::Cx(a, b),
                    [0, 3, 2, 1] => return CompiledOp::Cx(b, a),
                    [0, 2, 1, 3] => return CompiledOp::Swap(a, b),
                    _ => {}
                }
            }
            CompiledOp::P2(
                [perm[0], perm[1], perm[2], perm[3]],
                [
                    Complex::from_f64_complex(phase[0]),
                    Complex::from_f64_complex(phase[1]),
                    Complex::from_f64_complex(phase[2]),
                    Complex::from_f64_complex(phase[3]),
                ],
                a,
                b,
            )
        }
        (FusedKernel::Dense, &[q]) => CompiledOp::G1(Matrix::from_f64_matrix(m), q),
        (FusedKernel::Dense, &[a, b]) => CompiledOp::G2(Matrix::from_f64_matrix(m), a, b),
        (_, qs) => unreachable!("fused ops are 1- or 2-qubit, got {}", qs.len()),
    }
}

/// Execute a compiled circuit under a fixed Kraus assignment
/// (`choices[site_id]` = branch index). Returns the prepared state and the
/// *realized* joint trajectory probability `p_α` — for unitary mixtures
/// this equals the nominal product exactly; for general channels it is the
/// state-dependent probability needed for importance weighting.
pub fn prepare<T: Scalar>(compiled: &Compiled<T>, choices: &[usize]) -> (StateVector<T>, f64) {
    assert_eq!(
        choices.len(),
        compiled.sites.len(),
        "assignment length does not match site count"
    );
    // Degenerate single-span path through the segmented executor: one
    // `advance` over every segment applies exactly the same op sequence
    // (and probability-product order) the flat loop did.
    let mut sv = StateVector::zero_state(compiled.n_qubits);
    let realized = advance(compiled, &mut sv, 0..compiled.n_segments(), choices);
    (sv, realized)
}

/// Advance a state through segments `segments.start..segments.end`,
/// resolving each fired noise site through `choices[site_id]`. Returns the
/// partial trajectory probability realized by the advanced span (the
/// product of its sites' branch probabilities, in op order).
///
/// `choices` is indexed by site id, so a caller advancing a prefix only
/// needs the prefix of the assignment (`choices.len() >=` the last site id
/// fired by the span, plus one).
///
/// # Panics
/// Panics when the segment range or the assignment prefix is out of
/// bounds.
pub fn advance<T: Scalar>(
    compiled: &Compiled<T>,
    sv: &mut StateVector<T>,
    segments: std::ops::Range<usize>,
    choices: &[usize],
) -> f64 {
    assert!(
        segments.end <= compiled.n_segments(),
        "segment range {segments:?} exceeds {} segments",
        compiled.n_segments()
    );
    assert!(
        choices.len() >= segments.end.min(compiled.sites.len()),
        "assignment length {} does not cover sites fired by segments {segments:?}",
        choices.len()
    );
    let mut realized = 1.0f64;
    if segments.is_empty() {
        return realized;
    }
    let ops = compiled.segment_ops(segments);
    for op in ops {
        match op {
            CompiledOp::G1(m, q) => sv.apply_1q(m, *q),
            CompiledOp::G2(m, a, b) => sv.apply_2q(m, *a, *b),
            CompiledOp::D1(d, q) => sv.apply_diag_1q(d, *q),
            CompiledOp::D2(d, a, b) => sv.apply_diag_2q(d, *a, *b),
            CompiledOp::P1(p, ph, q) => sv.apply_perm_1q(p, ph, *q),
            CompiledOp::P2(p, ph, a, b) => sv.apply_perm_2q(p, ph, *a, *b),
            CompiledOp::Cx(c, t) => sv.apply_cx(*c, *t),
            CompiledOp::Cz(a, b) => sv.apply_cz(*a, *b),
            CompiledOp::Swap(a, b) => sv.apply_swap(*a, *b),
            CompiledOp::Gk(m, qs) => sv.apply_kq(m, qs),
            CompiledOp::Site(id) => {
                let site = &compiled.sites[*id];
                let k = choices[*id];
                if site.is_unitary_mixture {
                    realized *= site.probs[k];
                    // Exact-identity branches are mathematical no-ops;
                    // every execution path skips the same branches
                    // (compile-time detection), preserving cross-path
                    // bitwise identity.
                    if !site.skip_identity[k] {
                        apply_sized(sv, &site.mats[k], &site.qubits);
                    }
                } else {
                    realized *= apply_kraus_normalized(sv, &site.mats[k], &site.qubits);
                }
            }
        }
    }
    realized
}

fn apply_sized<T: Scalar>(sv: &mut StateVector<T>, m: &Matrix<T>, qubits: &[usize]) {
    match qubits.len() {
        1 => sv.apply_1q(m, qubits[0]),
        2 => sv.apply_2q(m, qubits[0], qubits[1]),
        _ => sv.apply_kq(m, qubits),
    }
}

/// Execute a noise-free circuit (gates + terminal measurement only).
///
/// # Errors
/// [`ExecError::UnexpectedNoise`] if the circuit contains noise ops.
pub fn run_pure<T: Scalar>(circuit: &Circuit) -> Result<StateVector<T>, ExecError> {
    for op in circuit.ops() {
        if matches!(op, Op::Noise(_)) {
            return Err(ExecError::UnexpectedNoise);
        }
    }
    let nc = NoisyCircuit::from_circuit(circuit.clone());
    let compiled = compile::<T>(&nc)?;
    Ok(prepare(&compiled, &[]).0)
}

/// Convenience: compile + prepare in one call (per-trajectory compilation;
/// prefer [`compile`] once + [`prepare`] many for batched workloads).
pub fn prepare_with_assignment<T: Scalar>(
    nc: &NoisyCircuit,
    choices: &[usize],
) -> Result<(StateVector<T>, f64), ExecError> {
    let compiled = compile::<T>(nc)?;
    Ok(prepare(&compiled, choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_circuit::{channels, NoiseModel};

    fn noisy_bell(p: f64) -> NoisyCircuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        NoiseModel::new()
            .with_default_1q(channels::depolarizing(p))
            .with_default_2q(channels::depolarizing(p))
            .apply(&c)
    }

    #[test]
    fn run_pure_bell() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let sv = run_pure::<f64>(&c).unwrap();
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_pure_rejects_noise() {
        let mut c = Circuit::new(1);
        c.noise(std::sync::Arc::new(channels::depolarizing(0.1)), &[0]);
        assert_eq!(run_pure::<f64>(&c).unwrap_err(), ExecError::UnexpectedNoise);
    }

    #[test]
    fn identity_assignment_matches_pure() {
        let nc = noisy_bell(0.2);
        let ident = nc.identity_assignment().unwrap();
        let (sv, p) = prepare_with_assignment::<f64>(&nc, &ident).unwrap();
        assert!((p - 0.8f64.powi(3)).abs() < 1e-12);
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_error_flips_output() {
        let nc = noisy_bell(0.2);
        // X on site 2 (qubit 1, after the CX): Bell becomes (|10⟩+|01⟩)/√2.
        // (An X on site 0 — qubit 0 right after H — would be invisible,
        // since X|+⟩ = |+⟩.)
        let mut choices = nc.identity_assignment().unwrap();
        choices[2] = 1;
        let (sv, p) = prepare_with_assignment::<f64>(&nc, &choices).unwrap();
        assert!((p - 0.8f64.powi(2) * (0.2 / 3.0)).abs() < 1e-12);
        assert!((sv.probability(0b01) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn general_channel_realized_probability() {
        // H then amplitude damping on |+⟩: branch 1 realizes γ/2.
        let gamma = 0.3;
        let mut c = Circuit::new(1);
        c.h(0).measure_all();
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(gamma))
            .apply(&c);
        let (sv, p) = prepare_with_assignment::<f64>(&nc, &[1]).unwrap();
        assert!((p - gamma / 2.0).abs() < 1e-12);
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
        // Nominal (proposal) weight differs: γ/2 happens to match here
        // because tr(K1†K1)/2 = γ/2 — exercised properly in core's
        // importance-weighting tests.
    }

    #[test]
    fn mid_circuit_measurement_rejected() {
        let mut c = Circuit::new(2);
        c.h(0).measure(&[0]);
        c.cx(0, 1);
        let nc = NoisyCircuit::from_circuit(c);
        assert_eq!(
            compile::<f64>(&nc).unwrap_err(),
            ExecError::MidCircuitMeasurement
        );
    }

    #[test]
    fn reset_rejected() {
        let mut c = Circuit::new(1);
        c.reset(0);
        let nc = NoisyCircuit::from_circuit(c);
        assert_eq!(
            compile::<f64>(&nc).unwrap_err(),
            ExecError::UnsupportedReset
        );
    }

    #[test]
    fn compile_once_prepare_many() {
        let nc = noisy_bell(0.1);
        let compiled = compile::<f64>(&nc).unwrap();
        assert_eq!(compiled.sites().len(), 3);
        assert_eq!(compiled.measured_qubits(), &[0, 1]);
        let ident = nc.identity_assignment().unwrap();
        let (a, _) = prepare(&compiled, &ident);
        let (b, _) = prepare(&compiled, &ident);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_paths_used_for_cliffords() {
        // Unfused lowering keeps the named permutation fast paths…
        let nc = noisy_bell(0.0);
        let unfused = compile_with::<f64>(&nc, false).unwrap();
        assert!(unfused
            .ops()
            .iter()
            .any(|op| matches!(op, CompiledOp::Cx(_, _))));
        // …and so does the fused default: a lone CX in a segment (the
        // saturated-noise case, where fusion has nothing to merge) must
        // re-lower to the arithmetic-free swap kernel, not a generic P2.
        let fused = compile::<f64>(&nc).unwrap();
        let stats = fused.fusion_stats();
        assert!(stats.ops_after <= stats.ops_before);
        assert!(stats.dense + stats.diagonal + stats.permutation > 0);
        assert!(fused
            .ops()
            .iter()
            .any(|op| matches!(op, CompiledOp::Cx(_, _))));
    }

    #[test]
    fn exact_clifford_fusions_keep_fast_paths() {
        // cz and swap alone must round-trip through fusion back to their
        // specialized kernels; cx composed with cx must vanish into a
        // diagonal identity, not a dense 4x4.
        let mut c = Circuit::new(2);
        c.cz(0, 1).measure_all();
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile::<f64>(&nc).unwrap();
        assert!(matches!(compiled.ops()[0], CompiledOp::Cz(0, 1)));

        let mut c = Circuit::new(2);
        c.swap(0, 1).measure_all();
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile::<f64>(&nc).unwrap();
        assert!(matches!(compiled.ops()[0], CompiledOp::Swap(0, 1)));

        // cx(0,1) fused with cx(1,0) is a genuine permutation: stays P2.
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).measure_all();
        let nc = NoisyCircuit::from_circuit(c);
        let compiled = compile::<f64>(&nc).unwrap();
        assert_eq!(compiled.ops().len(), 1);
        assert!(matches!(compiled.ops()[0], CompiledOp::P2(_, _, _, _)));
    }

    #[test]
    fn fusion_never_crosses_noise_sites() {
        let nc = noisy_bell(0.1);
        let fused = compile::<f64>(&nc).unwrap();
        let unfused = compile_with::<f64>(&nc, false).unwrap();
        // Same segment count and the same site sequence in op order.
        assert_eq!(fused.n_segments(), unfused.n_segments());
        let sites = |c: &Compiled<f64>| {
            c.ops()
                .iter()
                .filter_map(|op| match op {
                    CompiledOp::Site(id) => Some(*id),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sites(&fused), sites(&unfused));
    }

    #[test]
    fn fused_and_unfused_states_agree() {
        let nc = noisy_bell(0.2);
        let fused = compile::<f64>(&nc).unwrap();
        let unfused = compile_with::<f64>(&nc, false).unwrap();
        let mut choices = nc.identity_assignment().unwrap();
        choices[1] = 2;
        let (a, pa) = prepare(&fused, &choices);
        let (b, pb) = prepare(&unfused, &choices);
        assert_eq!(pa.to_bits(), pb.to_bits(), "branch probs are exact");
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f32_backend_consistent() {
        let nc = noisy_bell(0.15);
        let ident = nc.identity_assignment().unwrap();
        let (sv64, p64) = prepare_with_assignment::<f64>(&nc, &ident).unwrap();
        let (sv32, p32) = prepare_with_assignment::<f32>(&nc, &ident).unwrap();
        assert!((p64 - p32).abs() < 1e-6);
        for i in 0..4 {
            assert!((sv64.probability(i).to_f64() - sv32.probability(i).to_f64()).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn assignment_length_enforced() {
        let nc = noisy_bell(0.1);
        let compiled = compile::<f64>(&nc).unwrap();
        let _ = prepare(&compiled, &[0]);
    }
}
