//! Multi-threaded statevector simulator — the CPU stand-in for CUDA-Q's
//! `nvidia` backend.
//!
//! Everything PTSBE needs from a statevector backend is here:
//!
//! - [`state::StateVector`] — `2^n` complex amplitudes (generic over
//!   `f32`/`f64`; the paper uses `complex64`, i.e. `f32` pairs) with
//!   rayon-parallel 1-/2-/k-qubit gate kernels and permutation fast paths
//!   for CX/CZ/SWAP;
//! - [`batch::StateBatch`] — batch-major execution: `B` trajectory states
//!   in split re/im amplitude planes (structure-of-arrays), each fused
//!   kernel swept across all `B` lanes at once with lane-contiguous
//!   shuffle-free inner loops, bit-identical per lane to the scalar
//!   kernels;
//! - [`kernels`] — the pluggable run-kernel dispatch seam behind the
//!   batch sweeps ([`kernels::BatchKernels`]): scalar-reference,
//!   SoA-autovec, and AVX2/FMA implementations selected at batch
//!   construction (`PTSBE_BATCH_KERNELS` overrides);
//! - [`sampling`] — the *bulk* shot sampler: O(2^n + m) sorted-uniform
//!   merge or O(1)-per-shot alias table, the polynomial-cost step whose
//!   amortization over `m_α` shots is the entire point of Batched
//!   Execution (paper §3: "sampling all m_α desired quantum bitstrings at
//!   once, a task of mere polynomial complexity");
//! - [`kraus`] — one-pass evaluation of state-dependent Kraus branch
//!   probabilities `⟨ψ|K†K|ψ⟩` (Algorithm 1, line 9) and normalized
//!   application of a chosen branch;
//! - [`exec`] — circuit execution: pure circuits, and noisy circuits under
//!   a *fixed* trajectory assignment (the BE half of PTSBE).
//!
//! Parallelism: kernels switch to rayon data-parallel loops above
//! [`PARALLEL_THRESHOLD_QUBITS`]; the caller controls the thread budget by
//! running inside a configured `rayon::ThreadPool` (this substitutes for
//! the paper's intra-trajectory multi-GPU distribution).

pub mod batch;
pub mod exec;
pub mod kernels;
pub mod kraus;
pub mod sampling;
pub mod state;

pub use batch::{advance_batch, StateBatch};
pub use exec::{prepare_with_assignment, run_pure, ExecError};
pub use kernels::{BatchKernels, KernelImpl};
pub use sampling::SamplingStrategy;
pub use state::StateVector;

/// Below this many qubits the gate kernels stay serial: thread fan-out
/// costs more than the whole sweep.
pub const PARALLEL_THRESHOLD_QUBITS: usize = 14;
