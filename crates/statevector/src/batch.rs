//! Batch-major statevector execution: `B` trajectory states in split
//! re/im amplitude planes, every gate applied across all lanes per sweep.
//!
//! [`StateBatch`] stores the amplitudes of `B` trajectory states
//! *structure-of-arrays twice over*: amplitude-major across trajectories
//! **and** split into separate real and imaginary planes —
//! `re[i * B + lane]` / `im[i * B + lane]` hold amplitude `i` of lane
//! `lane`. A gate kernel walks the amplitude pairs exactly once and
//! processes all `B` lanes of each pair in contiguous inner loops over
//! the two planes. The split layout is what qsim-style simulators use to
//! saturate FMA units: complex arithmetic over split planes is pure
//! mul/`mul_add` chains with no re/im shuffles, so the compiler (or the
//! explicit AVX2 path) lowers it straight to packed FMA.
//!
//! The *arithmetic* for each contiguous run lives behind the
//! [`crate::kernels::BatchKernels`] dispatch trait (scalar-reference /
//! SoA-autovec / SoA-simd, chosen at construction, forced via
//! `PTSBE_BATCH_KERNELS`); this module owns the *geometry* — which runs
//! of the planes a gate touches, chunking, and the rayon fan-out. A
//! GPU/accelerator backend can slot in as another `BatchKernels`
//! implementation without touching [`advance_batch`] or the executors.
//!
//! Bitwise contract: every kernel routes its per-lane arithmetic through
//! the same parts-level helpers ([`ptsbe_math::cplx_mul_parts`] /
//! [`ptsbe_math::cplx_mul_add_parts`]) as the scalar
//! [`crate::state::StateVector`] kernels, with the same operand order
//! and the same 4096-amplitude block grouping for norm accumulation. A
//! lane of a [`StateBatch`] advanced through [`advance_batch`] is
//! therefore bit-identical to a [`StateVector`] advanced through
//! [`crate::exec::advance`] under the same assignment — for *all three*
//! kernel implementations — the property `tests/batch_pool_equivalence`
//! and `tests/proptest_batch_kernels` enforce end-to-end.

use ptsbe_math::{cplx_mul_parts, Complex, Matrix, Scalar};
use rayon::prelude::*;
use std::ops::Range;

use crate::exec::{Compiled, CompiledOp};
use crate::kernels::{dispatch, BatchKernels, KernelImpl, LaneMats2, LaneMats4};
use crate::kraus::apply_kraus_normalized;
use crate::state::{local_2q_matrix, local_2q_perm, StateVector};
use crate::PARALLEL_THRESHOLD_QUBITS;

/// Rows per chunk for row-sweep operations (normalization).
const ROWS_PER_CHUNK: usize = 1 << 12;

/// `B` pure states of `n` qubits in split re/im amplitude planes.
#[derive(Clone, Debug)]
pub struct StateBatch<T: Scalar> {
    n_qubits: usize,
    n_lanes: usize,
    /// `re[i * n_lanes + lane]` = real part of amplitude `i`, lane `lane`.
    re: Vec<T>,
    /// Imaginary plane, same indexing.
    im: Vec<T>,
    /// Whether sweeps fan out over rayon, decided once at construction —
    /// `current_num_threads()` costs a syscall, far too hot for per-op.
    use_par: bool,
    /// Which kernel implementation processes runs (resolved, never a
    /// SIMD request on a machine that can't run it).
    kernels: KernelImpl,
}

impl<T: Scalar> StateBatch<T> {
    /// `B` copies of `|0…0⟩` with the default kernel implementation
    /// ([`KernelImpl::auto`]: `PTSBE_BATCH_KERNELS` when set, else SIMD
    /// where supported).
    ///
    /// # Panics
    /// Panics on zero lanes or more than 48 qubits (same guard as
    /// [`StateVector::zero_state`]).
    pub fn zero_states(n_qubits: usize, n_lanes: usize) -> Self {
        Self::zero_states_with(n_qubits, n_lanes, KernelImpl::auto())
    }

    /// [`StateBatch::zero_states`] with an explicit kernel
    /// implementation (downgraded via [`KernelImpl::resolve`] when the
    /// machine can't run it).
    pub fn zero_states_with(n_qubits: usize, n_lanes: usize, kernels: KernelImpl) -> Self {
        let mut batch = Self {
            n_qubits: 0,
            n_lanes: 0,
            re: Vec::new(),
            im: Vec::new(),
            use_par: false,
            kernels: kernels.resolve(),
        };
        batch.reinit(n_qubits, n_lanes);
        batch
    }

    /// Reset to `B` copies of `|0…0⟩` of the given shape, reusing the
    /// plane allocations when capacity allows (the pool-recycling path).
    /// Every element of both planes is overwritten, so a recycled batch
    /// can never leak a previous group's amplitudes.
    ///
    /// # Panics
    /// Same guards as [`StateBatch::zero_states`].
    pub fn reinit(&mut self, n_qubits: usize, n_lanes: usize) {
        assert!(n_lanes > 0, "a batch needs at least one lane");
        assert!(
            n_qubits <= 48,
            "statevector of {n_qubits} qubits is not addressable"
        );
        let len = (1usize << n_qubits) * n_lanes;
        self.re.clear();
        self.re.resize(len, T::ZERO);
        self.im.clear();
        self.im.resize(len, T::ZERO);
        self.re[..n_lanes].fill(T::ONE);
        self.n_qubits = n_qubits;
        self.n_lanes = n_lanes;
        self.use_par =
            len >= 1usize << PARALLEL_THRESHOLD_QUBITS && rayon::current_num_threads() > 1;
    }

    /// Number of qubits per lane.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes (trajectory states).
    pub fn n_lanes(&self) -> usize {
        self.n_lanes
    }

    /// Which kernel implementation this batch dispatches to.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.kernels
    }

    /// The raw split planes `(re, im)`, both indexed
    /// `[amp_index * n_lanes + lane]` (tests and transposition code).
    pub fn planes(&self) -> (&[T], &[T]) {
        (&self.re, &self.im)
    }

    /// Amplitude `i` of lane `lane`.
    #[inline]
    pub fn amplitude(&self, lane: usize, i: usize) -> Complex<T> {
        let j = i * self.n_lanes + lane;
        Complex::new(self.re[j], self.im[j])
    }

    /// Gather one lane into a contiguous [`StateVector`], reusing `dst`'s
    /// allocation (the bulk samplers and the scalar Kraus fallback both
    /// want contiguous interleaved amplitudes).
    pub fn extract_lane_into(&self, lane: usize, dst: &mut StateVector<T>) {
        assert!(lane < self.n_lanes);
        // The gather overwrites every element; only reshape (and pay the
        // zero fill) when the destination has the wrong size.
        if dst.n_qubits() != self.n_qubits || dst.amplitudes().len() != 1usize << self.n_qubits {
            dst.reinit(self.n_qubits);
        }
        let b = self.n_lanes;
        for (i, d) in dst.amplitudes_mut().iter_mut().enumerate() {
            let j = i * b + lane;
            *d = Complex::new(self.re[j], self.im[j]);
        }
    }

    /// Scatter a contiguous state back into one lane (inverse of
    /// [`StateBatch::extract_lane_into`]).
    pub fn load_lane(&mut self, lane: usize, src: &StateVector<T>) {
        assert!(lane < self.n_lanes);
        assert_eq!(src.n_qubits(), self.n_qubits, "lane shape mismatch");
        let b = self.n_lanes;
        for (i, s) in src.amplitudes().iter().enumerate() {
            let j = i * b + lane;
            self.re[j] = s.re;
            self.im[j] = s.im;
        }
    }

    /// The resolved run-kernel implementation.
    #[inline]
    fn kern(&self) -> &'static dyn BatchKernels<T> {
        dispatch(self.kernels)
    }

    // ----- sweep drivers ------------------------------------------------
    //
    // All gate kernels are built from sweeps over the amplitude-row axis
    // (a "row" = the `B` contiguous lane values of one amplitude index,
    // split across the two planes). Uniform (same-matrix-every-lane)
    // sweeps flatten the lane axis away entirely: the elements a 1-qubit
    // gate pairs sit `2^q · B` apart, so whole runs of `2^q · B`
    // contiguous plane elements feed one kernel call. Per-lane sweeps
    // (Kraus branch points) keep the row structure to know which lane
    // they are in. Gate kernels are per-amplitude independent, so
    // chunking never changes their values — parallelism can follow the
    // thread budget (sampled once at construction). Rayon splits at
    // chunk boundaries, so parallel and serial sweeps hand identical
    // element groups to identical kernel calls.

    /// Apply `f(re_chunk, im_chunk)` to matching plane chunks of
    /// `chunk` elements each.
    fn for_chunks<F>(&mut self, chunk: usize, f: F)
    where
        F: Fn(&mut [T], &mut [T]) + Sync + Send,
    {
        if self.use_par {
            let pairs: Vec<(&mut [T], &mut [T])> = self
                .re
                .chunks_mut(chunk)
                .zip(self.im.chunks_mut(chunk))
                .collect();
            pairs.into_par_iter().for_each(|(r, i)| f(r, i));
        } else {
            for (r, i) in self.re.chunks_mut(chunk).zip(self.im.chunks_mut(chunk)) {
                f(r, i);
            }
        }
    }

    /// [`StateBatch::for_chunks`] with the chunk index.
    fn for_chunks_enumerated<F>(&mut self, chunk: usize, f: F)
    where
        F: Fn(usize, &mut [T], &mut [T]) + Sync + Send,
    {
        if self.use_par {
            let pairs: Vec<(&mut [T], &mut [T])> = self
                .re
                .chunks_mut(chunk)
                .zip(self.im.chunks_mut(chunk))
                .collect();
            pairs
                .into_par_iter()
                .enumerate()
                .for_each(|(ci, (r, i))| f(ci, r, i));
        } else {
            for (ci, (r, i)) in self
                .re
                .chunks_mut(chunk)
                .zip(self.im.chunks_mut(chunk))
                .enumerate()
            {
                f(ci, r, i);
            }
        }
    }

    // ----- gate kernels -------------------------------------------------

    /// Dense single-qubit gate, same matrix on every lane.
    pub fn apply_1q(&mut self, m: &Matrix<T>, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert_eq!((m.rows(), m.cols()), (2, 2));
        let e = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
        let er = e.map(|z| z.re);
        let ei = e.map(|z| z.im);
        let half = (1usize << q) * self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * half, move |re, im| {
            let (lo_re, hi_re) = re.split_at_mut(half);
            let (lo_im, hi_im) = im.split_at_mut(half);
            kern.mat2_run(&er, &ei, (lo_re, lo_im), (hi_re, hi_im));
        });
    }

    /// Per-lane dense single-qubit application (shared by the public
    /// masked/unmasked entry points).
    fn apply_1q_lanes_inner(&mut self, es: &[[Complex<T>; 4]], skip: Option<&[bool]>, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert_eq!(es.len(), self.n_lanes);
        if let Some(s) = skip {
            assert_eq!(s.len(), self.n_lanes);
        }
        let lm = LaneMats2::from_entries(es);
        let skip: Option<Vec<bool>> = skip.map(<[bool]>::to_vec);
        let half = (1usize << q) * self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * half, move |re, im| {
            let (lo_re, hi_re) = re.split_at_mut(half);
            let (lo_im, hi_im) = im.split_at_mut(half);
            kern.mat2_lanes_run(&lm, skip.as_deref(), (lo_re, lo_im), (hi_re, hi_im));
        });
    }

    /// Dense single-qubit gate with one matrix per lane (Kraus branch
    /// points where lanes chose different branches). `es[lane]` holds the
    /// row-major entries `[m00, m01, m10, m11]`.
    pub fn apply_1q_lanes(&mut self, es: &[[Complex<T>; 4]], q: usize) {
        self.apply_1q_lanes_inner(es, None, q);
    }

    /// [`StateBatch::apply_1q_lanes`] with a skip mask: lanes whose flag
    /// is set pass through untouched. This is how diverging Kraus branch
    /// points honor the exact-identity skip — a skipped lane's amplitudes
    /// keep their exact bits (applying an identity matrix would not:
    /// `0·x` terms can flip signed zeros), matching the scalar path that
    /// elides the same branch.
    pub fn apply_1q_lanes_masked(&mut self, es: &[[Complex<T>; 4]], skip: &[bool], q: usize) {
        self.apply_1q_lanes_inner(es, Some(skip), q);
    }

    /// Dense two-qubit gate, same matrix on every lane (gate basis
    /// `(bit_a << 1) | bit_b`).
    pub fn apply_2q(&mut self, m: &Matrix<T>, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        assert_eq!((m.rows(), m.cols()), (4, 4));
        let (mr, mi) = split_mat4(&local_2q_matrix(m, a, b));
        let (sh, sl) = (1usize << a.max(b), 1usize << a.min(b));
        let bl = self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * sh * bl, move |re, im| {
            let mut base = 0usize;
            while base < sh {
                let [r0, r1, r2, r3] = quad_runs(re, base, sh, sl, bl);
                let [i0, i1, i2, i3] = quad_runs(im, base, sh, sl, bl);
                kern.mat4_run(&mr, &mi, [(r0, i0), (r1, i1), (r2, i2), (r3, i3)]);
                base += 2 * sl;
            }
        });
    }

    /// Per-lane dense two-qubit application (shared by the public
    /// masked/unmasked entry points).
    fn apply_2q_lanes_inner(
        &mut self,
        mms: &[[[Complex<T>; 4]; 4]],
        skip: Option<&[bool]>,
        a: usize,
        b: usize,
    ) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        assert_eq!(mms.len(), self.n_lanes);
        if let Some(s) = skip {
            assert_eq!(s.len(), self.n_lanes);
        }
        let lm = LaneMats4::from_mats(mms);
        let skip: Option<Vec<bool>> = skip.map(<[bool]>::to_vec);
        let (sh, sl) = (1usize << a.max(b), 1usize << a.min(b));
        let bl = self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * sh * bl, move |re, im| {
            let mut base = 0usize;
            while base < sh {
                let [r0, r1, r2, r3] = quad_runs(re, base, sh, sl, bl);
                let [i0, i1, i2, i3] = quad_runs(im, base, sh, sl, bl);
                kern.mat4_lanes_run(
                    &lm,
                    skip.as_deref(),
                    [(r0, i0), (r1, i1), (r2, i2), (r3, i3)],
                );
                base += 2 * sl;
            }
        });
    }

    /// Dense two-qubit gate with one matrix per lane; `mms[lane]` must
    /// already be in local `[hl]` order (see
    /// [`crate::state::local_2q_matrix`] via [`localize_2q`]).
    pub fn apply_2q_lanes(&mut self, mms: &[[[Complex<T>; 4]; 4]], a: usize, b: usize) {
        self.apply_2q_lanes_inner(mms, None, a, b);
    }

    /// [`StateBatch::apply_2q_lanes`] with a skip mask (see
    /// [`StateBatch::apply_1q_lanes_masked`]).
    pub fn apply_2q_lanes_masked(
        &mut self,
        mms: &[[[Complex<T>; 4]; 4]],
        skip: &[bool],
        a: usize,
        b: usize,
    ) {
        self.apply_2q_lanes_inner(mms, Some(skip), a, b);
    }

    /// Diagonal single-qubit fast path (pure phase multiply). The factor
    /// is constant over each `2^q · B` run, so the sweep is two flat
    /// plane scalings per pair block.
    pub fn apply_diag_1q(&mut self, d: &[Complex<T>; 2], q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let (d0, d1) = ((d[0].re, d[0].im), (d[1].re, d[1].im));
        let half = (1usize << q) * self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * half, move |re, im| {
            let (lo_re, hi_re) = re.split_at_mut(half);
            let (lo_im, hi_im) = im.split_at_mut(half);
            kern.cmul_run(d0, (lo_re, lo_im));
            kern.cmul_run(d1, (hi_re, hi_im));
        });
    }

    /// Diagonal two-qubit fast path, gate basis `(bit_a << 1) | bit_b`.
    pub fn apply_diag_2q(&mut self, d: &[Complex<T>; 4], a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        // Remap to local [hl] run order (h = high-qubit bit, l = low).
        let qh = a.max(b);
        let pick = |h: usize, l: usize| {
            let bit_a = if a == qh { h } else { l };
            let bit_b = if b == qh { h } else { l };
            let z = d[(bit_a << 1) | bit_b];
            (z.re, z.im)
        };
        let ld = [pick(0, 0), pick(0, 1), pick(1, 0), pick(1, 1)];
        let (sh, sl) = (1usize << a.max(b), 1usize << a.min(b));
        let bl = self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * sh * bl, move |re, im| {
            let mut base = 0usize;
            while base < sh {
                let rr = quad_runs(re, base, sh, sl, bl);
                let ri = quad_runs(im, base, sh, sl, bl);
                for (k, (r, i)) in rr.into_iter().zip(ri).enumerate() {
                    kern.cmul_run(ld[k], (r, i));
                }
                base += 2 * sl;
            }
        });
    }

    /// Single-qubit permutation fast path:
    /// `out[r] = phase[r] * in[perm[r]]` in the qubit's local basis.
    pub fn apply_perm_1q(&mut self, perm: &[usize; 2], phase: &[Complex<T>; 2], q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert!(perm[0] < 2 && perm[1] < 2);
        let perm = *perm;
        let phr = phase.map(|z| z.re);
        let phi = phase.map(|z| z.im);
        let half = (1usize << q) * self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * half, move |re, im| {
            let (lo_re, hi_re) = re.split_at_mut(half);
            let (lo_im, hi_im) = im.split_at_mut(half);
            kern.perm2_run(&perm, &phr, &phi, (lo_re, lo_im), (hi_re, hi_im));
        });
    }

    /// Two-qubit permutation fast path, gate basis `(bit_a << 1) | bit_b`.
    pub fn apply_perm_2q(
        &mut self,
        perm: &[usize; 4],
        phase: &[Complex<T>; 4],
        a: usize,
        b: usize,
    ) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        assert!(perm.iter().all(|&p| p < 4));
        let (lperm, lphase) = local_2q_perm(perm, phase, a, b);
        let phr = lphase.map(|z| z.re);
        let phi = lphase.map(|z| z.im);
        let (sh, sl) = (1usize << a.max(b), 1usize << a.min(b));
        let bl = self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * sh * bl, move |re, im| {
            let mut base = 0usize;
            while base < sh {
                let [r0, r1, r2, r3] = quad_runs(re, base, sh, sl, bl);
                let [i0, i1, i2, i3] = quad_runs(im, base, sh, sl, bl);
                kern.perm4_run(&lperm, &phr, &phi, [(r0, i0), (r1, i1), (r2, i2), (r3, i3)]);
                base += 2 * sl;
            }
        });
    }

    /// CNOT fast path (row swaps, no arithmetic — pure plane memmoves,
    /// identical under every kernel implementation).
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        let cm = 1usize << control;
        let tm = 1usize << target;
        self.swap_rows_where(target.max(control), move |g| g & cm != 0 && g & tm == 0, tm);
    }

    /// SWAP fast path.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        let am = 1usize << a;
        let bm = 1usize << b;
        // Swap |…a=1…b=0…⟩ with |…a=0…b=1…⟩: offset −am+bm, guarded to
        // rows where it is positive by the predicate.
        self.swap_rows_where(
            a.max(b),
            move |g| g & am != 0 && g & bm == 0,
            bm.wrapping_sub(am),
        );
    }

    /// Swap each row `g` satisfying `pred` with row `g + offset`
    /// (wrapping add; callers guarantee the partner lies in the same
    /// `2·sh`-row chunk, as in the scalar fast paths).
    fn swap_rows_where<P>(&mut self, qh: usize, pred: P, offset: usize)
    where
        P: Fn(usize) -> bool + Sync + Send,
    {
        let b = self.n_lanes;
        let sh = 1usize << qh;
        self.for_chunks_enumerated(2 * sh * b, move |ci, re, im| {
            let chunk_base = ci * 2 * sh;
            let rows = re.len() / b;
            for r in 0..rows {
                if pred(chunk_base + r) {
                    let j = r.wrapping_add(offset);
                    let (lo, hi) = (r.min(j), r.max(j));
                    swap_row_pair(re, lo, hi, b);
                    swap_row_pair(im, lo, hi, b);
                }
            }
        });
    }

    /// CZ fast path (sign flip on the doubly-set quarter — local quad
    /// position `[h1l1]`).
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        let (sh, sl) = (1usize << a.max(b), 1usize << a.min(b));
        let bl = self.n_lanes;
        let kern = self.kern();
        self.for_chunks(2 * sh * bl, move |re, im| {
            let mut base = 0usize;
            while base < sh {
                let [_, _, _, r3] = quad_runs(re, base, sh, sl, bl);
                let [_, _, _, i3] = quad_runs(im, base, sh, sl, bl);
                kern.neg_run((r3, i3));
                base += 2 * sl;
            }
        });
    }

    /// General `k`-qubit gather kernel, same matrix on every lane
    /// (Toffoli and compiled multi-qubit unitaries). Mirrors
    /// [`StateVector::apply_kq`]'s enumeration and accumulation order
    /// (plain multiply + add per term, *not* fused), widened over the
    /// lane axis: each of the `2^k` gathered rows is a contiguous
    /// `B`-element slice of each plane.
    pub fn apply_kq(&mut self, m: &Matrix<T>, qubits: &[usize]) {
        let k = qubits.len();
        assert!((1..=16).contains(&k), "apply_kq supports 1..=16 qubits");
        assert_eq!(m.rows(), 1usize << k);
        for &q in qubits {
            assert!(q < self.n_qubits);
        }
        if k == 1 {
            return self.apply_1q(m, qubits[0]);
        }
        if k == 2 {
            return self.apply_2q(m, qubits[0], qubits[1]);
        }
        let mut sorted_buf = [0usize; 16];
        sorted_buf[..k].copy_from_slice(qubits);
        sorted_buf[..k].sort_unstable();
        let sorted: &[usize] = &sorted_buf[..k];
        let dim = 1usize << k;
        let mut offsets = vec![0usize; dim];
        for (g, slot) in offsets.iter_mut().enumerate() {
            let mut off = 0usize;
            for (t, &q) in qubits.iter().enumerate() {
                let bit = (g >> (k - 1 - t)) & 1;
                off |= bit << q;
            }
            *slot = off;
        }
        let qh = *sorted.last().unwrap();
        let sh = 1usize << qh;
        let b = self.n_lanes;
        let offsets = &offsets;
        // Split the matrix once; the inner accumulation reads plane
        // scalars, not Complex values.
        let dimsq = dim * dim;
        let mut mrv = vec![T::ZERO; dimsq];
        let mut miv = vec![T::ZERO; dimsq];
        for r in 0..dim {
            for c in 0..dim {
                let z = m[(r, c)];
                mrv[r * dim + c] = z.re;
                miv[r * dim + c] = z.im;
            }
        }
        let (mrv, miv) = (&mrv, &miv);
        self.for_chunks(2 * sh * b, move |chunk_re, chunk_im| {
            let free_bits = (qh + 1) - k;
            let n_groups = 1usize << free_bits;
            // Gather buffers: row-contiguous SoA copies of the 2^k rows
            // a group combines, plus one output row accumulator.
            let mut xr = vec![T::ZERO; dim * b];
            let mut xi = vec![T::ZERO; dim * b];
            let mut accr = vec![T::ZERO; b];
            let mut acci = vec![T::ZERO; b];
            for gidx in 0..n_groups {
                // Expand gidx by inserting 0 at each gate-qubit position.
                let mut base = 0usize;
                let mut src = gidx;
                let mut qi = 0usize;
                for pos in 0..=qh {
                    if qi < sorted.len() && sorted[qi] == pos {
                        qi += 1;
                        continue;
                    }
                    base |= (src & 1) << pos;
                    src >>= 1;
                }
                for (g, &off) in offsets.iter().enumerate() {
                    let s = (base + off) * b;
                    xr[g * b..(g + 1) * b].copy_from_slice(&chunk_re[s..s + b]);
                    xi[g * b..(g + 1) * b].copy_from_slice(&chunk_im[s..s + b]);
                }
                for (r, &off) in offsets.iter().enumerate() {
                    accr.fill(T::ZERO);
                    acci.fill(T::ZERO);
                    for c in 0..dim {
                        let (er, ei) = (mrv[r * dim + c], miv[r * dim + c]);
                        let (col_r, col_i) = (&xr[c * b..(c + 1) * b], &xi[c * b..(c + 1) * b]);
                        for j in 0..b {
                            let (tr, ti) = cplx_mul_parts(er, ei, col_r[j], col_i[j]);
                            accr[j] += tr;
                            acci[j] += ti;
                        }
                    }
                    let s = (base + off) * b;
                    chunk_re[s..s + b].copy_from_slice(&accr);
                    chunk_im[s..s + b].copy_from_slice(&acci);
                }
            }
        });
    }

    // ----- per-lane norms -----------------------------------------------

    /// Per-lane `⟨ψ|ψ⟩`, accumulated in the same 4096-amplitude block
    /// grouping (and the same precision `T`) as
    /// [`StateVector::norm_sqr`], so a lane's norm is bit-identical to
    /// the scalar path's.
    pub fn norm_sqr_lanes(&self, out: &mut [T]) {
        assert_eq!(out.len(), self.n_lanes);
        let b = self.n_lanes;
        let n_amps = 1usize << self.n_qubits;
        let block = if self.n_qubits >= PARALLEL_THRESHOLD_QUBITS {
            4096
        } else {
            n_amps
        };
        let kern = self.kern();
        out.fill(T::ZERO);
        let mut block_sum = vec![T::ZERO; b];
        for (rows_re, rows_im) in self.re.chunks(block * b).zip(self.im.chunks(block * b)) {
            block_sum.fill(T::ZERO);
            kern.norm_acc_rows(rows_re, rows_im, b, &mut block_sum);
            for (o, s) in out.iter_mut().zip(&block_sum) {
                *o += *s;
            }
        }
    }

    /// Normalize each lane given its pre-computed squared norm
    /// (zero-norm lanes are left untouched, like
    /// [`StateVector::normalize`]).
    pub fn normalize_lanes(&mut self, n2: &[T]) {
        assert_eq!(n2.len(), self.n_lanes);
        // Scaling by exactly 1 is a bitwise no-op for finite values, so
        // zero-norm lanes ride the same branch-free sweep.
        let inv: Vec<T> = n2
            .iter()
            .map(|&n| {
                if n > T::ZERO {
                    T::ONE / n.sqrt()
                } else {
                    T::ONE
                }
            })
            .collect();
        let b = self.n_lanes;
        let kern = self.kern();
        self.for_chunks(ROWS_PER_CHUNK * b, move |re, im| {
            kern.scale_rows((re, im), b, &inv);
        });
    }
}

/// The four `sl · B`-element runs of one quad group starting at row
/// `base` (rows `base`, `base+sl`, `base+sh`, `base+sh+sl`) within a
/// `2·sh`-row plane chunk.
#[inline]
fn quad_runs<T>(plane: &mut [T], base: usize, sh: usize, sl: usize, b: usize) -> [&mut [T]; 4] {
    let run = sl * b;
    let rest = &mut plane[base * b..];
    let (r00, tail) = rest.split_at_mut(run);
    let (r01, tail) = tail.split_at_mut(run);
    let tail = &mut tail[(sh - 2 * sl) * b..];
    let (r10, tail) = tail.split_at_mut(run);
    let r11 = &mut tail[..run];
    [r00, r01, r10, r11]
}

/// Swap the `b`-element rows `lo` and `hi` (`lo < hi`) of one plane.
#[inline]
fn swap_row_pair<T>(plane: &mut [T], lo: usize, hi: usize, b: usize) {
    let (head, tail) = plane.split_at_mut(hi * b);
    head[lo * b..lo * b + b].swap_with_slice(&mut tail[..b]);
}

/// Split a localized complex 4×4 into real/imaginary entry matrices.
fn split_mat4<T: Scalar>(mm: &[[Complex<T>; 4]; 4]) -> ([[T; 4]; 4], [[T; 4]; 4]) {
    let mr = mm.map(|row| row.map(|z| z.re));
    let mi = mm.map(|row| row.map(|z| z.im));
    (mr, mi)
}

/// Localize a two-qubit matrix for [`StateBatch::apply_2q_lanes`].
pub fn localize_2q<T: Scalar>(m: &Matrix<T>, a: usize, b: usize) -> [[Complex<T>; 4]; 4] {
    local_2q_matrix(m, a, b)
}

// ---------------------------------------------------------------------------
// Batch-major circuit execution

/// Advance all lanes of a batch through segments
/// `segments.start..segments.end`, resolving each fired noise site
/// through that lane's assignment (`choices[lane][site_id]`), and
/// multiply each lane's realized partial probability into
/// `realized[lane]` — the batch-major analog of
/// [`crate::exec::advance`], bit-identical per lane.
///
/// # Panics
/// Panics when lane counts disagree, the segment range is out of bounds,
/// or an assignment does not cover the sites its lane fires.
pub fn advance_batch<T: Scalar>(
    compiled: &Compiled<T>,
    batch: &mut StateBatch<T>,
    segments: Range<usize>,
    choices: &[&[usize]],
    realized: &mut [f64],
) {
    assert_eq!(
        batch.n_qubits(),
        compiled.n_qubits(),
        "qubit count mismatch"
    );
    assert_eq!(choices.len(), batch.n_lanes(), "one assignment per lane");
    assert_eq!(realized.len(), batch.n_lanes(), "one weight per lane");
    assert!(
        segments.end <= compiled.n_segments(),
        "segment range {segments:?} exceeds {} segments",
        compiled.n_segments()
    );
    let fired = segments.end.min(compiled.sites().len());
    for c in choices {
        assert!(
            c.len() >= fired,
            "assignment length {} does not cover sites fired by segments {segments:?}",
            c.len()
        );
    }
    if segments.is_empty() {
        return;
    }
    let b = batch.n_lanes();
    let mut n2 = vec![T::ZERO; b];
    for op in compiled.segment_ops(segments) {
        match op {
            CompiledOp::G1(m, q) => batch.apply_1q(m, *q),
            CompiledOp::G2(m, a, bq) => batch.apply_2q(m, *a, *bq),
            CompiledOp::D1(d, q) => batch.apply_diag_1q(d, *q),
            CompiledOp::D2(d, a, bq) => batch.apply_diag_2q(d, *a, *bq),
            CompiledOp::P1(p, ph, q) => batch.apply_perm_1q(p, ph, *q),
            CompiledOp::P2(p, ph, a, bq) => batch.apply_perm_2q(p, ph, *a, *bq),
            CompiledOp::Cx(c, t) => batch.apply_cx(*c, *t),
            CompiledOp::Cz(a, bq) => batch.apply_cz(*a, *bq),
            CompiledOp::Swap(a, bq) => batch.apply_swap(*a, *bq),
            CompiledOp::Gk(m, qs) => batch.apply_kq(m, qs),
            CompiledOp::Site(id) => {
                let site = &compiled.sites()[*id];
                let k0 = choices[0][*id];
                let uniform = choices.iter().all(|c| c[*id] == k0);
                if site.qubits.len() > 2 {
                    // Arity ≥ 3 sites take the scalar path per lane (the
                    // noise-model zoo never produces them; correctness
                    // beats speed on this branch).
                    apply_site_via_scalar(compiled, batch, *id, choices, realized);
                    continue;
                }
                if site.is_unitary_mixture {
                    for (r, c) in realized.iter_mut().zip(choices) {
                        *r *= site.probs[c[*id]];
                    }
                    // A uniformly skippable branch (the low-noise common
                    // case: every lane drew the identity) elides the
                    // whole sweep; divergent groups skip per lane inside
                    // the masked kernels.
                    if !(uniform && site.skips(k0)) {
                        apply_site_mats(batch, site, choices, *id, uniform, k0);
                    }
                } else {
                    apply_site_mats(batch, site, choices, *id, uniform, k0);
                    batch.norm_sqr_lanes(&mut n2);
                    for (r, n) in realized.iter_mut().zip(&n2) {
                        *r *= n.to_f64();
                    }
                    batch.normalize_lanes(&n2);
                }
            }
        }
    }
}

/// Apply each lane's chosen branch matrix of a 1-/2-qubit site.
fn apply_site_mats<T: Scalar>(
    batch: &mut StateBatch<T>,
    site: &crate::exec::CompiledSite<T>,
    choices: &[&[usize]],
    id: usize,
    uniform: bool,
    k0: usize,
) {
    match site.qubits.as_slice() {
        [q] => {
            if uniform {
                batch.apply_1q(&site.mats[k0], *q);
            } else {
                let es: Vec<[Complex<T>; 4]> = choices
                    .iter()
                    .map(|c| {
                        let m = &site.mats[c[id]];
                        [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]
                    })
                    .collect();
                let skip: Vec<bool> = choices.iter().map(|c| site.skips(c[id])).collect();
                if skip.iter().any(|&s| s) {
                    batch.apply_1q_lanes_masked(&es, &skip, *q);
                } else {
                    batch.apply_1q_lanes(&es, *q);
                }
            }
        }
        [a, b] => {
            if uniform {
                batch.apply_2q(&site.mats[k0], *a, *b);
            } else {
                let mms: Vec<[[Complex<T>; 4]; 4]> = choices
                    .iter()
                    .map(|c| local_2q_matrix(&site.mats[c[id]], *a, *b))
                    .collect();
                let skip: Vec<bool> = choices.iter().map(|c| site.skips(c[id])).collect();
                if skip.iter().any(|&s| s) {
                    batch.apply_2q_lanes_masked(&mms, &skip, *a, *b);
                } else {
                    batch.apply_2q_lanes(&mms, *a, *b);
                }
            }
        }
        _ => unreachable!("arity > 2 handled by the scalar fallback"),
    }
}

/// Scalar-path fallback for ≥3-qubit sites: extract each lane, run the
/// exact scalar site application, scatter back.
fn apply_site_via_scalar<T: Scalar>(
    compiled: &Compiled<T>,
    batch: &mut StateBatch<T>,
    id: usize,
    choices: &[&[usize]],
    realized: &mut [f64],
) {
    let site = &compiled.sites()[id];
    let mut scratch = StateVector::zero_state(0);
    for (lane, (c, r)) in choices.iter().zip(realized.iter_mut()).enumerate() {
        let k = c[id];
        if site.is_unitary_mixture {
            *r *= site.probs[k];
            if site.skip_identity[k] {
                continue; // exact identity: the lane keeps its bits
            }
            batch.extract_lane_into(lane, &mut scratch);
            scratch.apply_kq(&site.mats[k], &site.qubits);
        } else {
            batch.extract_lane_into(lane, &mut scratch);
            *r *= apply_kraus_normalized(&mut scratch, &site.mats[k], &site.qubits);
        }
        batch.load_lane(lane, &scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{compile, prepare};
    use ptsbe_circuit::{channels, Circuit, NoiseModel};
    use ptsbe_math::gates;

    type Sv = StateVector<f64>;

    /// Distinct random product-ish states, one per lane, mirrored into a
    /// batch and a per-lane scalar vector.
    fn mirrored(n: usize, lanes: usize, seed: u64) -> (StateBatch<f64>, Vec<Sv>) {
        mirrored_with(n, lanes, seed, KernelImpl::auto())
    }

    fn mirrored_with(
        n: usize,
        lanes: usize,
        seed: u64,
        kernels: KernelImpl,
    ) -> (StateBatch<f64>, Vec<Sv>) {
        let mut rng = ptsbe_rng::PhiloxRng::new(seed, 0);
        let mut batch = StateBatch::zero_states_with(n, lanes, kernels);
        let mut svs = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let mut sv = Sv::zero_state(n);
            for q in 0..n {
                let u = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
                sv.apply_1q(&u, q);
            }
            for q in 0..n - 1 {
                sv.apply_cx(q, q + 1);
            }
            batch.load_lane(lane, &sv);
            svs.push(sv);
        }
        (batch, svs)
    }

    fn assert_lanes_bitwise(batch: &StateBatch<f64>, svs: &[Sv], label: &str) {
        let mut scratch = Sv::zero_state(0);
        for (lane, sv) in svs.iter().enumerate() {
            batch.extract_lane_into(lane, &mut scratch);
            for (i, (a, b)) in scratch.amplitudes().iter().zip(sv.amplitudes()).enumerate() {
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "{label}: lane {lane} amp {i}"
                );
            }
        }
    }

    #[test]
    fn zero_states_and_lane_roundtrip() {
        let batch = StateBatch::<f64>::zero_states(3, 4);
        let mut sv = Sv::zero_state(0);
        for lane in 0..4 {
            batch.extract_lane_into(lane, &mut sv);
            assert_eq!(sv.n_qubits(), 3);
            assert!((sv.probability(0) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn dense_kernels_bitwise_match_scalar() {
        let (mut batch, mut svs) = mirrored(4, 3, 1000);
        let mut rng = ptsbe_rng::PhiloxRng::new(1001, 0);
        let u1 = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
        let u2 = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
        for q in [0, 3] {
            batch.apply_1q(&u1, q);
            svs.iter_mut().for_each(|s| s.apply_1q(&u1, q));
        }
        for (a, b) in [(0usize, 1usize), (3, 1), (2, 0)] {
            batch.apply_2q(&u2, a, b);
            svs.iter_mut().for_each(|s| s.apply_2q(&u2, a, b));
        }
        assert_lanes_bitwise(&batch, &svs, "dense");
    }

    #[test]
    fn every_kernel_impl_bitwise_matches_scalar() {
        for kernels in [KernelImpl::Scalar, KernelImpl::Soa, KernelImpl::Simd] {
            let (mut batch, mut svs) = mirrored_with(4, 5, 1500, kernels);
            let mut rng = ptsbe_rng::PhiloxRng::new(1501, 0);
            let u1 = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
            let u2 = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            let d1 = [Complex::cis(0.3), Complex::cis(-1.1)];
            batch.apply_1q(&u1, 1);
            batch.apply_2q(&u2, 3, 0);
            batch.apply_diag_1q(&d1, 2);
            batch.apply_cz(0, 2);
            for s in svs.iter_mut() {
                s.apply_1q(&u1, 1);
                s.apply_2q(&u2, 3, 0);
                s.apply_diag_1q(&d1, 2);
                s.apply_cz(0, 2);
            }
            assert_lanes_bitwise(&batch, &svs, kernels.label());
        }
    }

    #[test]
    fn reinit_clears_stale_amplitudes() {
        let mut batch = StateBatch::<f64>::zero_states(4, 3);
        let mut rng = ptsbe_rng::PhiloxRng::new(1600, 0);
        let u = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
        for q in 0..4 {
            batch.apply_1q(&u, q);
        }
        // Recycle into a smaller shape, then a larger one; every element
        // must be exactly |0…0⟩ both times.
        for (n, lanes) in [(3usize, 2usize), (5, 4)] {
            batch.reinit(n, lanes);
            assert_eq!(batch.n_qubits(), n);
            assert_eq!(batch.n_lanes(), lanes);
            let (re, im) = batch.planes();
            for (j, (&r, &i)) in re.iter().zip(im).enumerate() {
                let expect: f64 = if j < lanes { 1.0 } else { 0.0 };
                assert_eq!(r.to_bits(), expect.to_bits(), "re[{j}]");
                assert_eq!(i.to_bits(), 0.0f64.to_bits(), "im[{j}]");
            }
        }
    }

    #[test]
    fn per_lane_kernels_bitwise_match_scalar() {
        let (mut batch, mut svs) = mirrored(3, 3, 1100);
        let mut rng = ptsbe_rng::PhiloxRng::new(1101, 0);
        let ms: Vec<_> = (0..3)
            .map(|_| ptsbe_math::random::haar_unitary::<f64>(2, &mut rng))
            .collect();
        let es: Vec<[Complex<f64>; 4]> = ms
            .iter()
            .map(|m| [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]])
            .collect();
        batch.apply_1q_lanes(&es, 1);
        for (s, m) in svs.iter_mut().zip(&ms) {
            s.apply_1q(m, 1);
        }
        let m2s: Vec<_> = (0..3)
            .map(|_| ptsbe_math::random::haar_unitary::<f64>(4, &mut rng))
            .collect();
        let mms: Vec<_> = m2s.iter().map(|m| localize_2q(m, 2, 0)).collect();
        batch.apply_2q_lanes(&mms, 2, 0);
        for (s, m) in svs.iter_mut().zip(&m2s) {
            s.apply_2q(m, 2, 0);
        }
        assert_lanes_bitwise(&batch, &svs, "per-lane");
    }

    #[test]
    fn fast_paths_bitwise_match_scalar() {
        let (mut batch, mut svs) = mirrored(4, 2, 1200);
        let d1 = [Complex::cis(0.3), Complex::cis(-1.1)];
        let d2 = [
            Complex::cis(0.2),
            Complex::cis(1.7),
            Complex::cis(-0.4),
            Complex::cis(2.9),
        ];
        let perm1 = [1usize, 0];
        let ph1 = [Complex::cis(0.9), Complex::cis(-2.2)];
        let perm2 = [2usize, 0, 3, 1];
        let ph2 = [
            Complex::cis(0.1),
            Complex::cis(1.2),
            Complex::cis(-0.7),
            Complex::cis(2.4),
        ];
        batch.apply_diag_1q(&d1, 2);
        batch.apply_diag_2q(&d2, 3, 1);
        batch.apply_perm_1q(&perm1, &ph1, 0);
        batch.apply_perm_2q(&perm2, &ph2, 1, 3);
        batch.apply_cx(0, 2);
        batch.apply_cx(3, 1);
        batch.apply_cz(1, 2);
        batch.apply_swap(3, 0);
        for s in svs.iter_mut() {
            s.apply_diag_1q(&d1, 2);
            s.apply_diag_2q(&d2, 3, 1);
            s.apply_perm_1q(&perm1, &ph1, 0);
            s.apply_perm_2q(&perm2, &ph2, 1, 3);
            s.apply_cx(0, 2);
            s.apply_cx(3, 1);
            s.apply_cz(1, 2);
            s.apply_swap(3, 0);
        }
        assert_lanes_bitwise(&batch, &svs, "fast paths");
    }

    #[test]
    fn kq_gather_bitwise_matches_scalar() {
        let (mut batch, mut svs) = mirrored(4, 3, 1300);
        batch.apply_kq(&gates::ccx(), &[3, 0, 2]);
        for s in svs.iter_mut() {
            s.apply_kq(&gates::ccx(), &[3, 0, 2]);
        }
        assert_lanes_bitwise(&batch, &svs, "kq");
    }

    #[test]
    fn norms_bitwise_match_scalar_both_regimes() {
        for n in [5, PARALLEL_THRESHOLD_QUBITS] {
            let (batch, svs) = mirrored(n, 2, 1400 + n as u64);
            let mut n2 = vec![0.0f64; 2];
            batch.norm_sqr_lanes(&mut n2);
            for (lane, sv) in svs.iter().enumerate() {
                assert_eq!(
                    n2[lane].to_bits(),
                    sv.norm_sqr().to_bits(),
                    "n={n} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn advance_batch_matches_scalar_prepare_bitwise() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).measure_all();
        let nc = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.1))
            .with_default_2q(channels::depolarizing2(0.1))
            .apply(&c);
        let compiled = compile::<f64>(&nc).unwrap();
        let ident = nc.identity_assignment().unwrap();
        let mut with_err = ident.clone();
        with_err[1] = 2;
        let mut with_err2 = ident.clone();
        *with_err2.last_mut().unwrap() = 1;
        let lanes = [ident.as_slice(), with_err.as_slice(), with_err2.as_slice()];
        let mut batch = StateBatch::zero_states(3, lanes.len());
        let mut realized = vec![1.0f64; lanes.len()];
        advance_batch(
            &compiled,
            &mut batch,
            0..compiled.n_segments(),
            &lanes,
            &mut realized,
        );
        let mut scratch = Sv::zero_state(0);
        for (lane, choice) in lanes.iter().enumerate() {
            let (sv, p) = prepare(&compiled, choice);
            assert_eq!(realized[lane].to_bits(), p.to_bits(), "lane {lane} weight");
            batch.extract_lane_into(lane, &mut scratch);
            for (a, b) in scratch.amplitudes().iter().zip(sv.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "lane {lane}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "lane {lane}");
            }
        }
    }

    #[test]
    fn advance_batch_general_channel_bitwise() {
        // Amplitude damping exercises the per-lane Kraus normalization.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.3))
            .with_default_2q(channels::amplitude_damping(0.3))
            .apply(&c);
        let compiled = compile::<f64>(&nc).unwrap();
        // Damping channels have no identity branch; branch 0 is "no decay".
        let no_decay = vec![0usize; nc.n_sites()];
        let mut damp = no_decay.clone();
        damp[1] = 1;
        let lanes = [no_decay.as_slice(), damp.as_slice()];
        let mut batch = StateBatch::zero_states(2, 2);
        let mut realized = vec![1.0f64; 2];
        advance_batch(
            &compiled,
            &mut batch,
            0..compiled.n_segments(),
            &lanes,
            &mut realized,
        );
        let mut scratch = Sv::zero_state(0);
        for (lane, choice) in lanes.iter().enumerate() {
            let (sv, p) = prepare(&compiled, choice);
            assert_eq!(realized[lane].to_bits(), p.to_bits());
            batch.extract_lane_into(lane, &mut scratch);
            for (a, b) in scratch.amplitudes().iter().zip(sv.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "lane {lane}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "lane {lane}");
            }
        }
    }
}
