//! Pluggable batch-kernel dispatch: the seam between [`crate::batch`]'s
//! sweep geometry and the arithmetic that runs inside each sweep.
//!
//! [`crate::batch::StateBatch`] owns *where* the work is (split re/im
//! amplitude planes, chunk/run decomposition, rayon fan-out); a
//! [`BatchKernels`] implementation owns *how* each contiguous run is
//! processed. Three implementations ship:
//!
//! | [`KernelImpl`] | label              | inner loop                        |
//! |----------------|--------------------|-----------------------------------|
//! | `Scalar`       | `scalar-reference` | per-element [`Complex`] ops       |
//! | `Soa`          | `soa-autovec`      | split-plane mul/`mul_add` chains  |
//! | `Simd`         | `soa-simd`         | `core::arch` AVX2/FMA fast paths  |
//!
//! All three are **bitwise identical**: they compose the same parts-level
//! primitives ([`ptsbe_math::cplx_mul_parts`] /
//! [`ptsbe_math::cplx_mul_add_parts`]) that the [`Complex`] operators
//! route through, and the AVX2 path mirrors the same compile-time
//! fused/unfused choice (see [`x86::FUSED`]). The selection is made once
//! at [`crate::batch::StateBatch`] construction — automatic (SIMD when
//! the CPU supports it), or forced via the `PTSBE_BATCH_KERNELS`
//! environment variable (`scalar` | `soa` | `simd`) for equivalence
//! testing. A GPU/accelerator backend later slots in as a fourth
//! implementation without touching `advance_batch` or the executors.

use ptsbe_math::{
    cplx_mul_add_parts, cplx_mul_parts, cplx_norm_sqr_parts, vec_ops, Complex, Scalar,
};

/// One contiguous run of a split-plane pair: `(re, im)` slices of equal
/// length.
pub type Run<'a, T> = (&'a mut [T], &'a mut [T]);

// ---------------------------------------------------------------------------
// Kernel selection

/// Which [`BatchKernels`] implementation a batch uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelImpl {
    /// Per-element reference loops over [`Complex`] values.
    Scalar,
    /// Explicit wide loops over split planes, left to the autovectorizer.
    Soa,
    /// AVX2/FMA `core::arch` fast paths for the hottest kernels
    /// (dense 1q/2q and the diagonal multiplies); everything else runs
    /// the `Soa` loops. Falls back to `Soa` off x86-64 or when the CPU
    /// lacks AVX2+FMA.
    Simd,
}

impl KernelImpl {
    /// Human-readable label (also surfaced in route-decision metadata).
    pub fn label(self) -> &'static str {
        match self {
            KernelImpl::Scalar => "scalar-reference",
            KernelImpl::Soa => "soa-autovec",
            KernelImpl::Simd => "soa-simd",
        }
    }

    /// True when the `Simd` implementation can actually run here.
    pub fn simd_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            x86::supported()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Downgrade `Simd` to `Soa` when unsupported, so constructing a
    /// batch with any requested implementation is always safe.
    pub fn resolve(self) -> Self {
        match self {
            KernelImpl::Simd if !Self::simd_supported() => KernelImpl::Soa,
            other => other,
        }
    }

    /// Default selection: `PTSBE_BATCH_KERNELS` (`scalar`|`soa`|`simd`)
    /// when set, otherwise `Simd` where supported and `Soa` elsewhere.
    ///
    /// # Panics
    /// Panics on an unrecognized `PTSBE_BATCH_KERNELS` value — a typo in
    /// a CI matrix should fail loudly, not silently benchmark the wrong
    /// kernels.
    pub fn auto() -> Self {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<KernelImpl> = OnceLock::new();
        *CHOICE.get_or_init(|| {
            match std::env::var("PTSBE_BATCH_KERNELS") {
                Ok(v) => match v.as_str() {
                    "scalar" => KernelImpl::Scalar,
                    "soa" => KernelImpl::Soa,
                    "simd" => KernelImpl::Simd,
                    other => panic!("PTSBE_BATCH_KERNELS must be scalar|soa|simd, got {other:?}"),
                },
                Err(_) => KernelImpl::Simd,
            }
            .resolve()
        })
    }
}

/// Resolve a (pre-[`KernelImpl::resolve`]d) selection to its
/// implementation.
pub(crate) fn dispatch<T: Scalar>(k: KernelImpl) -> &'static dyn BatchKernels<T> {
    match k {
        KernelImpl::Scalar => &ScalarKernels,
        KernelImpl::Soa => &SoaKernels,
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Simd => &SimdKernels,
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Simd => &SoaKernels,
    }
}

// ---------------------------------------------------------------------------
// Per-lane matrix containers (entry-major SoA)

/// Per-lane 2×2 matrices in entry-major split planes:
/// `re[e * b + lane]` is the real part of entry `e` (row-major
/// `[m00, m01, m10, m11]`) of lane `lane`'s matrix — so a wide loop over
/// lanes loads every operand contiguously.
pub struct LaneMats2<T> {
    /// Lane count.
    pub b: usize,
    /// Real entry planes, `4 * b` values.
    pub re: Vec<T>,
    /// Imaginary entry planes, `4 * b` values.
    pub im: Vec<T>,
}

impl<T: Scalar> LaneMats2<T> {
    /// Transpose row-major per-lane entries into entry-major planes.
    pub fn from_entries(es: &[[Complex<T>; 4]]) -> Self {
        let b = es.len();
        let mut re = vec![T::ZERO; 4 * b];
        let mut im = vec![T::ZERO; 4 * b];
        for (lane, e) in es.iter().enumerate() {
            for (k, z) in e.iter().enumerate() {
                re[k * b + lane] = z.re;
                im[k * b + lane] = z.im;
            }
        }
        Self { b, re, im }
    }
}

/// Per-lane 4×4 matrices in entry-major split planes:
/// `re[(r * 4 + c) * b + lane]` (matrices already in local `[hl]` order).
pub struct LaneMats4<T> {
    /// Lane count.
    pub b: usize,
    /// Real entry planes, `16 * b` values.
    pub re: Vec<T>,
    /// Imaginary entry planes, `16 * b` values.
    pub im: Vec<T>,
}

impl<T: Scalar> LaneMats4<T> {
    /// Transpose per-lane localized matrices into entry-major planes.
    pub fn from_mats(mms: &[[[Complex<T>; 4]; 4]]) -> Self {
        let b = mms.len();
        let mut re = vec![T::ZERO; 16 * b];
        let mut im = vec![T::ZERO; 16 * b];
        for (lane, mm) in mms.iter().enumerate() {
            for (r, row) in mm.iter().enumerate() {
                for (c, z) in row.iter().enumerate() {
                    re[(r * 4 + c) * b + lane] = z.re;
                    im[(r * 4 + c) * b + lane] = z.im;
                }
            }
        }
        Self { b, re, im }
    }
}

// ---------------------------------------------------------------------------
// The dispatch trait

/// Run-level batch kernels: each method processes one contiguous
/// split-plane run (or run group) handed to it by a
/// [`crate::batch::StateBatch`] sweep. Implementations must be bitwise
/// identical to the scalar [`Complex`] arithmetic (or document a pinned
/// tolerance — none of the shipped implementations need one).
pub trait BatchKernels<T: Scalar>: Send + Sync {
    /// Implementation label, surfaced in geometry metadata.
    fn label(&self) -> &'static str;

    /// Dense 1q: `(lo, hi) ← M · (lo, hi)` elementwise over a run pair,
    /// matrix as entry planes `[m00, m01, m10, m11]`.
    fn mat2_run(&self, er: &[T; 4], ei: &[T; 4], lo: Run<'_, T>, hi: Run<'_, T>);

    /// Dense 2q over a quad of runs (matrix already in local `[hl]`
    /// order).
    fn mat4_run(&self, mr: &[[T; 4]; 4], mi: &[[T; 4]; 4], rows: [Run<'_, T>; 4]);

    /// Diagonal factor: `z *= d` over one run (plain complex multiply).
    fn cmul_run(&self, d: (T, T), run: Run<'_, T>);

    /// `z = -z` over one run (the CZ fast path).
    fn neg_run(&self, run: Run<'_, T>);

    /// 1q permutation: `out[r] = phase[r] · x[perm[r]]` elementwise over
    /// a run pair.
    fn perm2_run(
        &self,
        perm: &[usize; 2],
        phr: &[T; 2],
        phi: &[T; 2],
        lo: Run<'_, T>,
        hi: Run<'_, T>,
    );

    /// 2q permutation over a quad of runs (already localized).
    fn perm4_run(&self, perm: &[usize; 4], phr: &[T; 4], phi: &[T; 4], rows: [Run<'_, T>; 4]);

    /// Per-lane dense 1q over a run pair whose rows are `m.b` lanes
    /// wide; lanes whose `skip` flag is set keep their exact bits.
    fn mat2_lanes_run(
        &self,
        m: &LaneMats2<T>,
        skip: Option<&[bool]>,
        lo: Run<'_, T>,
        hi: Run<'_, T>,
    );

    /// Per-lane dense 2q over a quad of runs (see
    /// [`BatchKernels::mat2_lanes_run`]).
    fn mat4_lanes_run(&self, m: &LaneMats4<T>, skip: Option<&[bool]>, rows: [Run<'_, T>; 4]);

    /// Accumulate per-lane `|z|²` over a block of `b`-wide rows:
    /// `block_sum[lane] += re² + im²` in row order (the caller owns the
    /// scalar path's 4096-amplitude block grouping).
    fn norm_acc_rows(&self, re: &[T], im: &[T], b: usize, block_sum: &mut [T]);

    /// Per-lane real scale over `b`-wide rows: `z[lane] *= s[lane]`.
    fn scale_rows(&self, run: Run<'_, T>, b: usize, s: &[T]);
}

// ---------------------------------------------------------------------------
// Scalar reference implementation

/// Reference implementation: per-element loops over reconstructed
/// [`Complex`] values, routed through the identical helpers the scalar
/// [`crate::state::StateVector`] kernels use.
pub struct ScalarKernels;

impl<T: Scalar> BatchKernels<T> for ScalarKernels {
    fn label(&self) -> &'static str {
        "scalar-reference"
    }

    fn mat2_run(&self, er: &[T; 4], ei: &[T; 4], lo: Run<'_, T>, hi: Run<'_, T>) {
        let e = [0, 1, 2, 3].map(|k| Complex::new(er[k], ei[k]));
        let (lo_re, lo_im) = lo;
        let (hi_re, hi_im) = hi;
        for j in 0..lo_re.len() {
            let (y0, y1) = vec_ops::mat2_apply(
                &e,
                Complex::new(lo_re[j], lo_im[j]),
                Complex::new(hi_re[j], hi_im[j]),
            );
            lo_re[j] = y0.re;
            lo_im[j] = y0.im;
            hi_re[j] = y1.re;
            hi_im[j] = y1.im;
        }
    }

    fn mat4_run(&self, mr: &[[T; 4]; 4], mi: &[[T; 4]; 4], rows: [Run<'_, T>; 4]) {
        let mut mm = [[Complex::<T>::zero(); 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                mm[r][c] = Complex::new(mr[r][c], mi[r][c]);
            }
        }
        let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
        for j in 0..r0.len() {
            let x = [
                Complex::new(r0[j], i0[j]),
                Complex::new(r1[j], i1[j]),
                Complex::new(r2[j], i2[j]),
                Complex::new(r3[j], i3[j]),
            ];
            let y = vec_ops::mat4_apply(&mm, &x);
            r0[j] = y[0].re;
            i0[j] = y[0].im;
            r1[j] = y[1].re;
            i1[j] = y[1].im;
            r2[j] = y[2].re;
            i2[j] = y[2].im;
            r3[j] = y[3].re;
            i3[j] = y[3].im;
        }
    }

    fn cmul_run(&self, d: (T, T), run: Run<'_, T>) {
        let dz = Complex::new(d.0, d.1);
        let (re, im) = run;
        for j in 0..re.len() {
            let y = Complex::new(re[j], im[j]) * dz;
            re[j] = y.re;
            im[j] = y.im;
        }
    }

    fn neg_run(&self, run: Run<'_, T>) {
        let (re, im) = run;
        for j in 0..re.len() {
            let y = -Complex::new(re[j], im[j]);
            re[j] = y.re;
            im[j] = y.im;
        }
    }

    fn perm2_run(
        &self,
        perm: &[usize; 2],
        phr: &[T; 2],
        phi: &[T; 2],
        lo: Run<'_, T>,
        hi: Run<'_, T>,
    ) {
        let phase = [Complex::new(phr[0], phi[0]), Complex::new(phr[1], phi[1])];
        let (lo_re, lo_im) = lo;
        let (hi_re, hi_im) = hi;
        for j in 0..lo_re.len() {
            let x = [
                Complex::new(lo_re[j], lo_im[j]),
                Complex::new(hi_re[j], hi_im[j]),
            ];
            let y0 = phase[0] * x[perm[0]];
            let y1 = phase[1] * x[perm[1]];
            lo_re[j] = y0.re;
            lo_im[j] = y0.im;
            hi_re[j] = y1.re;
            hi_im[j] = y1.im;
        }
    }

    fn perm4_run(&self, perm: &[usize; 4], phr: &[T; 4], phi: &[T; 4], rows: [Run<'_, T>; 4]) {
        let phase = [0, 1, 2, 3].map(|k| Complex::new(phr[k], phi[k]));
        let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
        for j in 0..r0.len() {
            let x = [
                Complex::new(r0[j], i0[j]),
                Complex::new(r1[j], i1[j]),
                Complex::new(r2[j], i2[j]),
                Complex::new(r3[j], i3[j]),
            ];
            let y = [0, 1, 2, 3].map(|r| phase[r] * x[perm[r]]);
            r0[j] = y[0].re;
            i0[j] = y[0].im;
            r1[j] = y[1].re;
            i1[j] = y[1].im;
            r2[j] = y[2].re;
            i2[j] = y[2].im;
            r3[j] = y[3].re;
            i3[j] = y[3].im;
        }
    }

    fn mat2_lanes_run(
        &self,
        m: &LaneMats2<T>,
        skip: Option<&[bool]>,
        lo: Run<'_, T>,
        hi: Run<'_, T>,
    ) {
        let b = m.b;
        let (lo_re, lo_im) = lo;
        let (hi_re, hi_im) = hi;
        for row in 0..lo_re.len() / b {
            let off = row * b;
            for lane in 0..b {
                if skip.is_some_and(|s| s[lane]) {
                    continue;
                }
                let e = [0, 1, 2, 3].map(|k| Complex::new(m.re[k * b + lane], m.im[k * b + lane]));
                let j = off + lane;
                let (y0, y1) = vec_ops::mat2_apply(
                    &e,
                    Complex::new(lo_re[j], lo_im[j]),
                    Complex::new(hi_re[j], hi_im[j]),
                );
                lo_re[j] = y0.re;
                lo_im[j] = y0.im;
                hi_re[j] = y1.re;
                hi_im[j] = y1.im;
            }
        }
    }

    fn mat4_lanes_run(&self, m: &LaneMats4<T>, skip: Option<&[bool]>, rows: [Run<'_, T>; 4]) {
        let b = m.b;
        let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
        for row in 0..r0.len() / b {
            let off = row * b;
            for lane in 0..b {
                if skip.is_some_and(|s| s[lane]) {
                    continue;
                }
                let mut mm = [[Complex::<T>::zero(); 4]; 4];
                for (r, mrow) in mm.iter_mut().enumerate() {
                    for (c, entry) in mrow.iter_mut().enumerate() {
                        let k = (r * 4 + c) * b + lane;
                        *entry = Complex::new(m.re[k], m.im[k]);
                    }
                }
                let j = off + lane;
                let x = [
                    Complex::new(r0[j], i0[j]),
                    Complex::new(r1[j], i1[j]),
                    Complex::new(r2[j], i2[j]),
                    Complex::new(r3[j], i3[j]),
                ];
                let y = vec_ops::mat4_apply(&mm, &x);
                r0[j] = y[0].re;
                i0[j] = y[0].im;
                r1[j] = y[1].re;
                i1[j] = y[1].im;
                r2[j] = y[2].re;
                i2[j] = y[2].im;
                r3[j] = y[3].re;
                i3[j] = y[3].im;
            }
        }
    }

    fn norm_acc_rows(&self, re: &[T], im: &[T], b: usize, block_sum: &mut [T]) {
        for (row_re, row_im) in re.chunks_exact(b).zip(im.chunks_exact(b)) {
            for (s, (r, i)) in block_sum.iter_mut().zip(row_re.iter().zip(row_im)) {
                *s += Complex::new(*r, *i).norm_sqr();
            }
        }
    }

    fn scale_rows(&self, run: Run<'_, T>, b: usize, s: &[T]) {
        let (re, im) = run;
        for (row_re, row_im) in re.chunks_exact_mut(b).zip(im.chunks_exact_mut(b)) {
            for (lane, f) in s.iter().enumerate() {
                let y = Complex::new(row_re[lane], row_im[lane]).scale(*f);
                row_re[lane] = y.re;
                row_im[lane] = y.im;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SoA autovectorizing implementation

/// Explicit wide loops over split planes — shuffle-free mul/`mul_add`
/// chains the compiler lowers to packed FMA on its own.
pub struct SoaKernels;

impl<T: Scalar> BatchKernels<T> for SoaKernels {
    fn label(&self) -> &'static str {
        "soa-autovec"
    }

    fn mat2_run(&self, er: &[T; 4], ei: &[T; 4], lo: Run<'_, T>, hi: Run<'_, T>) {
        vec_ops::mat2_planes(er, ei, lo.0, lo.1, hi.0, hi.1);
    }

    fn mat4_run(&self, mr: &[[T; 4]; 4], mi: &[[T; 4]; 4], rows: [Run<'_, T>; 4]) {
        let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
        vec_ops::mat4_planes(mr, mi, [r0, r1, r2, r3], [i0, i1, i2, i3]);
    }

    fn cmul_run(&self, d: (T, T), run: Run<'_, T>) {
        vec_ops::cmul_plane(d.0, d.1, run.0, run.1);
    }

    fn neg_run(&self, run: Run<'_, T>) {
        vec_ops::neg_plane(run.0, run.1);
    }

    fn perm2_run(
        &self,
        perm: &[usize; 2],
        phr: &[T; 2],
        phi: &[T; 2],
        lo: Run<'_, T>,
        hi: Run<'_, T>,
    ) {
        let (lo_re, lo_im) = lo;
        let (hi_re, hi_im) = hi;
        let n = lo_re.len();
        let (lo_re, lo_im) = (&mut lo_re[..n], &mut lo_im[..n]);
        let (hi_re, hi_im) = (&mut hi_re[..n], &mut hi_im[..n]);
        for j in 0..n {
            let xr = [lo_re[j], hi_re[j]];
            let xi = [lo_im[j], hi_im[j]];
            let (y0r, y0i) = cplx_mul_parts(phr[0], phi[0], xr[perm[0]], xi[perm[0]]);
            let (y1r, y1i) = cplx_mul_parts(phr[1], phi[1], xr[perm[1]], xi[perm[1]]);
            lo_re[j] = y0r;
            lo_im[j] = y0i;
            hi_re[j] = y1r;
            hi_im[j] = y1i;
        }
    }

    fn perm4_run(&self, perm: &[usize; 4], phr: &[T; 4], phi: &[T; 4], rows: [Run<'_, T>; 4]) {
        let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
        let n = r0.len();
        let (r0, r1, r2, r3) = (&mut r0[..n], &mut r1[..n], &mut r2[..n], &mut r3[..n]);
        let (i0, i1, i2, i3) = (&mut i0[..n], &mut i1[..n], &mut i2[..n], &mut i3[..n]);
        for j in 0..n {
            let xr = [r0[j], r1[j], r2[j], r3[j]];
            let xi = [i0[j], i1[j], i2[j], i3[j]];
            let mut yr = [T::ZERO; 4];
            let mut yi = [T::ZERO; 4];
            for r in 0..4 {
                let (a, bq) = cplx_mul_parts(phr[r], phi[r], xr[perm[r]], xi[perm[r]]);
                yr[r] = a;
                yi[r] = bq;
            }
            r0[j] = yr[0];
            r1[j] = yr[1];
            r2[j] = yr[2];
            r3[j] = yr[3];
            i0[j] = yi[0];
            i1[j] = yi[1];
            i2[j] = yi[2];
            i3[j] = yi[3];
        }
    }

    fn mat2_lanes_run(
        &self,
        m: &LaneMats2<T>,
        skip: Option<&[bool]>,
        lo: Run<'_, T>,
        hi: Run<'_, T>,
    ) {
        let b = m.b;
        let (lo_re, lo_im) = lo;
        let (hi_re, hi_im) = hi;
        let (e0r, rest) = m.re.split_at(b);
        let (e1r, rest) = rest.split_at(b);
        let (e2r, e3r) = rest.split_at(b);
        let (e0i, rest) = m.im.split_at(b);
        let (e1i, rest) = rest.split_at(b);
        let (e2i, e3i) = rest.split_at(b);
        for row in 0..lo_re.len() / b {
            let off = row * b;
            let (lr, li) = (&mut lo_re[off..off + b], &mut lo_im[off..off + b]);
            let (hr, hi_) = (&mut hi_re[off..off + b], &mut hi_im[off..off + b]);
            for j in 0..b {
                if skip.is_some_and(|s| s[j]) {
                    continue;
                }
                let (x0r, x0i, x1r, x1i) = (lr[j], li[j], hr[j], hi_[j]);
                let (t0r, t0i) = cplx_mul_parts(e1r[j], e1i[j], x1r, x1i);
                let (y0r, y0i) = cplx_mul_add_parts(e0r[j], e0i[j], x0r, x0i, t0r, t0i);
                let (t1r, t1i) = cplx_mul_parts(e3r[j], e3i[j], x1r, x1i);
                let (y1r, y1i) = cplx_mul_add_parts(e2r[j], e2i[j], x0r, x0i, t1r, t1i);
                lr[j] = y0r;
                li[j] = y0i;
                hr[j] = y1r;
                hi_[j] = y1i;
            }
        }
    }

    fn mat4_lanes_run(&self, m: &LaneMats4<T>, skip: Option<&[bool]>, rows: [Run<'_, T>; 4]) {
        let b = m.b;
        let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
        for row in 0..r0.len() / b {
            let off = row * b;
            for j in 0..b {
                if skip.is_some_and(|s| s[j]) {
                    continue;
                }
                let k = off + j;
                let xr = [r0[k], r1[k], r2[k], r3[k]];
                let xi = [i0[k], i1[k], i2[k], i3[k]];
                let mut yr = [T::ZERO; 4];
                let mut yi = [T::ZERO; 4];
                for r in 0..4 {
                    let e = |c: usize| (m.re[(r * 4 + c) * b + j], m.im[(r * 4 + c) * b + j]);
                    let (m0r, m0i) = e(0);
                    let (m1r, m1i) = e(1);
                    let (m2r, m2i) = e(2);
                    let (m3r, m3i) = e(3);
                    let (tr, ti) = cplx_mul_parts(m1r, m1i, xr[1], xi[1]);
                    let (ar, ai) = cplx_mul_add_parts(m0r, m0i, xr[0], xi[0], tr, ti);
                    let (ar, ai) = cplx_mul_add_parts(m2r, m2i, xr[2], xi[2], ar, ai);
                    let (fr, fi) = cplx_mul_add_parts(m3r, m3i, xr[3], xi[3], ar, ai);
                    yr[r] = fr;
                    yi[r] = fi;
                }
                r0[k] = yr[0];
                r1[k] = yr[1];
                r2[k] = yr[2];
                r3[k] = yr[3];
                i0[k] = yi[0];
                i1[k] = yi[1];
                i2[k] = yi[2];
                i3[k] = yi[3];
            }
        }
    }

    fn norm_acc_rows(&self, re: &[T], im: &[T], b: usize, block_sum: &mut [T]) {
        for (row_re, row_im) in re.chunks_exact(b).zip(im.chunks_exact(b)) {
            for (s, (r, i)) in block_sum.iter_mut().zip(row_re.iter().zip(row_im)) {
                *s += cplx_norm_sqr_parts(*r, *i);
            }
        }
    }

    fn scale_rows(&self, run: Run<'_, T>, b: usize, s: &[T]) {
        let (re, im) = run;
        for (row_re, row_im) in re.chunks_exact_mut(b).zip(im.chunks_exact_mut(b)) {
            for ((r, i), f) in row_re.iter_mut().zip(row_im.iter_mut()).zip(s) {
                *r *= *f;
                *i *= *f;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2/FMA implementation (x86-64)

/// `core::arch` AVX2/FMA fast paths for the hottest kernels, falling
/// back to [`SoaKernels`] loops everywhere else. Selected only when the
/// CPU reports `avx2` **and** `fma` (see [`KernelImpl::resolve`]).
#[cfg(target_arch = "x86_64")]
pub struct SimdKernels;

#[cfg(target_arch = "x86_64")]
mod simd_impl {
    use super::*;
    use std::any::TypeId;

    #[inline(always)]
    fn same<T: 'static, U: 'static>() -> bool {
        TypeId::of::<T>() == TypeId::of::<U>()
    }

    /// Reinterpret a slice of `T` as `U`; caller has proven `T == U`.
    #[inline(always)]
    fn cast_mut<T: 'static, U: 'static>(s: &mut [T]) -> &mut [U] {
        debug_assert!(same::<T, U>());
        unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr().cast(), s.len()) }
    }

    #[inline(always)]
    fn cast_ref<T: 'static, U: 'static>(x: &T) -> &U {
        debug_assert!(same::<T, U>());
        unsafe { &*(x as *const T).cast() }
    }

    impl<T: Scalar> BatchKernels<T> for SimdKernels {
        fn label(&self) -> &'static str {
            "soa-simd"
        }

        fn mat2_run(&self, er: &[T; 4], ei: &[T; 4], lo: Run<'_, T>, hi: Run<'_, T>) {
            if same::<T, f64>() {
                unsafe {
                    x86::f64w::mat2(
                        cast_ref(er),
                        cast_ref(ei),
                        cast_mut(lo.0),
                        cast_mut(lo.1),
                        cast_mut(hi.0),
                        cast_mut(hi.1),
                    )
                };
            } else if same::<T, f32>() {
                unsafe {
                    x86::f32w::mat2(
                        cast_ref(er),
                        cast_ref(ei),
                        cast_mut(lo.0),
                        cast_mut(lo.1),
                        cast_mut(hi.0),
                        cast_mut(hi.1),
                    )
                };
            } else {
                SoaKernels.mat2_run(er, ei, lo, hi);
            }
        }

        fn mat4_run(&self, mr: &[[T; 4]; 4], mi: &[[T; 4]; 4], rows: [Run<'_, T>; 4]) {
            if same::<T, f64>() {
                let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
                unsafe {
                    x86::f64w::mat4(
                        cast_ref(mr),
                        cast_ref(mi),
                        [cast_mut(r0), cast_mut(r1), cast_mut(r2), cast_mut(r3)],
                        [cast_mut(i0), cast_mut(i1), cast_mut(i2), cast_mut(i3)],
                    )
                };
            } else if same::<T, f32>() {
                let [(r0, i0), (r1, i1), (r2, i2), (r3, i3)] = rows;
                unsafe {
                    x86::f32w::mat4(
                        cast_ref(mr),
                        cast_ref(mi),
                        [cast_mut(r0), cast_mut(r1), cast_mut(r2), cast_mut(r3)],
                        [cast_mut(i0), cast_mut(i1), cast_mut(i2), cast_mut(i3)],
                    )
                };
            } else {
                SoaKernels.mat4_run(mr, mi, rows);
            }
        }

        fn cmul_run(&self, d: (T, T), run: Run<'_, T>) {
            if same::<T, f64>() {
                unsafe {
                    x86::f64w::cmul(
                        *cast_ref(&d.0),
                        *cast_ref(&d.1),
                        cast_mut(run.0),
                        cast_mut(run.1),
                    )
                };
            } else if same::<T, f32>() {
                unsafe {
                    x86::f32w::cmul(
                        *cast_ref(&d.0),
                        *cast_ref(&d.1),
                        cast_mut(run.0),
                        cast_mut(run.1),
                    )
                };
            } else {
                SoaKernels.cmul_run(d, run);
            }
        }

        fn neg_run(&self, run: Run<'_, T>) {
            SoaKernels.neg_run(run);
        }

        fn perm2_run(
            &self,
            perm: &[usize; 2],
            phr: &[T; 2],
            phi: &[T; 2],
            lo: Run<'_, T>,
            hi: Run<'_, T>,
        ) {
            SoaKernels.perm2_run(perm, phr, phi, lo, hi);
        }

        fn perm4_run(&self, perm: &[usize; 4], phr: &[T; 4], phi: &[T; 4], rows: [Run<'_, T>; 4]) {
            SoaKernels.perm4_run(perm, phr, phi, rows);
        }

        fn mat2_lanes_run(
            &self,
            m: &LaneMats2<T>,
            skip: Option<&[bool]>,
            lo: Run<'_, T>,
            hi: Run<'_, T>,
        ) {
            SoaKernels.mat2_lanes_run(m, skip, lo, hi);
        }

        fn mat4_lanes_run(&self, m: &LaneMats4<T>, skip: Option<&[bool]>, rows: [Run<'_, T>; 4]) {
            SoaKernels.mat4_lanes_run(m, skip, rows);
        }

        fn norm_acc_rows(&self, re: &[T], im: &[T], b: usize, block_sum: &mut [T]) {
            SoaKernels.norm_acc_rows(re, im, b, block_sum);
        }

        fn scale_rows(&self, run: Run<'_, T>, b: usize, s: &[T]) {
            SoaKernels.scale_rows(run, b, s);
        }
    }
}

/// AVX2/FMA lowering of the hot run kernels.
///
/// Bitwise contract: every vector op is the exact IEEE operation of the
/// scalar form — packed mul/add/sub for the plain complex product, and
/// packed FMA *iff* this compilation's [`ptsbe_math::cplx_mul_add_parts`]
/// uses the fused form ([`x86::FUSED`] is the same `cfg!` switch). Tail
/// elements run the scalar parts helpers, so run length never changes a
/// bit either.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use ptsbe_math::{cplx_mul_add_parts, cplx_mul_parts, Scalar};

    /// Whether this compilation contracts complex multiply-accumulate to
    /// hardware FMA — must match [`ptsbe_math::cplx_mul_add_parts`].
    pub const FUSED: bool = cfg!(target_feature = "fma");

    /// Runtime gate for [`super::SimdKernels`].
    pub fn supported() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    macro_rules! avx2_width {
        ($name:ident, $t:ty, $v:ty, $w:expr,
         $loadu:ident, $storeu:ident, $set1:ident,
         $mul:ident, $add:ident, $sub:ident, $fmadd:ident, $fnmadd:ident) => {
            /// Width-specialized kernels (see module docs).
            pub mod $name {
                use super::*;
                use core::arch::x86_64::*;

                /// Plain complex product `(ar + i·ai)(br + i·bi)` —
                /// packed form of `cplx_mul_parts`.
                #[inline]
                #[target_feature(enable = "avx2", enable = "fma")]
                unsafe fn vmul(ar: $v, ai: $v, br: $v, bi: $v) -> ($v, $v) {
                    (
                        $sub($mul(ar, br), $mul(ai, bi)),
                        $add($mul(ar, bi), $mul(ai, br)),
                    )
                }

                /// Packed form of `cplx_mul_add_parts`, same `FUSED`
                /// branch (`fnmadd(a, b, c)` is exactly `fma(a, -b, c)`).
                #[inline]
                #[target_feature(enable = "avx2", enable = "fma")]
                unsafe fn vmuladd(ar: $v, ai: $v, br: $v, bi: $v, cr: $v, ci: $v) -> ($v, $v) {
                    if FUSED {
                        (
                            $fmadd(ar, br, $fnmadd(ai, bi, cr)),
                            $fmadd(ar, bi, $fmadd(ai, br, ci)),
                        )
                    } else {
                        (
                            $add($sub($mul(ar, br), $mul(ai, bi)), cr),
                            $add($add($mul(ar, bi), $mul(ai, br)), ci),
                        )
                    }
                }

                /// `z *= d` over a split-plane run.
                ///
                /// # Safety
                /// The CPU must support AVX2 and FMA (checked once by
                /// [`KernelImpl::auto`] before this module is selected).
                #[target_feature(enable = "avx2", enable = "fma")]
                pub unsafe fn cmul(dr: $t, di: $t, re: &mut [$t], im: &mut [$t]) {
                    let n = re.len();
                    let vdr = $set1(dr);
                    let vdi = $set1(di);
                    let mut j = 0usize;
                    while j + $w <= n {
                        let xr = $loadu(re.as_ptr().add(j));
                        let xi = $loadu(im.as_ptr().add(j));
                        let (yr, yi) = vmul(xr, xi, vdr, vdi);
                        $storeu(re.as_mut_ptr().add(j), yr);
                        $storeu(im.as_mut_ptr().add(j), yi);
                        j += $w;
                    }
                    while j < n {
                        let (yr, yi) = cplx_mul_parts(re[j], im[j], dr, di);
                        re[j] = yr;
                        im[j] = yi;
                        j += 1;
                    }
                }

                /// Dense 1q over a split-plane run pair.
                ///
                /// # Safety
                /// The CPU must support AVX2 and FMA (checked once by
                /// [`KernelImpl::auto`] before this module is selected).
                #[target_feature(enable = "avx2", enable = "fma")]
                pub unsafe fn mat2(
                    er: &[$t; 4],
                    ei: &[$t; 4],
                    lo_re: &mut [$t],
                    lo_im: &mut [$t],
                    hi_re: &mut [$t],
                    hi_im: &mut [$t],
                ) {
                    let n = lo_re.len();
                    let e0r = $set1(er[0]);
                    let e1r = $set1(er[1]);
                    let e2r = $set1(er[2]);
                    let e3r = $set1(er[3]);
                    let e0i = $set1(ei[0]);
                    let e1i = $set1(ei[1]);
                    let e2i = $set1(ei[2]);
                    let e3i = $set1(ei[3]);
                    let mut j = 0usize;
                    while j + $w <= n {
                        let x0r = $loadu(lo_re.as_ptr().add(j));
                        let x0i = $loadu(lo_im.as_ptr().add(j));
                        let x1r = $loadu(hi_re.as_ptr().add(j));
                        let x1i = $loadu(hi_im.as_ptr().add(j));
                        let (t0r, t0i) = vmul(e1r, e1i, x1r, x1i);
                        let (y0r, y0i) = vmuladd(e0r, e0i, x0r, x0i, t0r, t0i);
                        let (t1r, t1i) = vmul(e3r, e3i, x1r, x1i);
                        let (y1r, y1i) = vmuladd(e2r, e2i, x0r, x0i, t1r, t1i);
                        $storeu(lo_re.as_mut_ptr().add(j), y0r);
                        $storeu(lo_im.as_mut_ptr().add(j), y0i);
                        $storeu(hi_re.as_mut_ptr().add(j), y1r);
                        $storeu(hi_im.as_mut_ptr().add(j), y1i);
                        j += $w;
                    }
                    while j < n {
                        let (x0r, x0i, x1r, x1i) = (lo_re[j], lo_im[j], hi_re[j], hi_im[j]);
                        let (t0r, t0i) = cplx_mul_parts(er[1], ei[1], x1r, x1i);
                        let (y0r, y0i) = cplx_mul_add_parts(er[0], ei[0], x0r, x0i, t0r, t0i);
                        let (t1r, t1i) = cplx_mul_parts(er[3], ei[3], x1r, x1i);
                        let (y1r, y1i) = cplx_mul_add_parts(er[2], ei[2], x0r, x0i, t1r, t1i);
                        lo_re[j] = y0r;
                        lo_im[j] = y0i;
                        hi_re[j] = y1r;
                        hi_im[j] = y1i;
                        j += 1;
                    }
                }

                /// Dense 2q over four split-plane runs.
                ///
                /// # Safety
                /// The CPU must support AVX2 and FMA (checked once by
                /// [`KernelImpl::auto`] before this module is selected).
                #[target_feature(enable = "avx2", enable = "fma")]
                pub unsafe fn mat4(
                    mr: &[[$t; 4]; 4],
                    mi: &[[$t; 4]; 4],
                    re: [&mut [$t]; 4],
                    im: [&mut [$t]; 4],
                ) {
                    let [r0, r1, r2, r3] = re;
                    let [i0, i1, i2, i3] = im;
                    let n = r0.len();
                    let zero = $set1(0.0);
                    let mut mvr = [[zero; 4]; 4];
                    let mut mvi = [[zero; 4]; 4];
                    for r in 0..4 {
                        for c in 0..4 {
                            mvr[r][c] = $set1(mr[r][c]);
                            mvi[r][c] = $set1(mi[r][c]);
                        }
                    }
                    let mut j = 0usize;
                    while j + $w <= n {
                        let xr = [
                            $loadu(r0.as_ptr().add(j)),
                            $loadu(r1.as_ptr().add(j)),
                            $loadu(r2.as_ptr().add(j)),
                            $loadu(r3.as_ptr().add(j)),
                        ];
                        let xi = [
                            $loadu(i0.as_ptr().add(j)),
                            $loadu(i1.as_ptr().add(j)),
                            $loadu(i2.as_ptr().add(j)),
                            $loadu(i3.as_ptr().add(j)),
                        ];
                        let mut yr = [zero; 4];
                        let mut yi = [zero; 4];
                        for r in 0..4 {
                            let (tr, ti) = vmul(mvr[r][1], mvi[r][1], xr[1], xi[1]);
                            let (ar, ai) = vmuladd(mvr[r][0], mvi[r][0], xr[0], xi[0], tr, ti);
                            let (ar, ai) = vmuladd(mvr[r][2], mvi[r][2], xr[2], xi[2], ar, ai);
                            let (fr, fi) = vmuladd(mvr[r][3], mvi[r][3], xr[3], xi[3], ar, ai);
                            yr[r] = fr;
                            yi[r] = fi;
                        }
                        $storeu(r0.as_mut_ptr().add(j), yr[0]);
                        $storeu(r1.as_mut_ptr().add(j), yr[1]);
                        $storeu(r2.as_mut_ptr().add(j), yr[2]);
                        $storeu(r3.as_mut_ptr().add(j), yr[3]);
                        $storeu(i0.as_mut_ptr().add(j), yi[0]);
                        $storeu(i1.as_mut_ptr().add(j), yi[1]);
                        $storeu(i2.as_mut_ptr().add(j), yi[2]);
                        $storeu(i3.as_mut_ptr().add(j), yi[3]);
                        j += $w;
                    }
                    while j < n {
                        let xr = [r0[j], r1[j], r2[j], r3[j]];
                        let xi = [i0[j], i1[j], i2[j], i3[j]];
                        let mut yr = [<$t as Scalar>::ZERO; 4];
                        let mut yi = [<$t as Scalar>::ZERO; 4];
                        for r in 0..4 {
                            let (tr, ti) = cplx_mul_parts(mr[r][1], mi[r][1], xr[1], xi[1]);
                            let (ar, ai) =
                                cplx_mul_add_parts(mr[r][0], mi[r][0], xr[0], xi[0], tr, ti);
                            let (ar, ai) =
                                cplx_mul_add_parts(mr[r][2], mi[r][2], xr[2], xi[2], ar, ai);
                            let (fr, fi) =
                                cplx_mul_add_parts(mr[r][3], mi[r][3], xr[3], xi[3], ar, ai);
                            yr[r] = fr;
                            yi[r] = fi;
                        }
                        r0[j] = yr[0];
                        r1[j] = yr[1];
                        r2[j] = yr[2];
                        r3[j] = yr[3];
                        i0[j] = yi[0];
                        i1[j] = yi[1];
                        i2[j] = yi[2];
                        i3[j] = yi[3];
                        j += 1;
                    }
                }
            }
        };
    }

    avx2_width!(
        f64w,
        f64,
        __m256d,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_mul_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_fmadd_pd,
        _mm256_fnmadd_pd
    );
    avx2_width!(
        f32w,
        f32,
        __m256,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps,
        _mm256_sub_ps,
        _mm256_fmadd_ps,
        _mm256_fnmadd_ps
    );
}
