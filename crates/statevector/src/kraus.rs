//! State-dependent Kraus-branch evaluation.
//!
//! Implements the two quantum-state-touching pieces of the paper's
//! Algorithm 1 general-channel path:
//!
//! - line 9, `p_i ← ⟨ψ|K_i†K_i|ψ⟩` — computed for *all* branches in one
//!   streaming pass over the amplitudes ([`kraus_probabilities`]);
//! - line 11, `applyMatrix(K_k/√p_k)` — normalized application of the
//!   chosen branch ([`apply_kraus_normalized`]).
//!
//! The same primitives serve PTSBE's importance weighting: executing a
//! *pre-sampled* general-channel branch returns its realized probability,
//! whose product over sites is the exact trajectory probability `p_α`.

use ptsbe_math::{Complex, Matrix, Scalar};
use rayon::prelude::*;

use crate::state::StateVector;
use crate::PARALLEL_THRESHOLD_QUBITS;

/// Branch probabilities `⟨ψ|K_i†K_i|ψ⟩` for every operator in `ops`,
/// computed in a single pass (specialized for 1- and 2-qubit channels,
/// which is all the noise-model zoo produces).
///
/// Accumulation is in `f64` for the same reason as the bulk sampler.
pub fn kraus_probabilities<T: Scalar>(
    sv: &StateVector<T>,
    ops: &[Matrix<T>],
    qubits: &[usize],
) -> Vec<f64> {
    match qubits.len() {
        1 => kraus_probs_1q(sv, ops, qubits[0]),
        2 => kraus_probs_2q(sv, ops, qubits[0], qubits[1]),
        _ => kraus_probs_fallback(sv, ops, qubits),
    }
}

fn kraus_probs_1q<T: Scalar>(sv: &StateVector<T>, ops: &[Matrix<T>], q: usize) -> Vec<f64> {
    let stride = 1usize << q;
    let entries: Vec<[Complex<T>; 4]> = ops
        .iter()
        .map(|m| [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]])
        .collect();
    let fold_chunk = |chunk: &[Complex<T>]| -> Vec<f64> {
        let mut acc = vec![0.0f64; entries.len()];
        let (lo, hi) = chunk.split_at(stride);
        for (a0, a1) in lo.iter().zip(hi.iter()) {
            for (e, a) in entries.iter().zip(acc.iter_mut()) {
                let y0 = e[0] * *a0 + e[1] * *a1;
                let y1 = e[2] * *a0 + e[3] * *a1;
                *a += y0.norm_sqr().to_f64() + y1.norm_sqr().to_f64();
            }
        }
        acc
    };
    let amps = sv.amplitudes();
    if sv.n_qubits() >= PARALLEL_THRESHOLD_QUBITS {
        amps.par_chunks(2 * stride)
            .map(fold_chunk)
            .reduce(|| vec![0.0f64; ops.len()], add_vecs)
    } else {
        amps.chunks(2 * stride)
            .map(fold_chunk)
            .fold(vec![0.0f64; ops.len()], add_vecs)
    }
}

fn kraus_probs_2q<T: Scalar>(
    sv: &StateVector<T>,
    ops: &[Matrix<T>],
    a: usize,
    b: usize,
) -> Vec<f64> {
    let qh = a.max(b);
    let ql = a.min(b);
    let sh = 1usize << qh;
    let sl = 1usize << ql;
    let pos_to_basis = |h: usize, l: usize| -> usize {
        let bit_a = if a == qh { h } else { l };
        let bit_b = if b == qh { h } else { l };
        (bit_a << 1) | bit_b
    };
    // Remap each operator into local [hl] ordering once.
    let mats: Vec<[[Complex<T>; 4]; 4]> = ops
        .iter()
        .map(|m| {
            let mut mm = [[Complex::<T>::zero(); 4]; 4];
            for (r, row) in mm.iter_mut().enumerate() {
                for (c, entry) in row.iter_mut().enumerate() {
                    *entry = m[(pos_to_basis(r >> 1, r & 1), pos_to_basis(c >> 1, c & 1))];
                }
            }
            mm
        })
        .collect();
    let fold_chunk = |chunk: &[Complex<T>]| -> Vec<f64> {
        let mut acc = vec![0.0f64; mats.len()];
        let mut base = 0usize;
        while base < sh {
            for k in base..base + sl {
                let x = [chunk[k], chunk[k + sl], chunk[k + sh], chunk[k + sh + sl]];
                for (mm, am) in mats.iter().zip(acc.iter_mut()) {
                    let mut p = 0.0f64;
                    for row in mm {
                        let mut y = Complex::<T>::zero();
                        for (c, &xc) in x.iter().enumerate() {
                            y += row[c] * xc;
                        }
                        p += y.norm_sqr().to_f64();
                    }
                    *am += p;
                }
            }
            base += 2 * sl;
        }
        acc
    };
    let amps = sv.amplitudes();
    if sv.n_qubits() >= PARALLEL_THRESHOLD_QUBITS {
        amps.par_chunks(2 * sh)
            .map(fold_chunk)
            .reduce(|| vec![0.0f64; ops.len()], add_vecs)
    } else {
        amps.chunks(2 * sh)
            .map(fold_chunk)
            .fold(vec![0.0f64; ops.len()], add_vecs)
    }
}

/// Fallback for arity ≥ 3: clone, apply, measure norm.
fn kraus_probs_fallback<T: Scalar>(
    sv: &StateVector<T>,
    ops: &[Matrix<T>],
    qubits: &[usize],
) -> Vec<f64> {
    ops.iter()
        .map(|k| {
            let mut copy = sv.clone();
            copy.apply_kq(k, qubits);
            copy.norm_sqr().to_f64()
        })
        .collect()
}

fn add_vecs(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// Apply a (generally non-unitary) Kraus operator and renormalize.
/// Returns the realized branch probability `‖K|ψ⟩‖²`.
pub fn apply_kraus_normalized<T: Scalar>(
    sv: &mut StateVector<T>,
    k: &Matrix<T>,
    qubits: &[usize],
) -> f64 {
    sv.apply_kq(k, qubits);
    let p = sv.norm_sqr().to_f64();
    sv.normalize();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_math::gates;

    fn to_t<T: Scalar>(ms: &[Matrix<f64>]) -> Vec<Matrix<T>> {
        ms.iter().map(Matrix::from_f64_matrix).collect()
    }

    #[test]
    fn amplitude_damping_probs_depend_on_state() {
        let gamma = 0.3f64;
        let ch = ptsbe_circuit::channels::amplitude_damping(gamma);
        let ops: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();

        // On |0⟩: no decay possible, p = [1, 0].
        let sv = StateVector::<f64>::zero_state(1);
        let p = kraus_probabilities(&sv, &to_t(&ops), &[0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12);

        // On |1⟩: decay fires with probability γ.
        let sv = StateVector::<f64>::basis_state(1, 1);
        let p = kraus_probabilities(&sv, &to_t(&ops), &[0]);
        assert!((p[0] - (1.0 - gamma)).abs() < 1e-12);
        assert!((p[1] - gamma).abs() < 1e-12);
    }

    #[test]
    fn probs_sum_to_one_for_any_state() {
        let mut rng = ptsbe_rng::PhiloxRng::new(80, 0);
        let ch = ptsbe_circuit::channels::generalized_amplitude_damping(0.4, 0.3);
        let ops: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();
        for _ in 0..5 {
            let amps = ptsbe_math::random::random_state::<f64>(8, &mut rng);
            let sv = StateVector::from_amplitudes(amps);
            for q in 0..3 {
                let p = kraus_probabilities(&sv, &to_t(&ops), &[q]);
                let total: f64 = p.iter().sum();
                assert!((total - 1.0).abs() < 1e-10, "q={q}: {total}");
            }
        }
    }

    #[test]
    fn unitary_mixture_probs_state_independent() {
        let ch = ptsbe_circuit::channels::depolarizing(0.2);
        let ops: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();
        let mut rng = ptsbe_rng::PhiloxRng::new(81, 0);
        let expected = ch.sampling_probs();
        for _ in 0..3 {
            let amps = ptsbe_math::random::random_state::<f64>(16, &mut rng);
            let sv = StateVector::from_amplitudes(amps);
            let p = kraus_probabilities(&sv, &to_t(&ops), &[2]);
            for (pi, ei) in p.iter().zip(expected) {
                assert!((pi - ei).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn two_qubit_channel_probs() {
        let ch = ptsbe_circuit::channels::depolarizing2(0.3);
        let ops: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();
        let mut rng = ptsbe_rng::PhiloxRng::new(82, 0);
        let amps = ptsbe_math::random::random_state::<f64>(16, &mut rng);
        let sv = StateVector::from_amplitudes(amps);
        for (a, b) in [(0usize, 1usize), (1, 0), (0, 3), (3, 1)] {
            let p = kraus_probabilities(&sv, &to_t(&ops), &[a, b]);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-10);
            for (pi, ei) in p.iter().zip(ch.sampling_probs()) {
                assert!((pi - ei).abs() < 1e-10, "({a},{b})");
            }
        }
    }

    #[test]
    fn fallback_matches_specialized() {
        let ch = ptsbe_circuit::channels::amplitude_damping(0.25);
        let ops: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();
        let mut rng = ptsbe_rng::PhiloxRng::new(83, 0);
        let amps = ptsbe_math::random::random_state::<f64>(8, &mut rng);
        let sv = StateVector::from_amplitudes(amps);
        let fast = kraus_probabilities(&sv, &to_t(&ops), &[1]);
        let slow = kraus_probs_fallback(&sv, &to_t(&ops), &[1]);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-10);
        }
    }

    #[test]
    fn apply_normalized_returns_probability() {
        let gamma = 0.4f64;
        let ch = ptsbe_circuit::channels::amplitude_damping(gamma);
        // |+⟩ state: p(decay) = γ/2.
        let mut sv = StateVector::<f64>::zero_state(1);
        sv.apply_1q(&gates::h(), 0);
        let k1 = Matrix::<f64>::from_f64_matrix(ch.op(1));
        let p = apply_kraus_normalized(&mut sv, &k1, &[0]);
        assert!((p - gamma / 2.0).abs() < 1e-12);
        // Post-state is |0⟩ (decay projects).
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // 15-qubit state exercises the rayon reduction.
        let n = 15;
        let mut sv = StateVector::<f64>::zero_state(n);
        for q in 0..n {
            sv.apply_1q(&gates::ry(0.1 * q as f64), q);
        }
        let ch = ptsbe_circuit::channels::amplitude_damping(0.2);
        let ops: Vec<Matrix<f64>> = ch.ops().iter().map(|k| (**k).clone()).collect();
        let p = kraus_probabilities(&sv, &to_t(&ops), &[7]);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Compare against direct expectation: p1(q7) * gamma.
        let p1 = sv.prob_one(7);
        assert!((p[1] - 0.2 * p1).abs() < 1e-9);
    }
}
