//! The statevector type and its gate kernels.

use ptsbe_math::{vec_ops, Complex, Matrix, Scalar};
use rayon::prelude::*;

use crate::PARALLEL_THRESHOLD_QUBITS;

/// An `n`-qubit pure state: `2^n` amplitudes, qubit `q` = bit `q` of the
/// basis index (LSB-first, matching [`ptsbe_math::gates`] conventions).
#[derive(Clone, Debug)]
pub struct StateVector<T: Scalar> {
    n_qubits: usize,
    amps: Vec<Complex<T>>,
}

impl<T: Scalar> StateVector<T> {
    /// |0…0⟩ on `n_qubits`.
    ///
    /// # Panics
    /// Panics when `n_qubits` exceeds 48 (array indices would overflow
    /// practical memory long before; the guard catches typos).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(
            n_qubits <= 48,
            "statevector of {n_qubits} qubits is not addressable"
        );
        let mut amps = vec![Complex::zero(); 1usize << n_qubits];
        amps[0] = Complex::one();
        Self { n_qubits, amps }
    }

    /// Computational basis state |index⟩.
    pub fn basis_state(n_qubits: usize, index: u64) -> Self {
        let mut sv = Self::zero_state(n_qubits);
        assert!((index as usize) < sv.amps.len(), "basis index out of range");
        sv.amps[0] = Complex::zero();
        sv.amps[index as usize] = Complex::one();
        sv
    }

    /// Wrap raw amplitudes (must have power-of-two length).
    pub fn from_amplitudes(amps: Vec<Complex<T>>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        Self {
            n_qubits: amps.len().trailing_zeros() as usize,
            amps,
        }
    }

    /// Overwrite `self` with `src`'s contents, reusing the existing
    /// amplitude allocation when its capacity allows — the pooled-fork
    /// path (`Backend::fork_into`). Amplitudes are copied verbatim, so a
    /// state forked into a recycled buffer is bitwise identical to a
    /// fresh clone.
    pub fn copy_from(&mut self, src: &Self) {
        self.n_qubits = src.n_qubits;
        self.amps.clone_from(&src.amps);
    }

    /// Reshape to `n_qubits` worth of zeroed amplitudes without giving up
    /// the allocation (scratch-buffer reuse in lane extraction and the
    /// Algorithm-1 baseline loop).
    pub fn reinit(&mut self, n_qubits: usize) {
        assert!(
            n_qubits <= 48,
            "statevector of {n_qubits} qubits is not addressable"
        );
        self.n_qubits = n_qubits;
        self.amps.clear();
        self.amps.resize(1usize << n_qubits, Complex::zero());
    }

    /// Reset to `|0…0⟩` in place (allocation-free re-preparation).
    pub fn reset_zero(&mut self) {
        self.amps.fill(Complex::zero());
        self.amps[0] = Complex::one();
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Amplitude storage.
    pub fn amplitudes(&self) -> &[Complex<T>] {
        &self.amps
    }

    /// Mutable amplitude storage (tests and internal kernels).
    pub fn amplitudes_mut(&mut self) -> &mut [Complex<T>] {
        &mut self.amps
    }

    /// `⟨ψ|ψ⟩`.
    pub fn norm_sqr(&self) -> T {
        if self.use_parallel() {
            self.amps
                .par_chunks(4096)
                .map(|c| c.iter().map(|z| z.norm_sqr()).fold(T::ZERO, |a, b| a + b))
                .reduce(|| T::ZERO, |a, b| a + b)
        } else {
            vec_ops::norm_sqr(&self.amps)
        }
    }

    /// Normalize in place; returns the pre-normalization squared norm.
    pub fn normalize(&mut self) -> T {
        let n2 = self.norm_sqr();
        if n2 > T::ZERO {
            let inv = T::ONE / n2.sqrt();
            if self.use_parallel() {
                self.amps.par_iter_mut().for_each(|z| *z = z.scale(inv));
            } else {
                for z in &mut self.amps {
                    *z = z.scale(inv);
                }
            }
        }
        n2
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: u64) -> T {
        self.amps[index as usize].norm_sqr()
    }

    /// Full probability vector (2^n entries) — use only for small `n`;
    /// the samplers stream probabilities instead.
    pub fn probabilities(&self) -> Vec<T> {
        self.amps.iter().map(|z| z.norm_sqr()).collect()
    }

    /// `⟨ψ|φ⟩`.
    pub fn inner(&self, other: &Self) -> Complex<T> {
        assert_eq!(self.n_qubits, other.n_qubits);
        vec_ops::inner(&self.amps, &other.amps)
    }

    /// `|⟨ψ|φ⟩|²`.
    pub fn fidelity(&self, other: &Self) -> T {
        self.inner(other).norm_sqr()
    }

    /// Probability that qubit `q` measures 1.
    pub fn prob_one(&self, q: usize) -> T {
        assert!(q < self.n_qubits);
        let mask = 1usize << q;
        if self.use_parallel() {
            self.amps
                .par_iter()
                .enumerate()
                .map(|(i, z)| if i & mask != 0 { z.norm_sqr() } else { T::ZERO })
                .reduce(|| T::ZERO, |a, b| a + b)
        } else {
            self.amps
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, z)| z.norm_sqr())
                .fold(T::ZERO, |a, b| a + b)
        }
    }

    /// `⟨ψ|Z_q|ψ⟩`.
    pub fn expectation_z(&self, q: usize) -> T {
        T::ONE - T::TWO * self.prob_one(q)
    }

    #[inline]
    fn use_parallel(&self) -> bool {
        self.n_qubits >= PARALLEL_THRESHOLD_QUBITS
    }

    // ----- gate kernels -------------------------------------------------

    /// Apply a single-qubit gate.
    pub fn apply_1q(&mut self, m: &Matrix<T>, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert_eq!((m.rows(), m.cols()), (2, 2));
        let e = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
        let stride = 1usize << q;
        let kernel = |chunk: &mut [Complex<T>]| {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let (y0, y1) = vec_ops::mat2_apply(&e, *a0, *a1);
                *a0 = y0;
                *a1 = y1;
            }
        };
        if self.use_parallel() {
            self.amps.par_chunks_mut(2 * stride).for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * stride).for_each(kernel);
        }
    }

    /// Apply a two-qubit gate; matrix basis is `(bit_a << 1) | bit_b` for
    /// qubit arguments `(a, b)` per the [`ptsbe_math::gates`] convention.
    pub fn apply_2q(&mut self, m: &Matrix<T>, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        assert_eq!((m.rows(), m.cols()), (4, 4));
        let qh = a.max(b);
        let ql = a.min(b);
        let sh = 1usize << qh;
        let sl = 1usize << ql;
        let mm = local_2q_matrix(m, a, b);
        let kernel = move |chunk: &mut [Complex<T>]| {
            // chunk covers bits 0..=qh; enumerate positions with both gate
            // bits clear.
            let mut base = 0usize;
            while base < sh {
                for k in base..base + sl {
                    let i00 = k;
                    let i01 = k + sl;
                    let i10 = k + sh;
                    let i11 = k + sh + sl;
                    let x = [chunk[i00], chunk[i01], chunk[i10], chunk[i11]];
                    let y = vec_ops::mat4_apply(&mm, &x);
                    chunk[i00] = y[0];
                    chunk[i01] = y[1];
                    chunk[i10] = y[2];
                    chunk[i11] = y[3];
                }
                base += 2 * sl;
            }
        };
        if self.use_parallel() {
            self.amps.par_chunks_mut(2 * sh).for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * sh).for_each(kernel);
        }
    }

    /// Diagonal single-qubit fast path: `amp[i] *= d[bit_q(i)]` — a pure
    /// phase multiply, no amplitude movement or gather.
    pub fn apply_diag_1q(&mut self, d: &[Complex<T>; 2], q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        let (d0, d1) = (d[0], d[1]);
        let kernel = move |(i, z): (usize, &mut Complex<T>)| {
            *z *= if i & mask != 0 { d1 } else { d0 };
        };
        if self.use_parallel() {
            self.amps.par_iter_mut().enumerate().for_each(kernel);
        } else {
            self.amps.iter_mut().enumerate().for_each(kernel);
        }
    }

    /// Diagonal two-qubit fast path; `d` is indexed in the gate basis
    /// `(bit_a << 1) | bit_b`.
    pub fn apply_diag_2q(&mut self, d: &[Complex<T>; 4], a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        let d = *d;
        let kernel = move |(i, z): (usize, &mut Complex<T>)| {
            let idx = (((i >> a) & 1) << 1) | ((i >> b) & 1);
            *z *= d[idx];
        };
        if self.use_parallel() {
            self.amps.par_iter_mut().enumerate().for_each(kernel);
        } else {
            self.amps.iter_mut().enumerate().for_each(kernel);
        }
    }

    /// Single-qubit permutation fast path:
    /// `out[r] = phase[r] * in[perm[r]]` in the qubit's local basis — an
    /// index shuffle with phases, one multiply per amplitude.
    pub fn apply_perm_1q(&mut self, perm: &[usize; 2], phase: &[Complex<T>; 2], q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert!(perm[0] < 2 && perm[1] < 2);
        let stride = 1usize << q;
        let (perm, phase) = (*perm, *phase);
        let kernel = move |chunk: &mut [Complex<T>]| {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x = [*a0, *a1];
                *a0 = phase[0] * x[perm[0]];
                *a1 = phase[1] * x[perm[1]];
            }
        };
        if self.use_parallel() {
            self.amps.par_chunks_mut(2 * stride).for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * stride).for_each(kernel);
        }
    }

    /// Two-qubit permutation fast path; `perm`/`phase` are in the gate
    /// basis `(bit_a << 1) | bit_b` with the semantics
    /// `out[r] = phase[r] * in[perm[r]]`.
    pub fn apply_perm_2q(
        &mut self,
        perm: &[usize; 4],
        phase: &[Complex<T>; 4],
        a: usize,
        b: usize,
    ) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        assert!(perm.iter().all(|&p| p < 4));
        let qh = a.max(b);
        let ql = a.min(b);
        let sh = 1usize << qh;
        let sl = 1usize << ql;
        let (lperm, lphase) = local_2q_perm(perm, phase, a, b);
        let kernel = move |chunk: &mut [Complex<T>]| {
            let mut base = 0usize;
            while base < sh {
                for k in base..base + sl {
                    let x = [chunk[k], chunk[k + sl], chunk[k + sh], chunk[k + sh + sl]];
                    chunk[k] = lphase[0] * x[lperm[0]];
                    chunk[k + sl] = lphase[1] * x[lperm[1]];
                    chunk[k + sh] = lphase[2] * x[lperm[2]];
                    chunk[k + sh + sl] = lphase[3] * x[lperm[3]];
                }
                base += 2 * sl;
            }
        };
        if self.use_parallel() {
            self.amps.par_chunks_mut(2 * sh).for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * sh).for_each(kernel);
        }
    }

    /// CNOT fast path (pure permutation, no arithmetic).
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        let cm = 1usize << control;
        let tm = 1usize << target;
        let qh = control.max(target);
        let sh = 1usize << qh;
        let kernel = move |(ci, chunk): (usize, &mut [Complex<T>])| {
            let chunk_base = ci * 2 * sh;
            for i in 0..chunk.len() {
                let g = chunk_base + i;
                // Visit each swapped pair once: control set, target clear.
                if g & cm != 0 && g & tm == 0 {
                    chunk.swap(i, i + tm);
                }
            }
        };
        // Chunks must contain both pair elements: target bit < chunk span.
        if self.use_parallel() {
            self.amps
                .par_chunks_mut(2 * sh)
                .enumerate()
                .for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * sh).enumerate().for_each(kernel);
        }
    }

    /// CZ fast path (diagonal).
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        let mask = (1usize << a) | (1usize << b);
        let flip = |(i, z): (usize, &mut Complex<T>)| {
            if i & mask == mask {
                *z = -*z;
            }
        };
        if self.use_parallel() {
            self.amps.par_iter_mut().enumerate().for_each(flip);
        } else {
            self.amps.iter_mut().enumerate().for_each(flip);
        }
    }

    /// SWAP fast path.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        let am = 1usize << a;
        let bm = 1usize << b;
        let qh = a.max(b);
        let sh = 1usize << qh;
        let kernel = move |(ci, chunk): (usize, &mut [Complex<T>])| {
            let chunk_base = ci * 2 * sh;
            for i in 0..chunk.len() {
                let g = chunk_base + i;
                // Swap |…a=1…b=0…⟩ with |…a=0…b=1…⟩, visiting once.
                if g & am != 0 && g & bm == 0 {
                    let j = i - am + bm;
                    chunk.swap(i, j);
                }
            }
        };
        if self.use_parallel() {
            self.amps
                .par_chunks_mut(2 * sh)
                .enumerate()
                .for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * sh).enumerate().for_each(kernel);
        }
    }

    /// Apply a `k`-qubit gate (general bit-gather kernel; used for Toffoli
    /// and compiled multi-qubit unitaries).
    pub fn apply_kq(&mut self, m: &Matrix<T>, qubits: &[usize]) {
        let k = qubits.len();
        assert!((1..=16).contains(&k), "apply_kq supports 1..=16 qubits");
        assert_eq!(m.rows(), 1usize << k);
        for &q in qubits {
            assert!(q < self.n_qubits);
        }
        if k == 1 {
            return self.apply_1q(m, qubits[0]);
        }
        if k == 2 {
            return self.apply_2q(m, qubits[0], qubits[1]);
        }
        // Sorted copy for zero-bit enumeration; remember the basis mapping:
        // gate basis bit (k-1-t) corresponds to qubits[t] (first argument =
        // most significant, as in ptsbe_math::gates). k ≤ 16, so the copy
        // lives on the stack instead of allocating per call.
        let mut sorted_buf = [0usize; 16];
        sorted_buf[..k].copy_from_slice(qubits);
        sorted_buf[..k].sort_unstable();
        let sorted: &[usize] = &sorted_buf[..k];
        let dim = 1usize << k;
        // For each gate-basis index, the global offset it adds.
        let mut offsets = vec![0usize; dim];
        for (g, slot) in offsets.iter_mut().enumerate() {
            let mut off = 0usize;
            for (t, &q) in qubits.iter().enumerate() {
                let bit = (g >> (k - 1 - t)) & 1;
                off |= bit << q;
            }
            *slot = off;
        }
        let qh = *sorted.last().unwrap();
        let sh = 1usize << qh;
        let sorted = &sorted;
        let offsets = &offsets;
        let kernel = move |(ci, chunk): (usize, &mut [Complex<T>])| {
            let chunk_base = ci * 2 * sh;
            let free_bits = (qh + 1) - k; // free bit positions inside chunk
            let n_groups = 1usize << free_bits;
            let mut x = vec![Complex::<T>::zero(); dim];
            for gidx in 0..n_groups {
                // Expand gidx by inserting 0 at each gate-qubit position.
                let mut base = 0usize;
                let mut src = gidx;
                let mut next_q = 0usize;
                let mut qi = 0usize;
                for pos in 0..=qh {
                    if qi < sorted.len() && sorted[qi] == pos {
                        qi += 1;
                        continue;
                    }
                    let bit = src & 1;
                    src >>= 1;
                    base |= bit << pos;
                    next_q += 1;
                }
                let _ = next_q;
                // The chunk may start at a non-zero global base, but gate
                // qubits are all ≤ qh so offsets stay inside the chunk.
                let local = base & (2 * sh - 1);
                debug_assert_eq!(base, local);
                let _ = chunk_base;
                for (g, &off) in offsets.iter().enumerate() {
                    x[g] = chunk[local + off];
                }
                for (r, &_off) in offsets.iter().enumerate() {
                    let mut acc = Complex::zero();
                    for (c, &xc) in x.iter().enumerate() {
                        acc += m[(r, c)] * xc;
                    }
                    chunk[local + offsets[r]] = acc;
                }
            }
        };
        if self.use_parallel() {
            self.amps
                .par_chunks_mut(2 * sh)
                .enumerate()
                .for_each(kernel);
        } else {
            self.amps.chunks_mut(2 * sh).enumerate().for_each(kernel);
        }
    }

    // ----- measurement & reset ------------------------------------------

    /// Collapse qubit `q` to the given outcome with proper renormalization.
    /// Returns the probability the outcome had.
    pub fn collapse(&mut self, q: usize, outcome: bool) -> T {
        let p1 = self.prob_one(q);
        let p = if outcome { p1 } else { T::ONE - p1 };
        let mask = 1usize << q;
        let keep_set = outcome;
        if p > T::ZERO {
            let inv = T::ONE / p.sqrt();
            let fix = move |(i, z): (usize, &mut Complex<T>)| {
                if (i & mask != 0) == keep_set {
                    *z = z.scale(inv);
                } else {
                    *z = Complex::zero();
                }
            };
            if self.use_parallel() {
                self.amps.par_iter_mut().enumerate().for_each(fix);
            } else {
                self.amps.iter_mut().enumerate().for_each(fix);
            }
        }
        p
    }

    /// Project qubit `q` onto |0⟩ (measure-and-flip-if-1 semantics).
    pub fn reset(&mut self, q: usize, measured_one: bool) {
        if measured_one {
            self.collapse(q, true);
            self.apply_1q(&ptsbe_math::gates::x(), q);
        } else {
            self.collapse(q, false);
        }
    }
}

/// Remap a two-qubit gate matrix from the `(bit_a << 1) | bit_b` argument
/// basis to local positions `[hl]` (h = high-qubit bit, l = low-qubit
/// bit) — the gather order of the 2-qubit amplitude sweeps. Shared by the
/// scalar and batch-major kernels so both read identical entries.
pub(crate) fn local_2q_matrix<T: Scalar>(
    m: &Matrix<T>,
    a: usize,
    b: usize,
) -> [[Complex<T>; 4]; 4] {
    let qh = a.max(b);
    let pos_to_basis = |h: usize, l: usize| -> usize {
        let bit_a = if a == qh { h } else { l };
        let bit_b = if b == qh { h } else { l };
        (bit_a << 1) | bit_b
    };
    let mut mm = [[Complex::<T>::zero(); 4]; 4];
    for (r, row) in mm.iter_mut().enumerate() {
        for (c, entry) in row.iter_mut().enumerate() {
            let (rh, rl) = (r >> 1, r & 1);
            let (ch, cl) = (c >> 1, c & 1);
            *entry = m[(pos_to_basis(rh, rl), pos_to_basis(ch, cl))];
        }
    }
    mm
}

/// Remap a gate-basis permutation/phase pair to local `[hl]` positions,
/// mirroring [`local_2q_matrix`].
pub(crate) fn local_2q_perm<T: Scalar>(
    perm: &[usize; 4],
    phase: &[Complex<T>; 4],
    a: usize,
    b: usize,
) -> ([usize; 4], [Complex<T>; 4]) {
    let qh = a.max(b);
    let pos_to_basis = |h: usize, l: usize| -> usize {
        let bit_a = if a == qh { h } else { l };
        let bit_b = if b == qh { h } else { l };
        (bit_a << 1) | bit_b
    };
    let mut basis_to_pos = [0usize; 4];
    for h in 0..2 {
        for l in 0..2 {
            basis_to_pos[pos_to_basis(h, l)] = (h << 1) | l;
        }
    }
    let mut lperm = [0usize; 4];
    let mut lphase = [Complex::<T>::zero(); 4];
    for h in 0..2 {
        for l in 0..2 {
            let r_local = (h << 1) | l;
            let r_gate = pos_to_basis(h, l);
            lperm[r_local] = basis_to_pos[perm[r_gate]];
            lphase[r_local] = phase[r_gate];
        }
    }
    (lperm, lphase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_math::gates;

    type Sv = StateVector<f64>;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn zero_state_normalized() {
        let sv = Sv::zero_state(3);
        assert_close(sv.norm_sqr(), 1.0);
        assert_close(sv.probability(0), 1.0);
    }

    #[test]
    fn basis_state_construction() {
        let sv = Sv::basis_state(3, 5);
        assert_close(sv.probability(5), 1.0);
        assert_close(sv.prob_one(0), 1.0); // 5 = 0b101
        assert_close(sv.prob_one(1), 0.0);
        assert_close(sv.prob_one(2), 1.0);
    }

    #[test]
    fn hadamard_makes_plus() {
        let mut sv = Sv::zero_state(1);
        sv.apply_1q(&gates::h(), 0);
        assert_close(sv.probability(0), 0.5);
        assert_close(sv.probability(1), 0.5);
        // H twice = identity.
        sv.apply_1q(&gates::h(), 0);
        assert_close(sv.probability(0), 1.0);
    }

    #[test]
    fn bell_state() {
        let mut sv = Sv::zero_state(2);
        sv.apply_1q(&gates::h(), 0);
        sv.apply_cx(0, 1);
        assert_close(sv.probability(0b00), 0.5);
        assert_close(sv.probability(0b11), 0.5);
        assert_close(sv.probability(0b01), 0.0);
        assert_close(sv.probability(0b10), 0.0);
    }

    #[test]
    fn cx_via_matrix_matches_fast_path() {
        for (c, t) in [(0usize, 1usize), (1, 0), (0, 2), (2, 0), (1, 2)] {
            let mut a = Sv::zero_state(3);
            let mut b = Sv::zero_state(3);
            // Arbitrary product state.
            a.apply_1q(&gates::ry(0.7), 0);
            a.apply_1q(&gates::ry(1.1), 1);
            a.apply_1q(&gates::rx(0.3), 2);
            b.amps.copy_from_slice(&a.amps);

            a.apply_cx(c, t);
            b.apply_2q(&gates::cx(), c, t);
            for i in 0..8 {
                assert!((a.amps[i] - b.amps[i]).abs() < 1e-12, "c={c} t={t} i={i}");
            }
        }
    }

    #[test]
    fn swap_and_cz_fast_paths() {
        for (a_, b_) in [(0usize, 1usize), (2, 0), (1, 2)] {
            let mut x = Sv::zero_state(3);
            x.apply_1q(&gates::ry(0.4), 0);
            x.apply_1q(&gates::rx(0.9), 1);
            x.apply_1q(&gates::h(), 2);
            let mut y = x.clone();

            x.apply_swap(a_, b_);
            y.apply_2q(&gates::swap(), a_, b_);
            for i in 0..8 {
                assert!((x.amps[i] - y.amps[i]).abs() < 1e-12);
            }

            let mut u = x.clone();
            let mut v = x.clone();
            u.apply_cz(a_, b_);
            v.apply_2q(&gates::cz(), a_, b_);
            for i in 0..8 {
                assert!((u.amps[i] - v.amps[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_qubit_gate_qubit_order_matters() {
        // CX(0,1) on |01⟩=|q1=0,q0=1⟩: control=q0 is 1 -> flips q1 -> |11⟩.
        let mut sv = Sv::basis_state(2, 0b01);
        sv.apply_2q(&gates::cx(), 0, 1);
        assert_close(sv.probability(0b11), 1.0);
        // CX(1,0) on |01⟩: control=q1 is 0 -> no-op.
        let mut sv = Sv::basis_state(2, 0b01);
        sv.apply_2q(&gates::cx(), 1, 0);
        assert_close(sv.probability(0b01), 1.0);
    }

    #[test]
    fn ghz_state() {
        let n = 5;
        let mut sv = Sv::zero_state(n);
        sv.apply_1q(&gates::h(), 0);
        for q in 0..n - 1 {
            sv.apply_cx(q, q + 1);
        }
        assert_close(sv.probability(0), 0.5);
        assert_close(sv.probability((1 << n) - 1), 0.5);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn toffoli_via_kq() {
        // |110⟩: controls q2,q1 set (ccx(2,1,0)) -> flips q0 -> |111⟩.
        let mut sv = Sv::basis_state(3, 0b110);
        sv.apply_kq(&gates::ccx(), &[2, 1, 0]);
        assert_close(sv.probability(0b111), 1.0);
        // |010⟩ unchanged.
        let mut sv = Sv::basis_state(3, 0b010);
        sv.apply_kq(&gates::ccx(), &[2, 1, 0]);
        assert_close(sv.probability(0b010), 1.0);
    }

    #[test]
    fn kq_matches_2q_kernel() {
        let mut rng = ptsbe_rng::PhiloxRng::new(7, 0);
        let u = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
        for (a, b) in [(0usize, 1usize), (1, 0), (0, 2), (2, 1)] {
            let mut x = Sv::zero_state(3);
            x.apply_1q(&gates::ry(0.5), 0);
            x.apply_1q(&gates::ry(0.2), 1);
            x.apply_1q(&gates::ry(1.4), 2);
            let mut y = x.clone();
            x.apply_2q(&u, a, b);
            y.apply_kq(&u, &[a, b]);
            for i in 0..8 {
                assert!((x.amps[i] - y.amps[i]).abs() < 1e-12, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut rng = ptsbe_rng::PhiloxRng::new(8, 0);
        let mut sv = Sv::zero_state(6);
        for step in 0..20 {
            let u = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
            sv.apply_1q(&u, step % 6);
            let u2 = ptsbe_math::random::haar_unitary::<f64>(4, &mut rng);
            sv.apply_2q(&u2, step % 6, (step + 1) % 6);
        }
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn parallel_threshold_kernels_match_serial() {
        // 15 qubits crosses PARALLEL_THRESHOLD_QUBITS; verify against a
        // 10-qubit serial run embedded in the low bits.
        let n = 15;
        let mut par = Sv::zero_state(n);
        let mut reference = Sv::zero_state(10);
        let ops: Vec<(usize, usize)> = vec![(0, 1), (3, 2), (5, 0), (7, 4), (9, 8)];
        for &(a, b) in &ops {
            par.apply_1q(&gates::h(), a);
            par.apply_cx(a, b);
            reference.apply_1q(&gates::h(), a);
            reference.apply_cx(a, b);
        }
        // Compare marginals on the low 10 qubits.
        for i in 0..(1usize << 10) {
            assert!(
                (par.amps[i] - reference.amps[i]).abs() < 1e-12,
                "amp {i} differs"
            );
        }
        assert_close(par.norm_sqr(), 1.0);
    }

    #[test]
    fn expectation_and_prob_one() {
        let mut sv = Sv::zero_state(2);
        assert_close(sv.expectation_z(0), 1.0);
        sv.apply_1q(&gates::x(), 0);
        assert_close(sv.expectation_z(0), -1.0);
        sv.apply_1q(&gates::h(), 1);
        assert_close(sv.expectation_z(1), 0.0);
        assert_close(sv.prob_one(1), 0.5);
    }

    #[test]
    fn collapse_renormalizes() {
        let mut sv = Sv::zero_state(2);
        sv.apply_1q(&gates::h(), 0);
        sv.apply_cx(0, 1);
        let p = sv.collapse(0, true);
        assert_close(p, 0.5);
        assert_close(sv.norm_sqr(), 1.0);
        assert_close(sv.probability(0b11), 1.0);
    }

    #[test]
    fn reset_forces_zero() {
        let mut sv = Sv::zero_state(1);
        sv.apply_1q(&gates::x(), 0);
        sv.reset(0, true);
        assert_close(sv.probability(0), 1.0);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn fidelity_of_rotated_states() {
        let mut a = Sv::zero_state(1);
        let mut b = Sv::zero_state(1);
        b.apply_1q(&gates::ry(0.6), 0);
        a.apply_1q(&gates::ry(0.2), 0);
        // |<a|b>|^2 = cos^2((0.6-0.2)/2)
        let expect = (0.2f64).cos().powi(2);
        assert_close(a.fidelity(&b), expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_bounds() {
        let mut sv = Sv::zero_state(2);
        sv.apply_1q(&gates::h(), 2);
    }

    // ----- fused kernel classes vs generic dense apply ------------------

    /// A random (unnormalized-phase) state to exercise every amplitude.
    fn random_state(n: usize, seed: u64) -> Sv {
        let mut rng = ptsbe_rng::PhiloxRng::new(seed, 0);
        let mut sv = Sv::zero_state(n);
        for q in 0..n {
            let u = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
            sv.apply_1q(&u, q);
        }
        for q in 0..n - 1 {
            sv.apply_cx(q, q + 1);
            sv.apply_1q(&gates::t(), q);
        }
        sv
    }

    fn assert_states_close(a: &Sv, b: &Sv, label: &str) {
        for (i, (x, y)) in a.amps.iter().zip(&b.amps).enumerate() {
            assert!((*x - *y).abs() < 1e-12, "{label}: amp {i} differs");
        }
    }

    #[test]
    fn diag_1q_matches_dense_including_edge_qubits() {
        let n = 5;
        for q in [0, 2, n - 1] {
            let mut fast = random_state(n, 500 + q as u64);
            let mut dense = fast.clone();
            let d = [
                ptsbe_math::Complex::cis(0.3),
                ptsbe_math::Complex::cis(-1.1),
            ];
            let mut m = ptsbe_math::Matrix::<f64>::zeros(2, 2);
            m[(0, 0)] = d[0];
            m[(1, 1)] = d[1];
            fast.apply_diag_1q(&d, q);
            dense.apply_1q(&m, q);
            assert_states_close(&fast, &dense, &format!("diag1 q={q}"));
        }
    }

    #[test]
    fn diag_2q_matches_dense_on_all_pairs() {
        let n = 4;
        // Includes non-adjacent pairs, both argument orders, and the
        // top/bottom qubits.
        for (a, b) in [(0usize, 1usize), (1, 0), (0, 3), (3, 0), (1, 3), (2, 1)] {
            let mut fast = random_state(n, 600);
            let mut dense = fast.clone();
            let d = [
                ptsbe_math::Complex::cis(0.2),
                ptsbe_math::Complex::cis(1.7),
                ptsbe_math::Complex::cis(-0.4),
                ptsbe_math::Complex::cis(2.9),
            ];
            let mut m = ptsbe_math::Matrix::<f64>::zeros(4, 4);
            for i in 0..4 {
                m[(i, i)] = d[i];
            }
            fast.apply_diag_2q(&d, a, b);
            dense.apply_2q(&m, a, b);
            assert_states_close(&fast, &dense, &format!("diag2 a={a} b={b}"));
        }
    }

    #[test]
    fn perm_1q_matches_dense_including_edge_qubits() {
        let n = 5;
        // Y-like op: off-diagonal with phases.
        let perm = [1usize, 0];
        let phase = [
            ptsbe_math::Complex::cis(0.9),
            ptsbe_math::Complex::cis(-2.2),
        ];
        for q in [0, 3, n - 1] {
            let mut fast = random_state(n, 700 + q as u64);
            let mut dense = fast.clone();
            let mut m = ptsbe_math::Matrix::<f64>::zeros(2, 2);
            m[(0, perm[0])] = phase[0];
            m[(1, perm[1])] = phase[1];
            fast.apply_perm_1q(&perm, &phase, q);
            dense.apply_1q(&m, q);
            assert_states_close(&fast, &dense, &format!("perm1 q={q}"));
        }
    }

    #[test]
    fn perm_2q_matches_dense_on_all_pairs() {
        let n = 4;
        // A 4-cycle with phases: out[r] = phase[r] * in[perm[r]].
        let perm = [2usize, 0, 3, 1];
        let phase = [
            ptsbe_math::Complex::cis(0.1),
            ptsbe_math::Complex::cis(1.2),
            ptsbe_math::Complex::cis(-0.7),
            ptsbe_math::Complex::cis(2.4),
        ];
        let mut m = ptsbe_math::Matrix::<f64>::zeros(4, 4);
        for r in 0..4 {
            m[(r, perm[r])] = phase[r];
        }
        // Non-adjacent pairs, both argument orders, top/bottom qubits.
        for (a, b) in [(0usize, 1usize), (1, 0), (0, 3), (3, 0), (2, 0), (1, 3)] {
            let mut fast = random_state(n, 800);
            let mut dense = fast.clone();
            fast.apply_perm_2q(&perm, &phase, a, b);
            dense.apply_2q(&m, a, b);
            assert_states_close(&fast, &dense, &format!("perm2 a={a} b={b}"));
        }
    }

    #[test]
    fn copy_from_recycles_allocation_bitwise() {
        let src = random_state(6, 900);
        // Dirty destination of a different size: copy must fully overwrite
        // and adopt the source shape without allocating when capacity fits.
        let mut dst = random_state(6, 901);
        let cap_before = dst.amps.capacity();
        let ptr_before = dst.amps.as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst.n_qubits(), 6);
        assert_eq!(dst.amps.capacity(), cap_before);
        assert_eq!(dst.amps.as_ptr(), ptr_before, "must reuse the buffer");
        for (a, b) in dst.amps.iter().zip(&src.amps) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // Smaller source: shape shrinks, stale tail cannot survive.
        let small = random_state(3, 902);
        dst.copy_from(&small);
        assert_eq!(dst.n_qubits(), 3);
        assert_eq!(dst.amplitudes().len(), 8);
    }

    #[test]
    fn reinit_and_reset_zero_reuse_buffer() {
        let mut sv = random_state(5, 903);
        let ptr = sv.amps.as_ptr();
        sv.reset_zero();
        assert_eq!(sv.amps.as_ptr(), ptr);
        assert_close(sv.probability(0), 1.0);
        assert_close(sv.norm_sqr(), 1.0);
        sv.reinit(4);
        assert_eq!(sv.n_qubits(), 4);
        assert!(sv.amplitudes().iter().all(|z| *z == Complex::zero()));
    }

    #[test]
    fn fast_kernels_match_dense_above_parallel_threshold() {
        // Cross PARALLEL_THRESHOLD_QUBITS so the rayon branches of the
        // diagonal/permutation kernels are exercised too.
        let n = crate::PARALLEL_THRESHOLD_QUBITS + 1;
        let mut fast = Sv::zero_state(n);
        for q in 0..n {
            fast.apply_1q(&gates::h(), q);
        }
        let mut dense = fast.clone();
        let d = [
            ptsbe_math::Complex::cis(0.5),
            ptsbe_math::Complex::cis(-0.8),
        ];
        let mut dm = ptsbe_math::Matrix::<f64>::zeros(2, 2);
        dm[(0, 0)] = d[0];
        dm[(1, 1)] = d[1];
        fast.apply_diag_1q(&d, n - 1);
        dense.apply_1q(&dm, n - 1);

        let perm = [1usize, 0];
        let phase = [ptsbe_math::Complex::one(), ptsbe_math::Complex::one()];
        let mut pm = ptsbe_math::Matrix::<f64>::zeros(2, 2);
        pm[(0, 1)] = phase[0];
        pm[(1, 0)] = phase[1];
        fast.apply_perm_1q(&perm, &phase, 0);
        dense.apply_1q(&pm, 0);

        let cx_perm = [0usize, 1, 3, 2];
        let cx_phase = [ptsbe_math::Complex::one(); 4];
        fast.apply_perm_2q(&cx_perm, &cx_phase, n - 1, 0);
        dense.apply_2q(&gates::cx(), n - 1, 0);
        for i in (0..1usize << n).step_by(127) {
            assert!((fast.amps[i] - dense.amps[i]).abs() < 1e-12, "amp {i}");
        }
    }
}
