//! Bulk shot sampling — the quantitative core of Batched Execution.
//!
//! The paper's BE step samples all `m_α` shots for a trajectory from one
//! prepared state, amortizing the exponential preparation cost over the
//! whole batch ("a task of mere polynomial complexity"). Two bulk
//! strategies are implemented, both deterministic under a Philox stream:
//!
//! - **sorted merge** (default): draw `m` sorted uniforms in O(m)
//!   ([`ptsbe_rng::sorted`]), then resolve all of them in a *single*
//!   streaming pass over the amplitudes — O(2^n + m) total, parallelized
//!   over amplitude chunks;
//! - **alias table**: O(2^n) table build then O(1) per shot; wins only
//!   when `m` vastly exceeds the state size (ablation `bulk_sampling`
//!   bench quantifies the crossover).
//!
//! Probabilities are accumulated in `f64` regardless of the amplitude
//! precision: at `n = 2^20+` amplitudes an `f32` running sum would lose
//! the very tail probabilities bulk sampling is supposed to resolve.

use ptsbe_math::Scalar;
use ptsbe_rng::{sorted::sorted_uniforms, AliasTable, Rng};
use rayon::prelude::*;

use crate::state::StateVector;

/// Bulk sampling strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingStrategy {
    /// Choose automatically from `m` and the state size.
    #[default]
    Auto,
    /// Sorted-uniform single-pass merge (O(2^n + m)).
    SortedMerge,
    /// Walker alias table (O(2^n) build, O(1) per shot).
    Alias,
}

/// Minimum amplitude count before the merge parallelizes.
const PAR_MIN_AMPS: usize = 1 << 14;

/// Draw `m` basis-index shots from `|ψ|²`.
///
/// Output order is unspecified (sorted for the merge strategy); shots are
/// exchangeable, so callers needing iid *order* should shuffle.
pub fn sample_shots<T: Scalar, R: Rng + ?Sized>(
    sv: &StateVector<T>,
    m: usize,
    rng: &mut R,
    strategy: SamplingStrategy,
) -> Vec<u64> {
    if m == 0 {
        return Vec::new();
    }
    let n_amps = sv.amplitudes().len();
    let use_alias = match strategy {
        SamplingStrategy::Alias => true,
        SamplingStrategy::SortedMerge => false,
        // The merge is O(2^n + m) with a tiny constant; the alias table
        // only pays off once per-shot cost dominates the build by a wide
        // margin.
        SamplingStrategy::Auto => m >= n_amps.saturating_mul(8),
    };
    if use_alias {
        sample_alias(sv, m, rng)
    } else {
        sample_sorted_merge(sv, m, rng)
    }
}

fn sample_alias<T: Scalar, R: Rng + ?Sized>(
    sv: &StateVector<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u64> {
    let weights: Vec<f64> = sv
        .amplitudes()
        .iter()
        .map(|z| z.norm_sqr().to_f64())
        .collect();
    let table = AliasTable::new(&weights);
    (0..m).map(|_| table.sample(rng) as u64).collect()
}

fn sample_sorted_merge<T: Scalar, R: Rng + ?Sized>(
    sv: &StateVector<T>,
    m: usize,
    rng: &mut R,
) -> Vec<u64> {
    let amps = sv.amplitudes();
    let u = sorted_uniforms(m, rng);

    if amps.len() < PAR_MIN_AMPS {
        // Serial single pass.
        let total: f64 = amps.iter().map(|z| z.norm_sqr().to_f64()).sum();
        let inv_total = 1.0 / total;
        let mut out = Vec::with_capacity(m);
        let mut cum = 0.0f64;
        let mut j = 0usize;
        for (i, z) in amps.iter().enumerate() {
            cum += z.norm_sqr().to_f64() * inv_total;
            while j < u.len() && u[j] < cum {
                out.push(i as u64);
                j += 1;
            }
            if j == u.len() {
                break;
            }
        }
        while out.len() < m {
            out.push((amps.len() - 1) as u64);
        }
        return out;
    }

    // Parallel: per-chunk mass, exclusive prefix, then each chunk resolves
    // its own slice of the sorted uniforms independently.
    let chunk = 1usize << 13;
    let chunk_mass: Vec<f64> = amps
        .par_chunks(chunk)
        .map(|c| c.iter().map(|z| z.norm_sqr().to_f64()).sum())
        .collect();
    let total: f64 = chunk_mass.iter().sum();
    let inv_total = 1.0 / total;
    let mut prefix = Vec::with_capacity(chunk_mass.len() + 1);
    let mut acc = 0.0f64;
    prefix.push(0.0);
    for &cm in &chunk_mass {
        acc += cm * inv_total;
        prefix.push(acc);
    }
    // Uniform range handled by each chunk: [prefix[c], prefix[c+1]).
    let jobs: Vec<(usize, usize, usize)> = (0..chunk_mass.len())
        .map(|c| {
            let lo = u.partition_point(|&x| x < prefix[c]);
            let hi = u.partition_point(|&x| x < prefix[c + 1]);
            (c, lo, hi)
        })
        .collect();
    let pieces: Vec<Vec<u64>> = jobs
        .into_par_iter()
        .map(|(c, lo, hi)| {
            let mut out = Vec::with_capacity(hi - lo);
            if lo == hi {
                return out;
            }
            let base = c * chunk;
            let slice = &amps[base..(base + chunk).min(amps.len())];
            let mut cum = prefix[c];
            let mut j = lo;
            for (i, z) in slice.iter().enumerate() {
                cum += z.norm_sqr().to_f64() * inv_total;
                while j < hi && u[j] < cum {
                    out.push((base + i) as u64);
                    j += 1;
                }
                if j == hi {
                    break;
                }
            }
            // Round-off stragglers land on the chunk's last index.
            while out.len() < hi - lo {
                out.push((base + slice.len() - 1) as u64);
            }
            out
        })
        .collect();
    let mut out = Vec::with_capacity(m);
    for p in pieces {
        out.extend(p);
    }
    // Uniforms beyond the final prefix (round-off): last basis state.
    while out.len() < m {
        out.push((amps.len() - 1) as u64);
    }
    out
}

/// Extract the measured-qubit bits from a basis-index shot: output bit `t`
/// is bit `qubits[t]` of `index`. This is how subset measurement works —
/// sampling the full register then discarding unmeasured bits *is*
/// marginal sampling. (Thin `u64` wrapper over the backend-shared
/// [`ptsbe_rng::bits::extract_bits`].)
pub fn extract_bits(index: u64, qubits: &[usize]) -> u64 {
    ptsbe_rng::bits::extract_bits(u128::from(index), qubits) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_math::gates;
    use ptsbe_rng::PhiloxRng;

    fn bell() -> StateVector<f64> {
        let mut sv = StateVector::zero_state(2);
        sv.apply_1q(&gates::h(), 0);
        sv.apply_cx(0, 1);
        sv
    }

    #[test]
    fn bell_shots_only_00_and_11() {
        let sv = bell();
        let mut rng = PhiloxRng::new(70, 0);
        let shots = sample_shots(&sv, 10_000, &mut rng, SamplingStrategy::SortedMerge);
        assert_eq!(shots.len(), 10_000);
        let ones = shots.iter().filter(|&&s| s == 0b11).count();
        let zeros = shots.iter().filter(|&&s| s == 0b00).count();
        assert_eq!(ones + zeros, 10_000);
        let frac = ones as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn alias_strategy_matches_distribution() {
        let sv = bell();
        let mut rng = PhiloxRng::new(71, 0);
        let shots = sample_shots(&sv, 10_000, &mut rng, SamplingStrategy::Alias);
        let ones = shots.iter().filter(|&&s| s == 0b11).count();
        let zeros = shots.iter().filter(|&&s| s == 0b00).count();
        assert_eq!(ones + zeros, 10_000);
        assert!((ones as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_shots() {
        let sv = bell();
        let mut rng = PhiloxRng::new(72, 0);
        assert!(sample_shots(&sv, 0, &mut rng, SamplingStrategy::Auto).is_empty());
    }

    #[test]
    fn deterministic_state_always_same_shot() {
        let sv = StateVector::<f64>::basis_state(4, 0b1010);
        let mut rng = PhiloxRng::new(73, 0);
        for strategy in [SamplingStrategy::SortedMerge, SamplingStrategy::Alias] {
            let shots = sample_shots(&sv, 1000, &mut rng, strategy);
            assert!(shots.iter().all(|&s| s == 0b1010));
        }
    }

    #[test]
    fn parallel_merge_matches_serial_distribution() {
        // 15 qubits triggers the parallel path.
        let n = 15;
        let mut sv = StateVector::<f64>::zero_state(n);
        for q in 0..n {
            sv.apply_1q(&gates::h(), q);
        }
        let mut rng = PhiloxRng::new(74, 0);
        let m = 200_000;
        let shots = sample_shots(&sv, m, &mut rng, SamplingStrategy::SortedMerge);
        assert_eq!(shots.len(), m);
        // Uniform distribution: each qubit marginal ~ 0.5.
        for q in 0..n {
            let ones = shots.iter().filter(|&&s| (s >> q) & 1 == 1).count();
            let frac = ones as f64 / m as f64;
            assert!((frac - 0.5).abs() < 0.01, "qubit {q}: {frac}");
        }
        // All shots in range.
        assert!(shots.iter().all(|&s| s < (1 << n)));
    }

    #[test]
    fn f32_precision_sampling() {
        let mut sv = StateVector::<f32>::zero_state(10);
        for q in 0..10 {
            sv.apply_1q(&gates::h(), q);
        }
        let mut rng = PhiloxRng::new(75, 0);
        let shots = sample_shots(&sv, 50_000, &mut rng, SamplingStrategy::Auto);
        let ones0 = shots.iter().filter(|&&s| s & 1 == 1).count();
        assert!((ones0 as f64 / 50_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ghz_correlations_preserved() {
        let n = 16;
        let mut sv = StateVector::<f64>::zero_state(n);
        sv.apply_1q(&gates::h(), 0);
        for q in 0..n - 1 {
            sv.apply_cx(q, q + 1);
        }
        let mut rng = PhiloxRng::new(76, 0);
        let shots = sample_shots(&sv, 20_000, &mut rng, SamplingStrategy::Auto);
        for &s in &shots {
            assert!(
                s == 0 || s == (1 << n) - 1,
                "GHZ shot {s:#x} not all-0/all-1"
            );
        }
    }

    #[test]
    fn extract_bits_order() {
        // index 0b1010, qubits [1, 3] -> bits (1, 1) -> 0b11
        assert_eq!(extract_bits(0b1010, &[1, 3]), 0b11);
        // qubits [0, 2] -> (0, 0)
        assert_eq!(extract_bits(0b1010, &[0, 2]), 0b00);
        // order matters: [3, 1] -> bit0 = q3 = 1, bit1 = q1 = 1
        assert_eq!(extract_bits(0b1000, &[3, 1]), 0b01);
        assert_eq!(extract_bits(0b0010, &[3, 1]), 0b10);
    }

    #[test]
    fn auto_strategy_small_state_many_shots() {
        // 2 qubits, huge m: Auto should pick alias and still be correct.
        let sv = bell();
        let mut rng = PhiloxRng::new(77, 0);
        let shots = sample_shots(&sv, 100_000, &mut rng, SamplingStrategy::Auto);
        assert!(shots.iter().all(|&s| s == 0 || s == 3));
    }
}
