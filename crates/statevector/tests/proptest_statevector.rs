//! Property tests: statevector kernel invariants on random circuits.

use proptest::prelude::*;
use ptsbe_math::random::haar_unitary;
use ptsbe_math::Matrix;
use ptsbe_rng::PhiloxRng;
use ptsbe_statevector::{sampling, SamplingStrategy, StateVector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// Unitary evolution preserves the norm, whatever the gate sequence.
    #[test]
    fn norm_preserved(seed in 0u64..500, n in 1usize..7, steps in 1usize..15) {
        let mut rng = PhiloxRng::new(seed, 31);
        let mut sv = StateVector::<f64>::zero_state(n);
        for s in 0..steps {
            if n >= 2 && s % 2 == 0 {
                let u = haar_unitary::<f64>(4, &mut rng);
                let a = s % n;
                let b = (s + 1) % n;
                if a != b {
                    sv.apply_2q(&u, a, b);
                }
            } else {
                let u = haar_unitary::<f64>(2, &mut rng);
                sv.apply_1q(&u, s % n);
            }
        }
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// apply_kq agrees with apply_1q/apply_2q on the same inputs.
    #[test]
    fn kq_consistency(seed in 0u64..300, n in 2usize..6, a_raw in 0usize..6, b_raw in 0usize..6) {
        let a = a_raw % n;
        let b = b_raw % n;
        prop_assume!(a != b);
        let mut rng = PhiloxRng::new(seed, 32);
        let u2 = haar_unitary::<f64>(4, &mut rng);
        let mut x = StateVector::<f64>::zero_state(n);
        // Random-ish product state first.
        for q in 0..n {
            let u = haar_unitary::<f64>(2, &mut rng);
            x.apply_1q(&u, q);
        }
        let mut y = x.clone();
        x.apply_2q(&u2, a, b);
        y.apply_kq(&u2, &[a, b]);
        for i in 0..x.amplitudes().len() {
            prop_assert!((x.amplitudes()[i] - y.amplitudes()[i]).abs() < 1e-10);
        }
    }

    /// Bulk sampling matches the probability vector (chi-square-ish bound)
    /// for both strategies.
    #[test]
    fn sampling_matches_probabilities(seed in 0u64..200, n in 1usize..5) {
        let mut rng = PhiloxRng::new(seed, 33);
        let mut sv = StateVector::<f64>::zero_state(n);
        for q in 0..n {
            let u = haar_unitary::<f64>(2, &mut rng);
            sv.apply_1q(&u, q);
        }
        let m = 40_000;
        for strategy in [SamplingStrategy::SortedMerge, SamplingStrategy::Alias] {
            let shots = sampling::sample_shots(&sv, m, &mut rng, strategy);
            let mut counts = vec![0usize; 1 << n];
            for &s in &shots {
                counts[s as usize] += 1;
            }
            for (i, &c) in counts.iter().enumerate() {
                let expect = sv.probability(i as u64);
                let frac = c as f64 / m as f64;
                prop_assert!((frac - expect).abs() < 0.02, "{strategy:?} outcome {i}: {frac} vs {expect}");
            }
        }
    }

    /// Collapse is a projection: collapsing twice on the same outcome is
    /// idempotent, and outcome probabilities sum to one.
    #[test]
    fn collapse_projection(seed in 0u64..300, n in 1usize..6, q_raw in 0usize..6) {
        let q = q_raw % n;
        let mut rng = PhiloxRng::new(seed, 34);
        let mut sv = StateVector::<f64>::zero_state(n);
        for t in 0..n {
            let u = haar_unitary::<f64>(2, &mut rng);
            sv.apply_1q(&u, t);
        }
        let p1 = sv.prob_one(q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        let mut collapsed = sv.clone();
        let p = collapsed.collapse(q, true);
        prop_assert!((p - p1).abs() < 1e-10);
        if p > 1e-9 {
            prop_assert!((collapsed.norm_sqr() - 1.0).abs() < 1e-9);
            let again = collapsed.clone().collapse(q, true);
            prop_assert!((again - 1.0).abs() < 1e-9, "second collapse prob {again}");
        }
    }

    /// Kraus probabilities sum to 1 for random CPTP channels built from a
    /// Haar isometry (Stinespring: K_i = (I⊗⟨i|) V).
    #[test]
    fn stinespring_channel_probs_normalize(seed in 0u64..200, n in 1usize..5, q_raw in 0usize..5) {
        let q = q_raw % n;
        let mut rng = PhiloxRng::new(seed, 35);
        // 4x4 Haar unitary; take the two 2x2 blocks of its first two
        // columns as Kraus operators (environment dim 2).
        let v = haar_unitary::<f64>(4, &mut rng);
        let mut k0 = Matrix::<f64>::zeros(2, 2);
        let mut k1 = Matrix::<f64>::zeros(2, 2);
        for r in 0..2 {
            for c in 0..2 {
                k0[(r, c)] = v[(r, c)];
                k1[(r, c)] = v[(r + 2, c)];
            }
        }
        let mut sv = StateVector::<f64>::zero_state(n);
        for t in 0..n {
            let u = haar_unitary::<f64>(2, &mut rng);
            sv.apply_1q(&u, t);
        }
        let probs = ptsbe_statevector::kraus::kraus_probabilities(&sv, &[k0, k1], &[q]);
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        prop_assert!(probs.iter().all(|&p| p >= -1e-12));
    }
}
