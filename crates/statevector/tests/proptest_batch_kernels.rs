//! Property suite for the batch-kernel dispatch seam: every kernel
//! implementation (scalar-reference, SoA-autovec, SoA-SIMD) must be
//! **bitwise** identical, per lane, to the scalar [`StateVector`]
//! kernels — on random states, at both precisions, for non-adjacent
//! qubit pairs, top/bottom qubits, masked per-lane Kraus sweeps, and
//! the norm/normalize path. There is no pinned-tolerance fallback: the
//! SoA sweeps are reassociation-free by construction, so bit equality
//! is the contract.

use proptest::prelude::*;
use ptsbe_math::random::haar_unitary;
use ptsbe_math::{Complex, Matrix, Scalar};
use ptsbe_rng::PhiloxRng;
use ptsbe_statevector::batch::{localize_2q, StateBatch};
use ptsbe_statevector::{KernelImpl, StateVector};

const IMPLS: [KernelImpl; 3] = [KernelImpl::Scalar, KernelImpl::Soa, KernelImpl::Simd];

/// Distinct random entangled states, one per lane, mirrored into a
/// batch (with the given kernel impl) and per-lane scalar vectors.
fn mirrored<T: Scalar>(
    n: usize,
    lanes: usize,
    seed: u64,
    kernels: KernelImpl,
) -> (StateBatch<T>, Vec<StateVector<T>>) {
    let mut rng = PhiloxRng::new(seed, 77);
    let mut batch = StateBatch::zero_states_with(n, lanes, kernels);
    let mut svs = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let mut sv = StateVector::<T>::zero_state(n);
        for q in 0..n {
            let u = haar_unitary::<T>(2, &mut rng);
            sv.apply_1q(&u, q);
        }
        for q in 0..n.saturating_sub(1) {
            sv.apply_cx(q, q + 1);
        }
        batch.load_lane(lane, &sv);
        svs.push(sv);
    }
    (batch, svs)
}

/// Bit-level lane comparison (exact for f32 too: the f64 image of an
/// f32 is injective, so equal images mean equal bits).
fn assert_lanes_bitwise<T: Scalar>(batch: &StateBatch<T>, svs: &[StateVector<T>], label: &str) {
    let mut scratch = StateVector::<T>::zero_state(0);
    for (lane, sv) in svs.iter().enumerate() {
        batch.extract_lane_into(lane, &mut scratch);
        for (i, (a, b)) in scratch.amplitudes().iter().zip(sv.amplitudes()).enumerate() {
            assert_eq!(
                (a.re.to_f64().to_bits(), a.im.to_f64().to_bits()),
                (b.re.to_f64().to_bits(), b.im.to_f64().to_bits()),
                "{label}: lane {lane} amp {i}"
            );
        }
    }
}

/// One scripted sweep over every kernel class, hitting the bottom qubit,
/// the top qubit, and a non-adjacent pair whenever the register allows.
fn exercise_all_kernels<T: Scalar>(n: usize, lanes: usize, seed: u64, kernels: KernelImpl) {
    let mut rng = PhiloxRng::new(seed, 78);
    let u1 = haar_unitary::<T>(2, &mut rng);
    let u2 = haar_unitary::<T>(4, &mut rng);
    let d1 = [Complex::<T>::cis(0.37), Complex::cis(-1.21)];
    let d2 = [
        Complex::<T>::cis(0.11),
        Complex::cis(0.5),
        Complex::cis(-0.9),
        Complex::cis(2.2),
    ];
    let (mut batch, mut svs) = mirrored::<T>(n, lanes, seed, kernels);
    let top = n - 1;
    // The same script drives both sides; closures keep them in lockstep.
    macro_rules! step {
        ($b:expr, $s:expr) => {
            $b(&mut batch);
            for sv in svs.iter_mut() {
                $s(sv);
            }
        };
    }
    step!(
        |b: &mut StateBatch<T>| b.apply_1q(&u1, 0),
        |s: &mut StateVector<T>| s.apply_1q(&u1, 0)
    );
    step!(
        |b: &mut StateBatch<T>| b.apply_1q(&u1, top),
        |s: &mut StateVector<T>| s.apply_1q(&u1, top)
    );
    step!(
        |b: &mut StateBatch<T>| b.apply_diag_1q(&d1, top / 2),
        |s: &mut StateVector<T>| s.apply_diag_1q(&d1, top / 2)
    );
    if n >= 2 {
        // (top, 0) is the most non-adjacent pair the register has, in
        // swapped order to exercise the hi/lo mapping.
        step!(
            |b: &mut StateBatch<T>| b.apply_2q(&u2, top, 0),
            |s: &mut StateVector<T>| s.apply_2q(&u2, top, 0)
        );
        step!(
            |b: &mut StateBatch<T>| b.apply_diag_2q(&d2, 0, top),
            |s: &mut StateVector<T>| s.apply_diag_2q(&d2, 0, top)
        );
        step!(
            |b: &mut StateBatch<T>| b.apply_cx(top, 0),
            |s: &mut StateVector<T>| s.apply_cx(top, 0)
        );
        step!(
            |b: &mut StateBatch<T>| b.apply_cz(0, top),
            |s: &mut StateVector<T>| s.apply_cz(0, top)
        );
        step!(
            |b: &mut StateBatch<T>| b.apply_swap(0, top),
            |s: &mut StateVector<T>| s.apply_swap(0, top)
        );
    }
    if n >= 3 {
        let u3 = haar_unitary::<T>(8, &mut rng);
        let qs = [0, n / 2, top];
        step!(
            |b: &mut StateBatch<T>| b.apply_kq(&u3, &qs),
            |s: &mut StateVector<T>| s.apply_kq(&u3, &qs)
        );
    }
    assert_lanes_bitwise(&batch, &svs, kernels.label());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All three dispatch impls match the scalar kernels bitwise at f64.
    #[test]
    fn impls_bitwise_match_scalar_f64(seed in 0u64..5_000, n in 1usize..6, lanes in 1usize..10) {
        for kernels in IMPLS {
            exercise_all_kernels::<f64>(n, lanes, seed, kernels);
        }
    }

    /// Same contract at f32 (the paper's `complex64` working precision).
    #[test]
    fn impls_bitwise_match_scalar_f32(seed in 0u64..5_000, n in 1usize..6, lanes in 1usize..12) {
        for kernels in IMPLS {
            exercise_all_kernels::<f32>(n, lanes, seed, kernels);
        }
    }

    /// Masked per-lane Kraus sweeps: active lanes match the scalar
    /// application of their own matrix bitwise; skipped lanes keep their
    /// exact pre-sweep bits (the identity-skip contract).
    #[test]
    fn masked_lane_kraus_bitwise(seed in 0u64..5_000, n in 2usize..6, lanes in 2usize..9, mask in 0u32..512) {
        for kernels in IMPLS {
            let mut rng = PhiloxRng::new(seed, 79);
            let (mut batch, mut svs) = mirrored::<f64>(n, lanes, seed, kernels);
            let skip: Vec<bool> = (0..lanes).map(|l| mask >> (l % 9) & 1 == 1).collect();
            let top = n - 1;

            // Per-lane 1q matrices on the top qubit.
            let mats1: Vec<Matrix<f64>> =
                (0..lanes).map(|_| haar_unitary::<f64>(2, &mut rng)).collect();
            let es: Vec<[Complex<f64>; 4]> = mats1
                .iter()
                .map(|m| [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]])
                .collect();
            batch.apply_1q_lanes_masked(&es, &skip, top);
            for (lane, sv) in svs.iter_mut().enumerate() {
                if !skip[lane] {
                    sv.apply_1q(&mats1[lane], top);
                }
            }
            assert_lanes_bitwise(&batch, &svs, "masked-1q");

            // Per-lane 2q matrices on the widest pair.
            let mats2: Vec<Matrix<f64>> =
                (0..lanes).map(|_| haar_unitary::<f64>(4, &mut rng)).collect();
            let mms: Vec<[[Complex<f64>; 4]; 4]> =
                mats2.iter().map(|m| localize_2q(m, top, 0)).collect();
            batch.apply_2q_lanes_masked(&mms, &skip, top, 0);
            for (lane, sv) in svs.iter_mut().enumerate() {
                if !skip[lane] {
                    sv.apply_2q(&mats2[lane], top, 0);
                }
            }
            assert_lanes_bitwise(&batch, &svs, "masked-2q");
        }
    }

    /// The norm/normalize path (general-channel Kraus branches) agrees
    /// bitwise with the scalar reduction for every impl.
    #[test]
    fn norm_and_normalize_bitwise(seed in 0u64..5_000, n in 1usize..6, lanes in 1usize..8) {
        for kernels in IMPLS {
            let mut rng = PhiloxRng::new(seed, 80);
            let (mut batch, mut svs) = mirrored::<f64>(n, lanes, seed, kernels);
            // A non-unitary contraction so the norm is interesting.
            let k = haar_unitary::<f64>(2, &mut rng).scaled(Complex::new(0.6, 0.0));
            batch.apply_1q(&k, 0);
            svs.iter_mut().for_each(|s| s.apply_1q(&k, 0));

            let mut n2 = vec![0.0f64; lanes];
            batch.norm_sqr_lanes(&mut n2);
            for (lane, sv) in svs.iter().enumerate() {
                prop_assert_eq!(
                    n2[lane].to_bits(),
                    sv.norm_sqr().to_bits(),
                    "{}: lane {} norm", kernels.label(), lane
                );
            }
            batch.normalize_lanes(&n2);
            for sv in svs.iter_mut() {
                sv.normalize();
            }
            assert_lanes_bitwise(&batch, &svs, "normalize");
        }
    }

    /// Recycled batches never leak stale amplitudes: a `reinit` to any
    /// geometry is bitwise indistinguishable from a fresh allocation,
    /// even after the recycled buffers held a larger dirty state.
    #[test]
    fn reinit_is_bitwise_fresh(seed in 0u64..5_000, n1 in 1usize..6, l1 in 1usize..9, n2 in 1usize..6, l2 in 1usize..9) {
        for kernels in IMPLS {
            // Dirty a batch with random amplitudes...
            let (mut recycled, _) = mirrored::<f64>(n1, l1, seed, kernels);
            // ...then recycle it into a new geometry.
            recycled.reinit(n2, l2);
            let fresh = StateBatch::<f64>::zero_states_with(n2, l2, kernels);
            let (rr, ri) = recycled.planes();
            let (fr, fi) = fresh.planes();
            prop_assert_eq!(rr.len(), fr.len());
            for i in 0..rr.len() {
                prop_assert_eq!(rr[i].to_bits(), fr[i].to_bits(), "re plane idx {}", i);
                prop_assert_eq!(ri[i].to_bits(), fi[i].to_bits(), "im plane idx {}", i);
            }
            // And it behaves identically afterwards.
            let mut rng = PhiloxRng::new(seed, 81);
            let u = haar_unitary::<f64>(2, &mut rng);
            let mut a = recycled;
            let mut b = fresh;
            a.apply_1q(&u, n2 - 1);
            b.apply_1q(&u, n2 - 1);
            let (ar, ai) = a.planes();
            let (br, bi) = b.planes();
            for i in 0..ar.len() {
                prop_assert_eq!(ar[i].to_bits(), br[i].to_bits());
                prop_assert_eq!(ai[i].to_bits(), bi[i].to_bits());
            }
        }
    }
}
