//! Property tests for the RNG substrate.

use proptest::prelude::*;
use ptsbe_rng::categorical::{index_of, multinomial_counts, sample_weighted};
use ptsbe_rng::sorted::sorted_uniforms;
use ptsbe_rng::{AliasTable, PhiloxRng, Rng, SplitMix64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn sorted_uniforms_are_sorted_and_bounded(seed in 0u64..10_000, m in 0usize..5_000) {
        let mut rng = PhiloxRng::new(seed, 1);
        let v = sorted_uniforms(m, &mut rng);
        prop_assert_eq!(v.len(), m);
        for w in v.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        if m > 0 {
            prop_assert!(v[0] >= 0.0);
            prop_assert!(*v.last().unwrap() < 1.0);
        }
    }

    #[test]
    fn philox_streams_never_collide_on_prefix(seed in 0u64..1000, s1 in 0u64..64, s2 in 0u64..64) {
        prop_assume!(s1 != s2);
        let mut a = PhiloxRng::new(seed, s1);
        let mut b = PhiloxRng::new(seed, s2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        prop_assert_ne!(va, vb);
    }

    #[test]
    fn philox_seek_is_consistent(seed in 0u64..1000, skip in 0usize..64) {
        // Reading N words then continuing == seeking to the same block.
        let mut a = PhiloxRng::new(seed, 9);
        for _ in 0..skip * 4 {
            let _ = a.next_u32();
        }
        let tail_a: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let mut b = PhiloxRng::new(seed, 9);
        b.seek(skip as u64);
        let tail_b: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        prop_assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn alias_table_only_emits_positive_weights(seed in 0u64..1000, weights in prop::collection::vec(0.0f64..10.0, 1..20)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = PhiloxRng::new(seed, 2);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            // Zero-weight outcomes never appear.
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {i}");
        }
    }

    #[test]
    fn index_of_respects_cdf(r in 0.0f64..1.0, probs in prop::collection::vec(0.01f64..1.0, 1..10)) {
        let total: f64 = probs.iter().sum();
        let norm: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let idx = index_of(r, &norm);
        prop_assert!(idx < norm.len());
        let before: f64 = norm[..idx].iter().sum();
        let after = before + norm[idx];
        prop_assert!(r >= before - 1e-12);
        prop_assert!(r < after + 1e-12);
    }

    #[test]
    fn multinomial_conserves_total(seed in 0u64..1000, total in 0usize..10_000, probs in prop::collection::vec(0.01f64..1.0, 1..8)) {
        let mut rng = PhiloxRng::new(seed, 3);
        let counts = multinomial_counts(&probs, total, &mut rng);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        prop_assert_eq!(counts.len(), probs.len());
    }

    #[test]
    fn sample_weighted_skips_zeros(seed in 0u64..1000, idx in 0usize..5) {
        let mut w = vec![0.0f64; 5];
        w[idx] = 1.0;
        let mut rng = PhiloxRng::new(seed, 4);
        for _ in 0..20 {
            prop_assert_eq!(sample_weighted(&w, &mut rng), idx);
        }
    }

    #[test]
    fn splitmix_is_injective_on_small_ranges(a in 0u64..5000, b in 0u64..5000) {
        prop_assume!(a != b);
        let mut ra = SplitMix64::new(a);
        let mut rb = SplitMix64::new(b);
        prop_assert_ne!(ra.next(), rb.next());
    }
}
