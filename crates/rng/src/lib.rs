//! Counter-based random number generation substrate for PTSBE.
//!
//! The paper's trajectory simulator draws its randomness from cuRAND; this
//! crate provides the equivalent CPU-side machinery built around the
//! [Philox4x32-10](https://doi.org/10.1145/2063384.2063405) counter-based
//! generator (the same algorithm family cuRAND ships). Counter-based
//! generation is what makes the paper's two-level parallelism safe: every
//! trajectory gets an *independent, reproducible* stream derived from
//! `(seed, stream id)` with no shared mutable state, so inter-trajectory
//! fan-out ("embarrassingly parallel" in the paper's words) never contends
//! on an RNG.
//!
//! On top of the raw generator the crate provides the sampling primitives
//! the Batched Execution engine needs:
//!
//! - [`sorted::sorted_uniforms`] — O(m) generation of *sorted* uniforms, the
//!   key trick that makes bulk CDF-inversion shot sampling a single linear
//!   merge over the probability vector;
//! - [`alias::AliasTable`] — Walker/Vose alias method for O(1)-per-shot
//!   categorical sampling when many shots are drawn from one distribution;
//! - [`categorical`] — small-n CDF inversion used when a channel has only a
//!   handful of Kraus operators;
//! - [`mask`] — bit-packed Bernoulli word sampling (dense and sparse
//!   geometric-skip variants) for the Stim-style Pauli-frame bulk sampler.

pub mod alias;
pub mod bits;
pub mod categorical;
pub mod mask;
pub mod philox;
pub mod sorted;
pub mod splitmix;

pub use alias::AliasTable;
pub use philox::{Philox4x32, PhiloxRng};
pub use splitmix::SplitMix64;

/// Minimal RNG interface used throughout the workspace.
///
/// Deliberately small: the simulators need uniform words, uniform floats,
/// bounded indices and Bernoulli trials — nothing else. All library crates
/// consume this trait so the deterministic Philox streams can be threaded
/// through every stochastic code path.
pub trait Rng: Send {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Next uniform 64-bit word (two 32-bit draws by default).
    fn next_u64(&mut self) -> u64 {
        let hi = u64::from(self.next_u32());
        let lo = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        ((self.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform index in `[0, n)` using Lemire's multiply-shift with rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty range");
        let n = n as u64;
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = PhiloxRng::new(1234, 0);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = PhiloxRng::new(99, 7);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_index_is_in_range_and_covers() {
        let mut rng = PhiloxRng::new(5, 0);
        let n = 7;
        let mut seen = vec![false; n];
        for _ in 0..1_000 {
            let i = rng.gen_index(n);
            assert!(i < n);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices should be reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_index_zero_panics() {
        let mut rng = PhiloxRng::new(5, 0);
        let _ = rng.gen_index(0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = PhiloxRng::new(5, 0);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_mean_close() {
        let mut rng = PhiloxRng::new(17, 3);
        let p = 0.3;
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - p).abs() < 0.01, "mean {mean} too far from {p}");
    }

    #[test]
    fn next_u64_mixes_two_words() {
        // A PhiloxRng and the same stream read as u32 pairs must agree.
        let mut a = PhiloxRng::new(42, 0);
        let mut b = PhiloxRng::new(42, 0);
        let x = a.next_u64();
        let hi = u64::from(b.next_u32());
        let lo = u64::from(b.next_u32());
        assert_eq!(x, (hi << 32) | lo);
    }
}
