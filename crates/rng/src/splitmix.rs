//! SplitMix64: the standard 64-bit seed expander (Steele et al.).
//!
//! Used to derive sub-seeds (e.g. hashing a run seed together with a
//! trajectory label) and as a cheap scalar RNG in tests. All heavy sampling
//! goes through [`crate::PhiloxRng`].

use crate::Rng;

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // established SplitMix64 name
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hash two words into one (order-sensitive); used to fold run seeds
    /// with labels such as trajectory or site ids.
    pub fn mix(a: u64, b: u64) -> u64 {
        let mut s = SplitMix64::new(a ^ 0x243F_6A88_85A3_08D3);
        let x = s.next();
        let mut s2 = SplitMix64::new(x ^ b);
        s2.next()
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values for seed 1234567 from the public SplitMix64
    /// reference implementation (Vigna).
    #[test]
    fn known_answer() {
        let mut s = SplitMix64::new(1234567);
        assert_eq!(s.next(), 6457827717110365317);
        assert_eq!(s.next(), 3203168211198807973);
        assert_eq!(s.next(), 9817491932198370423);
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(SplitMix64::mix(1, 2), SplitMix64::mix(2, 1));
    }

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(SplitMix64::mix(10, 20), SplitMix64::mix(10, 20));
    }

    #[test]
    fn rng_impl_is_usable() {
        let mut s = SplitMix64::new(99);
        let x = s.next_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
