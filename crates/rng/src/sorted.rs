//! O(m) generation of sorted uniform variates.
//!
//! Bulk shot sampling ("collect all `m_alpha` shots at once", the BE half of
//! PTSBE) inverts the cumulative distribution of `|psi|^2`. Sorting `m`
//! uniforms first turns inversion into a *single* linear merge over the
//! 2^n-entry probability vector — O(2^n + m) instead of O(m log 2^n) binary
//! searches or an O(m log m) sort.
//!
//! The classic order-statistics identity is used: if `E_1..E_{m+1}` are iid
//! Exp(1), then the normalized prefix sums `S_i / S_{m+1}` (i = 1..m) are
//! distributed exactly as the order statistics of `m` iid U(0,1) draws.

use crate::Rng;

/// Generate `m` sorted uniform variates in `[0, 1)` in O(m).
///
/// The output is strictly non-decreasing. An empty vector is returned for
/// `m == 0`.
pub fn sorted_uniforms<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Vec<f64> {
    if m == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(m);
    let mut acc = 0.0f64;
    for _ in 0..m {
        acc += exp1(rng);
        out.push(acc);
    }
    let total = acc + exp1(rng);
    let inv = 1.0 / total;
    for v in &mut out {
        *v *= inv;
        // Guard against round-off pushing the largest value to exactly 1.0,
        // which would fall off the end of a CDF.
        if *v >= 1.0 {
            *v = f64::from_bits(1.0f64.to_bits() - 1);
        }
    }
    out
}

/// One Exp(1) variate via inversion, avoiding ln(0).
#[inline]
fn exp1<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u = rng.next_f64();
    // next_f64 is in [0,1); reflect so the argument is in (0,1].
    -(1.0 - u).ln()
}

/// Merge `m` sorted uniforms against a probability slice, invoking
/// `emit(index, count)` for every outcome index that receives at least one
/// draw. This is the linear bulk CDF-inversion kernel shared by the
/// statevector sampler and the categorical sampler.
///
/// `probs` need not be exactly normalized; any residual mass due to
/// floating-point round-off is assigned to the final outcome.
pub fn merge_sorted_into_cdf<F: FnMut(usize, usize)>(probs: &[f64], sorted_u: &[f64], mut emit: F) {
    if probs.is_empty() || sorted_u.is_empty() {
        return;
    }
    let mut cum = 0.0f64;
    let mut j = 0usize;
    for (i, &p) in probs.iter().enumerate() {
        cum += p;
        let start = j;
        while j < sorted_u.len() && sorted_u[j] < cum {
            j += 1;
        }
        if j > start {
            emit(i, j - start);
        }
        if j == sorted_u.len() {
            return;
        }
    }
    // Residual mass from round-off: attribute to the last outcome.
    if j < sorted_u.len() {
        emit(probs.len() - 1, sorted_u.len() - j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhiloxRng;

    #[test]
    fn empty_request() {
        let mut rng = PhiloxRng::new(1, 0);
        assert!(sorted_uniforms(0, &mut rng).is_empty());
    }

    #[test]
    fn output_is_sorted_and_in_range() {
        let mut rng = PhiloxRng::new(2, 0);
        let v = sorted_uniforms(10_000, &mut rng);
        assert_eq!(v.len(), 10_000);
        for w in v.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(v[0] >= 0.0 && *v.last().unwrap() < 1.0);
    }

    #[test]
    fn distribution_is_uniform() {
        // Kolmogorov-Smirnov style check: the i-th order statistic of m
        // uniforms has mean i/(m+1).
        let mut rng = PhiloxRng::new(3, 0);
        let m = 100_000;
        let v = sorted_uniforms(m, &mut rng);
        let mut max_dev = 0.0f64;
        for (i, &x) in v.iter().enumerate() {
            let expected = (i + 1) as f64 / (m + 1) as f64;
            max_dev = max_dev.max((x - expected).abs());
        }
        // KS 99.9% critical value ~ 1.95/sqrt(m) ~ 0.0062 for m = 1e5.
        assert!(max_dev < 0.0062, "KS deviation {max_dev}");
    }

    #[test]
    fn merge_counts_match_total() {
        let mut rng = PhiloxRng::new(4, 0);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let u = sorted_uniforms(50_000, &mut rng);
        let mut counts = [0usize; 4];
        merge_sorted_into_cdf(&probs, &u, |i, c| counts[i] += c);
        assert_eq!(counts.iter().sum::<usize>(), 50_000);
        for (i, &p) in probs.iter().enumerate() {
            let frac = counts[i] as f64 / 50_000.0;
            assert!((frac - p).abs() < 0.01, "outcome {i}: {frac} vs {p}");
        }
    }

    #[test]
    fn merge_handles_unnormalized_residual() {
        // Probabilities summing to slightly under the largest uniform:
        // residual draws land on the last outcome instead of vanishing.
        let probs = [0.25, 0.25];
        let u = [0.1, 0.6, 0.9, 0.99];
        let mut counts = [0usize; 2];
        merge_sorted_into_cdf(&probs, &u, |i, c| counts[i] += c);
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 3);
    }

    #[test]
    fn merge_empty_inputs() {
        let mut hits = 0;
        merge_sorted_into_cdf(&[], &[0.5], |_, _| hits += 1);
        merge_sorted_into_cdf(&[1.0], &[], |_, _| hits += 1);
        assert_eq!(hits, 0);
    }
}
