//! Bit-packed Bernoulli mask generation for the Pauli-frame bulk sampler.
//!
//! The stabilizer frame sampler (the Stim-style comparator of the paper's
//! Sec. 2.3) processes 64 shots per machine word. Injecting iid Pauli noise
//! across shots then reduces to generating words whose bits are iid
//! Bernoulli(p). Two strategies are provided:
//!
//! - **dense**: one uniform per bit — exact, O(bits), used for large `p`;
//! - **sparse**: geometric skips between set bits — O(bits * p), the same
//!   trick Stim uses to make physical error rates of 1e-3 nearly free.

use crate::Rng;

/// Probability threshold above which dense generation is used.
const SPARSE_CUTOFF: f64 = 0.05;

/// Fill `words` with bits that are iid Bernoulli(`p`). `nbits` limits the
/// meaningful bits (the tail of the final word is left zero).
pub fn fill_bernoulli_words<R: Rng + ?Sized>(words: &mut [u64], nbits: usize, p: f64, rng: &mut R) {
    assert!(
        nbits <= words.len() * 64,
        "fill_bernoulli_words: nbits {nbits} exceeds capacity {}",
        words.len() * 64
    );
    words.fill(0);
    if p <= 0.0 || nbits == 0 {
        return;
    }
    if p >= 1.0 {
        set_all(words, nbits);
        return;
    }
    if p < SPARSE_CUTOFF {
        sparse_fill(words, nbits, p, rng);
    } else {
        dense_fill(words, nbits, p, rng);
    }
}

fn set_all(words: &mut [u64], nbits: usize) {
    let full = nbits / 64;
    for w in &mut words[..full] {
        *w = u64::MAX;
    }
    let rem = nbits % 64;
    if rem > 0 {
        words[full] = (1u64 << rem) - 1;
    }
}

fn dense_fill<R: Rng + ?Sized>(words: &mut [u64], nbits: usize, p: f64, rng: &mut R) {
    for bit in 0..nbits {
        if rng.next_f64() < p {
            words[bit / 64] |= 1u64 << (bit % 64);
        }
    }
}

/// Geometric-skip sparse fill: successive flip positions are separated by
/// Geometric(p) gaps, so work scales with the expected number of set bits.
fn sparse_fill<R: Rng + ?Sized>(words: &mut [u64], nbits: usize, p: f64, rng: &mut R) {
    let log1mp = (1.0 - p).ln();
    debug_assert!(log1mp < 0.0);
    let mut pos = 0usize;
    loop {
        let u = rng.next_f64();
        // Number of failures before the next success, inclusive skip.
        let skip = ((1.0 - u).ln() / log1mp).floor() as usize;
        pos = match pos.checked_add(skip) {
            Some(v) => v,
            None => return,
        };
        if pos >= nbits {
            return;
        }
        words[pos / 64] |= 1u64 << (pos % 64);
        pos += 1;
    }
}

/// Count set bits among the first `nbits` of `words`.
pub fn popcount_bits(words: &[u64], nbits: usize) -> usize {
    let full = nbits / 64;
    let mut total: usize = words[..full].iter().map(|w| w.count_ones() as usize).sum();
    let rem = nbits % 64;
    if rem > 0 {
        total += (words[full] & ((1u64 << rem) - 1)).count_ones() as usize;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhiloxRng;

    fn measure(p: f64, nbits: usize, seed: u64) -> f64 {
        let mut rng = PhiloxRng::new(seed, 0);
        let mut words = vec![0u64; nbits.div_ceil(64)];
        fill_bernoulli_words(&mut words, nbits, p, &mut rng);
        popcount_bits(&words, nbits) as f64 / nbits as f64
    }

    #[test]
    fn dense_regime_mean() {
        let frac = measure(0.3, 1 << 20, 31);
        assert!((frac - 0.3).abs() < 0.005, "got {frac}");
    }

    #[test]
    fn sparse_regime_mean() {
        let frac = measure(0.001, 1 << 22, 32);
        assert!((frac - 0.001).abs() < 0.0002, "got {frac}");
    }

    #[test]
    fn cutoff_boundary_mean() {
        // Just below and above the strategy switch should both be correct.
        let lo = measure(0.049, 1 << 20, 33);
        let hi = measure(0.051, 1 << 20, 34);
        assert!((lo - 0.049).abs() < 0.004, "sparse path {lo}");
        assert!((hi - 0.051).abs() < 0.004, "dense path {hi}");
    }

    #[test]
    fn degenerate_probabilities() {
        let mut rng = PhiloxRng::new(35, 0);
        let mut words = vec![0u64; 2];
        fill_bernoulli_words(&mut words, 100, 0.0, &mut rng);
        assert_eq!(popcount_bits(&words, 100), 0);
        fill_bernoulli_words(&mut words, 100, 1.0, &mut rng);
        assert_eq!(popcount_bits(&words, 100), 100);
        // Bits beyond nbits stay clear even for p = 1.
        assert_eq!(words[1] >> 36, 0);
    }

    #[test]
    fn zero_bits() {
        let mut rng = PhiloxRng::new(36, 0);
        let mut words: Vec<u64> = Vec::new();
        fill_bernoulli_words(&mut words, 0, 0.5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn capacity_checked() {
        let mut rng = PhiloxRng::new(37, 0);
        let mut words = vec![0u64; 1];
        fill_bernoulli_words(&mut words, 65, 0.5, &mut rng);
    }

    #[test]
    fn masks_differ_across_draws() {
        let mut rng = PhiloxRng::new(38, 0);
        let mut a = vec![0u64; 4];
        let mut b = vec![0u64; 4];
        fill_bernoulli_words(&mut a, 256, 0.5, &mut rng);
        fill_bernoulli_words(&mut b, 256, 0.5, &mut rng);
        assert_ne!(a, b);
    }
}
