//! Measurement-record bit manipulation shared by the simulation backends.

/// Gather the bits of `full` at `positions` into a dense record: output
/// bit `t` = bit `positions[t]` of `full`. Used by every backend to remap
/// a full-register basis index onto the circuit's measured-qubit order.
#[must_use]
pub fn extract_bits(full: u128, positions: &[usize]) -> u128 {
    let mut out = 0u128;
    for (t, &p) in positions.iter().enumerate() {
        out |= ((full >> p) & 1) << t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_in_record_order() {
        assert_eq!(extract_bits(0b1010, &[1, 3]), 0b11);
        assert_eq!(extract_bits(0b1010, &[0, 2]), 0b00);
        assert_eq!(extract_bits(0b1000, &[3, 1]), 0b01);
        assert_eq!(extract_bits(0b0010, &[3, 1]), 0b10);
    }

    #[test]
    fn empty_positions_yield_empty_record() {
        assert_eq!(extract_bits(u128::MAX, &[]), 0);
    }

    #[test]
    fn high_bits_are_addressable() {
        assert_eq!(extract_bits(1u128 << 127, &[127]), 1);
    }
}
