//! Philox4x32-10 counter-based generator (Salmon et al., SC'11), as shipped
//! by cuRAND and Random123.
//!
//! A counter-based RNG is a pure function `block = philox(counter, key)`.
//! Streams never share state: two generators with different keys (or
//! disjoint counter ranges) are statistically independent, which is exactly
//! the property the PTSBE inter-trajectory fan-out relies on.

use crate::Rng;

/// Multiplier for the first 32-bit lane (Random123 `PHILOX_M4x32_0`).
const M0: u32 = 0xD251_1F53;
/// Multiplier for the second 32-bit lane (Random123 `PHILOX_M4x32_1`).
const M1: u32 = 0xCD9E_8D57;
/// Weyl increment for key word 0 (golden-ratio constant).
const W0: u32 = 0x9E37_79B9;
/// Weyl increment for key word 1 (sqrt(3)-1 constant).
const W1: u32 = 0xBB67_AE85;

/// The stateless Philox4x32-10 block function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32;

#[inline(always)]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

#[inline(always)]
fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(M0, ctr[0]);
    let (hi1, lo1) = mulhilo(M1, ctr[2]);
    [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]
}

impl Philox4x32 {
    /// Apply ten Philox rounds to `counter` under `key`, producing four
    /// uniform 32-bit words.
    #[inline]
    pub fn block(mut counter: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
        // Ten rounds with a key bump between consecutive rounds (the first
        // round uses the caller's key; Random123 bumps 9 times for R=10).
        counter = round(counter, key);
        for _ in 0..9 {
            key[0] = key[0].wrapping_add(W0);
            key[1] = key[1].wrapping_add(W1);
            counter = round(counter, key);
        }
        counter
    }
}

/// A sequential RNG view over one Philox stream.
///
/// The 192-bit input space is split as:
/// `key = (seed_lo, seed_hi)`, `counter = (block_lo, block_hi, stream_lo, stream_hi)`,
/// so one seed supports 2^64 independent streams of 2^64 blocks (4 words
/// each). [`PhiloxRng::for_trajectory`] is the constructor the trajectory
/// engines use: trajectory index = stream id.
#[derive(Debug, Clone)]
pub struct PhiloxRng {
    key: [u32; 2],
    stream: u64,
    block: u64,
    buf: [u32; 4],
    /// Number of words of `buf` already handed out (4 = exhausted).
    used: u8,
}

impl PhiloxRng {
    /// Create the RNG for `(seed, stream)`. Distinct streams are
    /// statistically independent for any fixed seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        Self {
            key: [seed as u32, (seed >> 32) as u32],
            stream,
            block: 0,
            buf: [0; 4],
            used: 4,
        }
    }

    /// Stream reserved for trajectory `traj` of a run seeded with `seed`.
    ///
    /// A distinct tag keeps trajectory streams disjoint from utility streams
    /// created via [`PhiloxRng::new`] with small stream ids.
    pub fn for_trajectory(seed: u64, traj: u64) -> Self {
        Self::new(seed, traj ^ 0x5DEE_CE66_D1CE_CAFE)
    }

    /// Jump directly to block `block` of the stream (for sub-stream
    /// partitioning inside one trajectory, e.g. one block range per shot
    /// batch).
    pub fn seek(&mut self, block: u64) {
        self.block = block;
        self.used = 4;
    }

    #[inline]
    fn refill(&mut self) {
        let counter = [
            self.block as u32,
            (self.block >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        self.buf = Philox4x32::block(counter, self.key);
        self.block = self.block.wrapping_add(1);
        self.used = 0;
    }
}

impl Rng for PhiloxRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.used >= 4 {
            self.refill();
        }
        let w = self.buf[self.used as usize];
        self.used += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the Random123 distribution
    /// (`kat_vectors`, philox4x32-10).
    #[test]
    fn philox_known_answer_zero() {
        let out = Philox4x32::block([0, 0, 0, 0], [0, 0]);
        assert_eq!(out, [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]);
    }

    #[test]
    fn philox_known_answer_ones() {
        let out = Philox4x32::block([0xffff_ffff; 4], [0xffff_ffff, 0xffff_ffff]);
        assert_eq!(out, [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]);
    }

    #[test]
    fn philox_known_answer_pi() {
        let out = Philox4x32::block(
            [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
            [0xa409_3822, 0x299f_31d0],
        );
        assert_eq!(out, [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]);
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = PhiloxRng::new(7, 3);
        let mut b = PhiloxRng::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = PhiloxRng::new(7, 0);
        let mut b = PhiloxRng::new(7, 1);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = PhiloxRng::new(1, 0);
        let mut b = PhiloxRng::new(2, 0);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seek_restarts_block() {
        let mut a = PhiloxRng::new(7, 3);
        let first: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        a.seek(0);
        let again: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn trajectory_streams_disjoint_from_plain() {
        let mut t = PhiloxRng::for_trajectory(7, 0);
        let mut p = PhiloxRng::new(7, 0);
        let vt: Vec<u32> = (0..8).map(|_| t.next_u32()).collect();
        let vp: Vec<u32> = (0..8).map(|_| p.next_u32()).collect();
        assert_ne!(vt, vp);
    }

    #[test]
    fn word_mean_is_centered() {
        let mut rng = PhiloxRng::new(0xDEAD_BEEF, 42);
        let n = 200_000u64;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn monobit_balance() {
        let mut rng = PhiloxRng::new(123, 9);
        let mut ones = 0u64;
        let words = 10_000;
        for _ in 0..words {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let total = words * 32;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
