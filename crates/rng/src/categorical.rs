//! Small-n categorical sampling by CDF inversion.
//!
//! Noise channels typically have 2-16 Kraus operators, where a linear scan
//! beats both the alias table and binary search. This module is the per-site
//! sampler used by the PTS algorithms and the Algorithm-1 baseline engine.

use crate::Rng;

/// Draw an index from unnormalized non-negative `weights` by linear CDF
/// inversion. Returns the last index with positive weight if round-off
/// exhausts the scan.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero (checked with a debug
/// assertion in release-critical paths).
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "sample_weighted: empty weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "sample_weighted: weights sum to zero");
    let target = rng.next_f64() * total;
    let mut cum = 0.0;
    let mut last_positive = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_positive = i;
        }
        cum += w;
        if target < cum {
            return i;
        }
    }
    last_positive
}

/// Draw from *normalized* probabilities given a pre-drawn uniform in [0,1).
/// Mirrors the paper's Algorithm 1 line `k = index(r, {p_i})`.
pub fn index_of(r: f64, probs: &[f64]) -> usize {
    debug_assert!(!probs.is_empty());
    let mut cum = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cum += p;
        if r < cum {
            return i;
        }
    }
    probs.len() - 1
}

/// Multinomial allocation: split `total` draws over `probs` (normalized in
/// place if needed) using repeated binomial-free CDF inversion with sorted
/// uniforms. O(total + n).
pub fn multinomial_counts<R: Rng + ?Sized>(probs: &[f64], total: usize, rng: &mut R) -> Vec<usize> {
    let sum: f64 = probs.iter().sum();
    assert!(sum > 0.0, "multinomial_counts: zero mass");
    let norm: Vec<f64> = probs.iter().map(|&p| p / sum).collect();
    let u = crate::sorted::sorted_uniforms(total, rng);
    let mut counts = vec![0usize; probs.len()];
    crate::sorted::merge_sorted_into_cdf(&norm, &u, |i, c| counts[i] += c);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhiloxRng;

    #[test]
    fn weighted_sampling_matches() {
        let w = [0.5, 0.25, 0.25];
        let mut rng = PhiloxRng::new(21, 0);
        let mut counts = [0usize; 3];
        let m = 100_000;
        for _ in 0..m {
            counts[sample_weighted(&w, &mut rng)] += 1;
        }
        for (i, &wi) in w.iter().enumerate() {
            let frac = counts[i] as f64 / m as f64;
            assert!((frac - wi).abs() < 0.01, "outcome {i}");
        }
    }

    #[test]
    fn index_of_boundaries() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(index_of(0.0, &p), 0);
        assert_eq!(index_of(0.2499, &p), 0);
        assert_eq!(index_of(0.25, &p), 1);
        assert_eq!(index_of(0.4999, &p), 1);
        assert_eq!(index_of(0.5, &p), 2);
        assert_eq!(index_of(0.9999, &p), 2);
        // Degenerate "uniform == 1" style round-off clamps to the last bin.
        assert_eq!(index_of(1.5, &p), 2);
    }

    #[test]
    fn zero_weight_entries_skipped() {
        let w = [0.0, 1.0, 0.0];
        let mut rng = PhiloxRng::new(22, 0);
        for _ in 0..1000 {
            assert_eq!(sample_weighted(&w, &mut rng), 1);
        }
    }

    #[test]
    fn multinomial_totals() {
        let mut rng = PhiloxRng::new(23, 0);
        let counts = multinomial_counts(&[1.0, 1.0, 2.0], 40_000, &mut rng);
        assert_eq!(counts.iter().sum::<usize>(), 40_000);
        assert!((counts[2] as f64 / 40_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn empty_weights_panics() {
        let mut rng = PhiloxRng::new(1, 0);
        let _ = sample_weighted(&[], &mut rng);
    }
}
