//! Walker/Vose alias method: O(n) table construction, O(1) per sample.
//!
//! The Batched Execution sampler chooses between this and the sorted-merge
//! kernel in [`crate::sorted`]: alias tables win when *many* shots are drawn
//! from a distribution over *few* outcomes (e.g. Kraus-index sampling or
//! small-n statevectors), while the sorted merge wins when the outcome space
//! is huge relative to the shot count.

use crate::Rng;

/// Pre-processed alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per bucket, scaled to [0,1].
    prob: Vec<f64>,
    /// Alias outcome per bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build a table from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: empty weights");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "AliasTable: weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "AliasTable: weights sum to zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Robin-Hood partition into small/large stacks.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Round-off leftovers: every remaining bucket accepts its own index.
        for s in small {
            prob[s as usize] = 1.0;
        }
        for l in large {
            prob[l as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table covers no outcomes (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Draw `m` outcomes into a fresh vector.
    pub fn sample_many<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<usize> {
        (0..m).map(|_| self.sample(rng)).collect()
    }

    /// Accumulate counts for `m` draws: `counts[i] += #draws of i`.
    pub fn sample_counts<R: Rng + ?Sized>(&self, m: usize, rng: &mut R, counts: &mut [usize]) {
        assert_eq!(counts.len(), self.prob.len());
        for _ in 0..m {
            counts[self.sample(rng)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhiloxRng;

    #[test]
    fn matches_weights() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&w);
        let mut rng = PhiloxRng::new(11, 0);
        let mut counts = [0usize; 4];
        let m = 200_000;
        table.sample_counts(m, &mut rng, &mut counts);
        let total: f64 = w.iter().sum();
        for (i, &wi) in w.iter().enumerate() {
            let frac = counts[i] as f64 / m as f64;
            let expect = wi / total;
            assert!(
                (frac - expect).abs() < 0.01,
                "outcome {i}: {frac} vs {expect}"
            );
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = PhiloxRng::new(1, 0);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcome_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = PhiloxRng::new(2, 0);
        for _ in 0..10_000 {
            let i = table.sample(&mut rng);
            assert!(i == 1 || i == 3, "drew zero-weight outcome {i}");
        }
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[0.5, -0.1]);
    }

    #[test]
    fn highly_skewed_weights() {
        let table = AliasTable::new(&[1e-12, 1.0]);
        let mut rng = PhiloxRng::new(3, 0);
        let hits0 = (0..100_000).filter(|_| table.sample(&mut rng) == 0).count();
        // Expected ~1e-7 draws; allow zero but never many.
        assert!(hits0 < 10);
    }
}
