//! Circuit operations: coherent gates, explicit noise insertions, and
//! measurement/reset.

use crate::gate::Gate;
use crate::kraus::KrausChannel;
use std::sync::Arc;

/// A gate applied to specific qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct GateOp {
    /// The gate.
    pub gate: Gate,
    /// Target qubits, in the gate's argument order (e.g. `[control,
    /// target]` for CNOT).
    pub qubits: Vec<usize>,
}

/// A noise channel attached to specific qubits.
#[derive(Clone, Debug)]
pub struct NoiseOp {
    /// The channel (shared — one channel object typically appears at many
    /// sites).
    pub channel: Arc<KrausChannel>,
    /// Target qubits (length = channel arity).
    pub qubits: Vec<usize>,
}

/// One step of a circuit.
#[derive(Clone, Debug)]
pub enum Op {
    /// Coherent gate (solid green in the paper's Fig. 2).
    Gate(GateOp),
    /// Stochastic noise site (hollow blue in the paper's Fig. 2).
    Noise(NoiseOp),
    /// Destructive Z-basis measurement of the listed qubits, appending one
    /// classical bit each to the shot record.
    Measure {
        /// Qubits to measure, in record order.
        qubits: Vec<usize>,
    },
    /// Reset a qubit to |0⟩.
    Reset {
        /// The qubit to reset.
        qubit: usize,
    },
}

impl Op {
    /// Qubits touched by this operation.
    pub fn qubits(&self) -> &[usize] {
        match self {
            Op::Gate(g) => &g.qubits,
            Op::Noise(n) => &n.qubits,
            Op::Measure { qubits } => qubits,
            Op::Reset { qubit } => std::slice::from_ref(qubit),
        }
    }

    /// True for coherent gates.
    pub fn is_gate(&self) -> bool {
        matches!(self, Op::Gate(_))
    }

    /// True for stochastic noise sites.
    pub fn is_noise(&self) -> bool {
        matches!(self, Op::Noise(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;

    #[test]
    fn qubit_accessors() {
        let g = Op::Gate(GateOp {
            gate: Gate::Cx,
            qubits: vec![0, 3],
        });
        assert_eq!(g.qubits(), &[0, 3]);
        assert!(g.is_gate());
        assert!(!g.is_noise());

        let n = Op::Noise(NoiseOp {
            channel: Arc::new(channels::depolarizing(0.1)),
            qubits: vec![2],
        });
        assert_eq!(n.qubits(), &[2]);
        assert!(n.is_noise());

        let m = Op::Measure { qubits: vec![1, 2] };
        assert_eq!(m.qubits(), &[1, 2]);

        let r = Op::Reset { qubit: 5 };
        assert_eq!(r.qubits(), &[5]);
    }
}
