//! The gate set.
//!
//! Named gates cover the Clifford group generators, the non-Clifford T and
//! the √X/√Y family from the paper's Fig. 3 MSD compilation; `Unitary1`/
//! `Unitary2` escape hatches admit arbitrary matrices (needed for Haar
//! twirling and compiled logical gates). Matrices are stored/produced at
//! `f64` and converted by the backend to its working precision.

use ptsbe_math::{gates, Matrix, Scalar};
use std::sync::Arc;

/// A quantum gate. `Clone` is cheap: arbitrary-matrix payloads are
/// reference-counted.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate √Z.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate (π/8).
    T,
    /// T†.
    Tdg,
    /// √X (paper Fig. 3).
    Sx,
    /// √X†.
    Sxdg,
    /// √Y (paper Fig. 3).
    Sy,
    /// √Y†.
    Sydg,
    /// X rotation by radians.
    Rx(f64),
    /// Y rotation by radians.
    Ry(f64),
    /// Z rotation by radians.
    Rz(f64),
    /// Phase rotation `diag(1, e^{iλ})`.
    P(f64),
    /// CNOT (first qubit = control).
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// Toffoli (first two qubits = controls).
    Ccx,
    /// Arbitrary single-qubit unitary.
    Unitary1(Arc<Matrix<f64>>),
    /// Arbitrary two-qubit unitary (basis convention of [`ptsbe_math::gates`]).
    Unitary2(Arc<Matrix<f64>>),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        match self {
            Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Sy
            | Gate::Sydg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::Unitary1(_) => 1,
            Gate::Cx | Gate::Cz | Gate::Swap | Gate::Unitary2(_) => 2,
            Gate::Ccx => 3,
        }
    }

    /// Short mnemonic used by noise-model lookups and provenance labels.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Sy => "sy",
            Gate::Sydg => "sydg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Unitary1(_) => "u1q",
            Gate::Unitary2(_) => "u2q",
        }
    }

    /// The gate's unitary matrix at the requested precision.
    pub fn matrix<T: Scalar>(&self) -> Matrix<T> {
        match self {
            Gate::X => gates::x(),
            Gate::Y => gates::y(),
            Gate::Z => gates::z(),
            Gate::H => gates::h(),
            Gate::S => gates::s(),
            Gate::Sdg => gates::sdg(),
            Gate::T => gates::t(),
            Gate::Tdg => gates::tdg(),
            Gate::Sx => gates::sx(),
            Gate::Sxdg => gates::sxdg(),
            Gate::Sy => gates::sy(),
            Gate::Sydg => gates::sydg(),
            Gate::Rx(t) => gates::rx(*t),
            Gate::Ry(t) => gates::ry(*t),
            Gate::Rz(t) => gates::rz(*t),
            Gate::P(l) => gates::p(*l),
            Gate::Cx => gates::cx(),
            Gate::Cz => gates::cz(),
            Gate::Swap => gates::swap(),
            Gate::Ccx => gates::ccx(),
            Gate::Unitary1(m) | Gate::Unitary2(m) => Matrix::from_f64_matrix(m),
        }
    }

    /// True when the gate is a member of the Clifford group (exactly, not
    /// up to phase heuristics) — the stabilizer backend accepts only these.
    pub fn is_clifford(&self) -> bool {
        matches!(
            self,
            Gate::X
                | Gate::Y
                | Gate::Z
                | Gate::H
                | Gate::S
                | Gate::Sdg
                | Gate::Sx
                | Gate::Sxdg
                | Gate::Sy
                | Gate::Sydg
                | Gate::Cx
                | Gate::Cz
                | Gate::Swap
        )
    }

    /// The inverse gate (named gates map to named gates).
    pub fn dagger(&self) -> Gate {
        match self {
            Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::Cx
            | Gate::Cz
            | Gate::Swap
            | Gate::Ccx => self.clone(),
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Sy => Gate::Sydg,
            Gate::Sydg => Gate::Sy,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::P(l) => Gate::P(-l),
            Gate::Unitary1(m) => Gate::Unitary1(Arc::new(m.dagger())),
            Gate::Unitary2(m) => Gate::Unitary2(Arc::new(m.dagger())),
        }
    }

    /// Construct an arbitrary single-qubit gate from a unitary matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not 2×2 unitary.
    pub fn unitary1(m: Matrix<f64>) -> Self {
        assert_eq!((m.rows(), m.cols()), (2, 2), "unitary1: need 2x2");
        assert!(m.is_unitary(1e-9), "unitary1: matrix is not unitary");
        Gate::Unitary1(Arc::new(m))
    }

    /// Construct an arbitrary two-qubit gate from a unitary matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not 4×4 unitary.
    pub fn unitary2(m: Matrix<f64>) -> Self {
        assert_eq!((m.rows(), m.cols()), (4, 4), "unitary2: need 4x4");
        assert!(m.is_unitary(1e-9), "unitary2: matrix is not unitary");
        Gate::Unitary2(Arc::new(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_named() -> Vec<Gate> {
        vec![
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Sy,
            Gate::Sydg,
            Gate::Rx(0.3),
            Gate::Ry(-1.2),
            Gate::Rz(2.2),
            Gate::P(0.7),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ccx,
        ]
    }

    #[test]
    fn matrices_are_unitary_and_sized() {
        for g in all_named() {
            let m = g.matrix::<f64>();
            assert_eq!(m.rows(), 1 << g.arity(), "{}", g.name());
            assert!(m.is_unitary(1e-10), "{}", g.name());
        }
    }

    #[test]
    fn clifford_census() {
        assert!(Gate::H.is_clifford());
        assert!(Gate::S.is_clifford());
        assert!(Gate::Cx.is_clifford());
        assert!(Gate::Sx.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(!Gate::Rx(0.1).is_clifford());
        assert!(!Gate::Ccx.is_clifford());
    }

    #[test]
    fn custom_unitaries_validated() {
        let g = Gate::unitary1(ptsbe_math::gates::h::<f64>());
        assert_eq!(g.arity(), 1);
        assert_eq!(g.matrix::<f64>().max_abs_diff(&ptsbe_math::gates::h()), 0.0);
    }

    #[test]
    #[should_panic(expected = "not unitary")]
    fn non_unitary_rejected() {
        let mut m = Matrix::<f64>::identity(2);
        m[(0, 0)] = ptsbe_math::Complex::from_f64(2.0, 0.0);
        let _ = Gate::unitary1(m);
    }

    #[test]
    #[should_panic(expected = "need 4x4")]
    fn unitary2_shape_checked() {
        let _ = Gate::unitary2(Matrix::<f64>::identity(2));
    }

    #[test]
    fn names_unique_per_variant() {
        let names: Vec<_> = all_named().iter().map(|g| g.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
