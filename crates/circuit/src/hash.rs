//! Stable content hashing for circuits and channels.
//!
//! The data-collection service (`ptsbe_service`) memoizes compiled
//! artifacts keyed by *what a circuit is*, not by object identity: two
//! structurally identical [`Circuit`]s must collide and any semantic
//! difference — a gate, a qubit index, a rotation angle, a Kraus matrix
//! entry, a channel probability — must (with overwhelming probability)
//! separate them. `std::hash::DefaultHasher` gives no cross-version
//! stability guarantee, so the hasher here is an explicit FNV-1a over a
//! canonical byte encoding: the hash of a circuit is a durable cache key
//! that survives process restarts and toolchain upgrades.
//!
//! Floating-point payloads are hashed by their `f64` bit patterns, which
//! is exactly the right equivalence for a compile cache: a compilation is
//! reusable iff every matrix entry is *bitwise* the same.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::kraus::KrausChannel;
use crate::noisy::{NoisyCircuit, NoisyOp};
use crate::op::Op;
use ptsbe_math::Matrix;

/// 64-bit FNV-1a, written out explicitly so the byte-level encoding (and
/// therefore every persisted cache key) is pinned by this crate rather
/// than by the standard library.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u64);

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u8` tag (op/gate discriminants).
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize` widened to 64 bits (qubit indices, counts).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a length-prefixed byte string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot convenience: hash a `u64` pair (key-combining helper for
/// cache layers composing several content hashes).
pub fn combine(a: u64, b: u64) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

fn hash_matrix(h: &mut StableHasher, m: &Matrix<f64>) {
    h.write_usize(m.rows());
    h.write_usize(m.cols());
    for z in m.as_slice() {
        h.write_f64(z.re);
        h.write_f64(z.im);
    }
}

fn hash_qubits(h: &mut StableHasher, qs: &[usize]) {
    h.write_usize(qs.len());
    for &q in qs {
        h.write_usize(q);
    }
}

fn hash_gate(h: &mut StableHasher, g: &Gate) {
    // Named gates hash by tag (their matrices are implied); parameterized
    // and arbitrary-unitary gates additionally absorb their payload bits.
    let tag: u8 = match g {
        Gate::X => 0,
        Gate::Y => 1,
        Gate::Z => 2,
        Gate::H => 3,
        Gate::S => 4,
        Gate::Sdg => 5,
        Gate::T => 6,
        Gate::Tdg => 7,
        Gate::Sx => 8,
        Gate::Sxdg => 9,
        Gate::Sy => 10,
        Gate::Sydg => 11,
        Gate::Rx(_) => 12,
        Gate::Ry(_) => 13,
        Gate::Rz(_) => 14,
        Gate::P(_) => 15,
        Gate::Cx => 16,
        Gate::Cz => 17,
        Gate::Swap => 18,
        Gate::Ccx => 19,
        Gate::Unitary1(_) => 20,
        Gate::Unitary2(_) => 21,
    };
    h.write_u8(tag);
    match g {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) => h.write_f64(*t),
        Gate::Unitary1(m) | Gate::Unitary2(m) => hash_matrix(h, m),
        _ => {}
    }
}

impl KrausChannel {
    /// Stable semantic hash of the channel: arity, every Kraus operator's
    /// bit pattern, and the pre-sampling probabilities. The display name
    /// is deliberately excluded — two channels with identical physics are
    /// the same cache entry regardless of label.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.arity());
        h.write_usize(self.n_ops());
        for i in 0..self.n_ops() {
            hash_matrix(&mut h, self.op(i));
        }
        for &p in self.sampling_probs() {
            h.write_f64(p);
        }
        h.finish()
    }
}

impl Circuit {
    /// Stable content hash over qubit count and the full op stream (gate
    /// payloads, channel physics, measurement/reset targets). Equal for
    /// structurally identical circuits across processes and runs.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.n_qubits());
        h.write_usize(self.ops().len());
        for op in self.ops() {
            match op {
                Op::Gate(g) => {
                    h.write_u8(0);
                    hash_gate(&mut h, &g.gate);
                    hash_qubits(&mut h, &g.qubits);
                }
                Op::Noise(n) => {
                    h.write_u8(1);
                    h.write_u64(n.channel.content_hash());
                    hash_qubits(&mut h, &n.qubits);
                }
                Op::Measure { qubits } => {
                    h.write_u8(2);
                    hash_qubits(&mut h, qubits);
                }
                Op::Reset { qubit } => {
                    h.write_u8(3);
                    h.write_usize(*qubit);
                }
            }
        }
        h.finish()
    }
}

impl NoisyCircuit {
    /// Stable content hash of the indexed form — the cache key the
    /// data-collection service compiles under. Mirrors
    /// [`Circuit::content_hash`] over the [`NoisyOp`] stream, so a
    /// circuit and its `NoisyCircuit::from_circuit` image hash the same
    /// structure through either entry point.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.n_qubits());
        h.write_usize(self.ops().len());
        for op in self.ops() {
            match op {
                NoisyOp::Gate(g) => {
                    h.write_u8(0);
                    hash_gate(&mut h, &g.gate);
                    hash_qubits(&mut h, &g.qubits);
                }
                NoisyOp::Site(id) => {
                    let site = &self.sites()[*id];
                    h.write_u8(1);
                    h.write_u64(site.channel.content_hash());
                    hash_qubits(&mut h, &site.qubits);
                }
                NoisyOp::Measure { qubits } => {
                    h.write_u8(2);
                    hash_qubits(&mut h, qubits);
                }
                NoisyOp::Reset { qubit } => {
                    h.write_u8(3);
                    h.write_usize(*qubit);
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;
    use crate::noise_model::NoiseModel;
    use std::sync::Arc;

    fn base() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.5).measure_all();
        c
    }

    #[test]
    fn identical_circuits_collide() {
        assert_eq!(base().content_hash(), base().content_hash());
        let nc1 = NoisyCircuit::from_circuit(base());
        let nc2 = NoisyCircuit::from_circuit(base());
        assert_eq!(nc1.content_hash(), nc2.content_hash());
    }

    #[test]
    fn gate_qubit_angle_and_order_all_separate() {
        let h0 = base().content_hash();
        let mut c = base();
        c.x(0);
        assert_ne!(h0, c.content_hash(), "extra gate");

        let mut c = Circuit::new(3);
        c.h(1).cx(0, 1).rz(2, 0.5).measure_all();
        assert_ne!(h0, c.content_hash(), "different qubit");

        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.5000001).measure_all();
        assert_ne!(h0, c.content_hash(), "different angle");

        let mut c = Circuit::new(3);
        c.cx(0, 1).h(0).rz(2, 0.5).measure_all();
        assert_ne!(h0, c.content_hash(), "different order");

        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).rz(2, 0.5).measure_all();
        assert_ne!(h0, c.content_hash(), "different register width");
    }

    #[test]
    fn noise_physics_separates_but_names_do_not() {
        let attach = |ch: KrausChannel| {
            NoiseModel::new()
                .with_default_1q(ch)
                .apply(&base())
                .content_hash()
        };
        assert_ne!(
            attach(channels::depolarizing(0.1)),
            attach(channels::depolarizing(0.2)),
            "noise strength must separate"
        );
        assert_ne!(
            attach(channels::depolarizing(0.1)),
            attach(channels::bit_flip(0.1)),
            "channel structure must separate"
        );
        // Same physics, different label: same key.
        let p = 0.1;
        let mut a = Circuit::new(1);
        a.noise(Arc::new(channels::depolarizing(p)), &[0]);
        let renamed = KrausChannel::unitary_mixture(
            "custom-label",
            vec![1.0 - p, p / 3.0, p / 3.0, p / 3.0],
            vec![
                ptsbe_math::Matrix::identity(2),
                ptsbe_math::gates::x::<f64>(),
                ptsbe_math::gates::y::<f64>(),
                ptsbe_math::gates::z::<f64>(),
            ],
        );
        let mut b = Circuit::new(1);
        b.noise(Arc::new(renamed), &[0]);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn combine_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_eq!(combine(7, 9), combine(7, 9));
    }
}
