//! Gate fusion: merge runs of adjacent gates into fewer, larger kernels.
//!
//! Every trajectory pays full price per gate, so the compiled op stream —
//! shared by all trajectories and all plans in the trie — is the single
//! highest-leverage place to optimize. This module implements the fusion
//! pass both backend compilers run once per [`crate::NoisyCircuit`]
//! segment (qsim/Cirq report large wins from the same idea): runs of
//! gates acting on overlapping qubit sets collapse into one fused
//! unitary, capped at 2 qubits so the statevector and MPS kernels both
//! apply the result natively.
//!
//! Fusion operates strictly *within* a gate run: the backend compilers
//! flush the [`Fuser`] at every noise site, so Kraus branch points,
//! segment boundaries, and Philox stream association are untouched.
//!
//! Each fused op is classified ([`FusedKernel`]) so backends can route it
//! to a specialized kernel:
//! - [`FusedKernel::Diagonal`] — pure phase multiply, no amplitude
//!   movement (e.g. runs of Z/S/T/Rz/CZ);
//! - [`FusedKernel::Permutation`] — one nonzero per row/column, an index
//!   shuffle with phases (e.g. runs of X/Y/CX/SWAP);
//! - [`FusedKernel::Dense`] — the general dense apply.

use ptsbe_math::{Complex, Matrix};
use std::collections::HashMap;

/// Entries with modulus below this are treated as structural zeros when a
/// fused matrix is classified; they are zeroed in the stored matrix so
/// the specialized kernel and a dense apply of the same matrix are the
/// same linear map. The threshold sits far below the 1e-12 equivalence
/// budget the fusion test suite enforces.
pub const FUSION_ZERO_TOL: f64 = 1e-14;

/// The kernel class of a fused operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FusedKernel {
    /// General dense matrix.
    Dense,
    /// Diagonal matrix: a pure phase multiply.
    Diagonal,
    /// Exactly one nonzero per row and column: an index shuffle with
    /// phases (diagonal matrices classify as [`FusedKernel::Diagonal`]
    /// first).
    Permutation,
}

/// One fused operation: a 2×2 or 4×4 unitary over one or two qubits.
#[derive(Clone, Debug)]
pub struct FusedOp {
    /// The fused matrix at `f64`, in the workspace's gate-argument basis
    /// (`(bit_q0 << 1) | bit_q1` for two qubits). Sub-tolerance entries
    /// are zeroed (see [`FUSION_ZERO_TOL`]).
    pub matrix: Matrix<f64>,
    /// Target qubits (length 1 or 2), matching the matrix dimension.
    pub qubits: Vec<usize>,
    /// Kernel classification of [`FusedOp::matrix`].
    pub kind: FusedKernel,
}

/// Fusion report for one compiled circuit: op counts before/after and
/// the kernel-class histogram, surfaced by the backends next to the plan
/// tree's `prep_ops_saved`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Gate ops entering the fusion pass (noise sites excluded).
    pub ops_before: usize,
    /// Ops in the fused stream (noise sites excluded).
    pub ops_after: usize,
    /// Fused ops classified [`FusedKernel::Dense`].
    pub dense: usize,
    /// Fused ops classified [`FusedKernel::Diagonal`].
    pub diagonal: usize,
    /// Fused ops classified [`FusedKernel::Permutation`].
    pub permutation: usize,
    /// Ops that bypassed fusion (gates above 2 qubits act as barriers
    /// and pass through unchanged).
    pub passthrough: usize,
}

impl FusionStats {
    /// Gate applications eliminated per trajectory preparation.
    pub fn ops_saved(&self) -> usize {
        self.ops_before - self.ops_after
    }

    /// Fraction of gate ops eliminated (0 when the stream was empty).
    pub fn reduction(&self) -> f64 {
        if self.ops_before == 0 {
            0.0
        } else {
            self.ops_saved() as f64 / self.ops_before as f64
        }
    }

    /// Tally one fused run of `before` input gates.
    pub fn record_run(&mut self, before: usize, run: &[FusedOp]) {
        self.ops_before += before;
        self.ops_after += run.len();
        for op in run {
            match op.kind {
                FusedKernel::Dense => self.dense += 1,
                FusedKernel::Diagonal => self.diagonal += 1,
                FusedKernel::Permutation => self.permutation += 1,
            }
        }
    }

    /// Tally one op that bypassed fusion unchanged.
    pub fn record_passthrough(&mut self) {
        self.ops_before += 1;
        self.ops_after += 1;
        self.passthrough += 1;
    }
}

impl std::fmt::Display for FusionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops -> {} ({:.1}% saved; dense {}, diag {}, perm {}, passthrough {})",
            self.ops_before,
            self.ops_after,
            100.0 * self.reduction(),
            self.dense,
            self.diagonal,
            self.permutation,
            self.passthrough
        )
    }
}

/// A pending (still-growing) fused op.
struct Pending {
    matrix: Matrix<f64>,
    qubits: Vec<usize>,
}

/// Streaming gate fuser over one gate run (no noise sites inside).
///
/// Gates are pushed in circuit order; [`Fuser::finish`] emits the fused
/// stream. The invariant that makes greedy merging sound: a gate may be
/// merged into pending op `i` only when `i` is the *latest* pending op
/// touching every one of the gate's qubits — any pending op after `i`
/// then acts on disjoint qubits and commutes past the merged gate.
#[derive(Default)]
pub struct Fuser {
    /// Emission-ordered slots; merged-away ops leave `None` tombstones.
    slots: Vec<Option<Pending>>,
    /// Latest slot touching each qubit.
    active: HashMap<usize, usize>,
    /// Gates pushed so far.
    pushed: usize,
}

impl Fuser {
    /// A fresh fuser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gates pushed since construction.
    pub fn n_pushed(&self) -> usize {
        self.pushed
    }

    /// Push the next gate of the run.
    ///
    /// # Panics
    /// Panics on arities other than 1 or 2 (larger gates are fusion
    /// barriers — flush with [`Fuser::finish`] and emit them unchanged).
    pub fn push(&mut self, m: &Matrix<f64>, qubits: &[usize]) {
        self.pushed += 1;
        match *qubits {
            [q] => self.push_1q(m, q),
            [a, b] => self.push_2q(m, a, b),
            _ => panic!("fuser accepts only 1- and 2-qubit gates"),
        }
    }

    fn push_1q(&mut self, m: &Matrix<f64>, q: usize) {
        if let Some(&i) = self.active.get(&q) {
            let p = self.slots[i].as_mut().expect("active slot live");
            if p.qubits.len() == 1 {
                p.matrix = m.mul_ref(&p.matrix);
            } else {
                let pos = usize::from(p.qubits[0] != q);
                p.matrix = embed_1q(m, pos).mul_ref(&p.matrix);
            }
        } else {
            self.open_slot(m.clone(), vec![q]);
        }
    }

    fn push_2q(&mut self, m: &Matrix<f64>, a: usize, b: usize) {
        assert_ne!(a, b, "two-qubit gate needs distinct qubits");
        let ia = self.active.get(&a).copied();
        let ib = self.active.get(&b).copied();
        match (ia, ib) {
            (Some(i), Some(j)) if i == j => {
                // The pending op already covers exactly {a, b}.
                let p = self.slots[i].as_mut().expect("active slot live");
                let aligned = if p.qubits == [a, b] {
                    m.clone()
                } else {
                    swap_2q_args(m)
                };
                p.matrix = aligned.mul_ref(&p.matrix);
            }
            (Some(i), Some(j)) => {
                // Two distinct pending ops. Any 1-qubit pending can be
                // absorbed (the result stays within 2 qubits); a 2-qubit
                // pending spanning a third qubit cannot. Moving absorbed
                // ops to a fresh trailing slot is safe: each was the
                // latest op on its qubit, so everything after it commutes
                // past.
                let i_1q = self.slots[i].as_ref().expect("live").qubits.len() == 1;
                let j_1q = self.slots[j].as_ref().expect("live").qubits.len() == 1;
                let init = match (i_1q, j_1q) {
                    (true, true) => {
                        let pa = self.slots[i].take().expect("live");
                        let pb = self.slots[j].take().expect("live");
                        Some(pa.matrix.kron(&pb.matrix))
                    }
                    (true, false) => {
                        let pa = self.slots[i].take().expect("live");
                        Some(pa.matrix.kron(&Matrix::identity(2)))
                    }
                    (false, true) => {
                        let pb = self.slots[j].take().expect("live");
                        Some(Matrix::identity(2).kron(&pb.matrix))
                    }
                    (false, false) => None,
                };
                match init {
                    Some(init) => self.open_slot(m.mul_ref(&init), vec![a, b]),
                    None => self.open_slot(m.clone(), vec![a, b]),
                }
            }
            (Some(i), None) | (None, Some(i)) => {
                let on_a = ia.is_some();
                if self.slots[i].as_ref().expect("live").qubits.len() == 1 {
                    let p = self.slots[i].take().expect("live");
                    let init = if on_a {
                        p.matrix.kron(&Matrix::identity(2))
                    } else {
                        Matrix::identity(2).kron(&p.matrix)
                    };
                    self.open_slot(m.mul_ref(&init), vec![a, b]);
                } else {
                    // Pending op spans a third qubit; cannot grow past 2.
                    self.open_slot(m.clone(), vec![a, b]);
                }
            }
            (None, None) => {
                self.open_slot(m.clone(), vec![a, b]);
            }
        }
    }

    fn open_slot(&mut self, matrix: Matrix<f64>, qubits: Vec<usize>) {
        let idx = self.slots.len();
        for &q in &qubits {
            self.active.insert(q, idx);
        }
        self.slots.push(Some(Pending { matrix, qubits }));
    }

    /// Emit the fused stream in execution order and reset the fuser for
    /// the next run. Returns `(gates pushed, fused ops)`.
    pub fn finish(&mut self) -> (usize, Vec<FusedOp>) {
        let pushed = std::mem::take(&mut self.pushed);
        self.active.clear();
        let out = std::mem::take(&mut self.slots)
            .into_iter()
            .flatten()
            .map(|p| {
                let mut matrix = p.matrix;
                zero_small_entries(&mut matrix);
                let kind = classify(&matrix);
                FusedOp {
                    matrix,
                    qubits: p.qubits,
                    kind,
                }
            })
            .collect();
        (pushed, out)
    }
}

/// Fuse one complete gate run (convenience over the streaming [`Fuser`]).
pub fn fuse_run<'a, I>(gates: I) -> Vec<FusedOp>
where
    I: IntoIterator<Item = (&'a Matrix<f64>, &'a [usize])>,
{
    let mut fuser = Fuser::new();
    for (m, qs) in gates {
        fuser.push(m, qs);
    }
    fuser.finish().1
}

/// Classify a (cleaned) matrix into its kernel class.
pub fn classify(m: &Matrix<f64>) -> FusedKernel {
    let n = m.rows();
    let zero = Complex::<f64>::zero();
    let diagonal = (0..n).all(|r| (0..n).all(|c| r == c || m[(r, c)] == zero));
    if diagonal {
        return FusedKernel::Diagonal;
    }
    let one_per_row = (0..n).all(|r| (0..n).filter(|&c| m[(r, c)] != zero).count() == 1);
    let one_per_col = (0..n).all(|c| (0..n).filter(|&r| m[(r, c)] != zero).count() == 1);
    if one_per_row && one_per_col {
        FusedKernel::Permutation
    } else {
        FusedKernel::Dense
    }
}

/// Zero entries below [`FUSION_ZERO_TOL`] so classification is structural
/// and the stored matrix equals the operator the specialized kernel
/// applies.
fn zero_small_entries(m: &mut Matrix<f64>) {
    for z in m.as_mut_slice() {
        if z.abs() < FUSION_ZERO_TOL {
            *z = Complex::zero();
        }
    }
}

/// Embed a 2×2 matrix into a 4×4 at position `pos` of the fused op's
/// qubit pair (0 = first/most-significant qubit, 1 = second).
fn embed_1q(m: &Matrix<f64>, pos: usize) -> Matrix<f64> {
    if pos == 0 {
        m.kron(&Matrix::identity(2))
    } else {
        Matrix::identity(2).kron(m)
    }
}

/// Rewrite a 4×4 matrix from basis `(bit_a << 1) | bit_b` to the basis
/// with the two qubit roles exchanged.
fn swap_2q_args(m: &Matrix<f64>) -> Matrix<f64> {
    let sw = |x: usize| ((x & 1) << 1) | (x >> 1);
    let mut out = Matrix::zeros(4, 4);
    for r in 0..4 {
        for c in 0..4 {
            out[(r, c)] = m[(sw(r), sw(c))];
        }
    }
    out
}

/// Embed a 1-/2-qubit matrix into the full `2^n` space (qubit `q` = bit
/// `q`; gate basis bit `k-1-t` corresponds to `qs[t]`, matching
/// [`ptsbe_math::gates`]). Exponential in `n` — this is the *test
/// oracle* the fusion equivalence suites compare streams with, not an
/// execution path.
pub fn embed_unitary(n: usize, m: &Matrix<f64>, qs: &[usize]) -> Matrix<f64> {
    let dim = 1usize << n;
    let k = qs.len();
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let gc: usize = qs
            .iter()
            .enumerate()
            .map(|(t, &q)| ((col >> q) & 1) << (k - 1 - t))
            .sum();
        let base = qs.iter().fold(col, |acc, &q| acc & !(1 << q));
        for gr in 0..(1usize << k) {
            let mut row = base;
            for (t, &q) in qs.iter().enumerate() {
                row |= ((gr >> (k - 1 - t)) & 1) << q;
            }
            out[(row, col)] += m[(gr, gc)];
        }
    }
    out
}

/// Compose an op list into its full `2^n` unitary (left-multiplication
/// in circuit order). Companion test oracle to [`embed_unitary`].
pub fn compose_ops(n: usize, ops: &[(Matrix<f64>, Vec<usize>)]) -> Matrix<f64> {
    let mut u = Matrix::<f64>::identity(1 << n);
    for (m, qs) in ops {
        u = embed_unitary(n, m, qs).mul_ref(&u);
    }
    u
}

/// Extract the permutation form of a [`FusedKernel::Permutation`] (or
/// [`FusedKernel::Diagonal`]) matrix: `perm[r]` is the column holding row
/// `r`'s single nonzero and `phase[r]` its value, i.e.
/// `out[r] = phase[r] * in[perm[r]]`.
///
/// # Panics
/// Panics if some row does not have exactly one nonzero entry.
pub fn permutation_form(m: &Matrix<f64>) -> (Vec<usize>, Vec<Complex<f64>>) {
    let n = m.rows();
    let mut perm = Vec::with_capacity(n);
    let mut phase = Vec::with_capacity(n);
    for r in 0..n {
        let mut hit = None;
        for c in 0..n {
            if m[(r, c)] != Complex::zero() {
                assert!(hit.is_none(), "row {r} has multiple nonzeros");
                hit = Some(c);
            }
        }
        let c = hit.expect("permutation row has a nonzero");
        perm.push(c);
        phase.push(m[(r, c)]);
    }
    (perm, phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_math::gates;

    use super::compose_ops as compose;

    fn assert_fused_equivalent(n: usize, ops: &[(Matrix<f64>, Vec<usize>)]) {
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        let fused_ops: Vec<_> = fused
            .iter()
            .map(|f| (f.matrix.clone(), f.qubits.clone()))
            .collect();
        let a = compose(n, ops);
        let b = compose(n, &fused_ops);
        assert!(
            a.max_abs_diff(&b) < 1e-12,
            "fused stream diverged: {}",
            a.max_abs_diff(&b)
        );
    }

    #[test]
    fn single_qubit_run_collapses_to_one_op() {
        let ops = vec![
            (gates::h::<f64>(), vec![0]),
            (gates::t::<f64>(), vec![0]),
            (gates::h::<f64>(), vec![0]),
            (gates::s::<f64>(), vec![0]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 1);
        assert_fused_equivalent(1, &ops);
    }

    #[test]
    fn one_q_runs_absorb_into_two_q_ops() {
        // h(0) h(1) cx(0,1) t(1) -> one 4x4.
        let ops = vec![
            (gates::h::<f64>(), vec![0]),
            (gates::h::<f64>(), vec![1]),
            (gates::cx::<f64>(), vec![0, 1]),
            (gates::t::<f64>(), vec![1]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].qubits, vec![0, 1]);
        assert_fused_equivalent(2, &ops);
    }

    #[test]
    fn reversed_argument_order_aligned() {
        // cx(0,1) then cx(1,0): must compose in the shared basis.
        let ops = vec![
            (gates::cx::<f64>(), vec![0, 1]),
            (gates::cx::<f64>(), vec![1, 0]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 1);
        assert_fused_equivalent(2, &ops);
    }

    #[test]
    fn overlapping_pairs_do_not_merge_past_two_qubits() {
        let ops = vec![
            (gates::cx::<f64>(), vec![0, 1]),
            (gates::cx::<f64>(), vec![1, 2]),
            (gates::cx::<f64>(), vec![2, 0]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 3);
        assert_fused_equivalent(3, &ops);
    }

    #[test]
    fn one_q_pending_absorbed_when_other_qubit_is_busy() {
        // cx(1,2); t(0); cx(0,1): the t(0) pending must fold into the
        // cx(0,1) op even though qubit 1's pending is a 2q op — 3 gates
        // fuse to 2, not 3.
        let ops = vec![
            (gates::cx::<f64>(), vec![1, 2]),
            (gates::t::<f64>(), vec![0]),
            (gates::cx::<f64>(), vec![0, 1]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 2);
        assert_fused_equivalent(3, &ops);
        // Mirror case: the 1q pending sits on the second argument.
        let ops = vec![
            (gates::cx::<f64>(), vec![0, 2]),
            (gates::t::<f64>(), vec![1]),
            (gates::cx::<f64>(), vec![0, 1]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 2);
        assert_fused_equivalent(3, &ops);
    }

    #[test]
    fn stale_active_entries_stay_safe() {
        // cx(0,1) leaves qubit 1 active; cx(1,2) supersedes it; a later
        // 1q gate on 0 must merge into the *first* op only if nothing
        // after it touches 0 — here cx(2,0) does, so it must not.
        let ops = vec![
            (gates::cx::<f64>(), vec![0, 1]),
            (gates::cx::<f64>(), vec![1, 2]),
            (gates::cx::<f64>(), vec![2, 0]),
            (gates::t::<f64>(), vec![1]),
            (gates::h::<f64>(), vec![0]),
        ];
        assert_fused_equivalent(3, &ops);
    }

    #[test]
    fn classification_diagonal() {
        let ops = [
            (gates::t::<f64>(), vec![0]),
            (gates::rz::<f64>(0.37), vec![0]),
            (gates::s::<f64>(), vec![0]),
        ];
        let fused = fuse_run(ops.iter().map(|(m, q)| (m, q.as_slice())));
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].kind, FusedKernel::Diagonal);
    }

    #[test]
    fn classification_permutation() {
        let fused = fuse_run([
            (&gates::x::<f64>(), [0usize].as_slice()),
            (&gates::cx::<f64>(), [0, 1].as_slice()),
        ]);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].kind, FusedKernel::Permutation);
        let (perm, phase) = permutation_form(&fused[0].matrix);
        assert_eq!(perm.len(), 4);
        for p in phase {
            assert!((p.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classification_dense_and_hh_identity_diagonal() {
        let dense = fuse_run([(&gates::h::<f64>(), [0usize].as_slice())]);
        assert_eq!(dense[0].kind, FusedKernel::Dense);
        // H·H = I must classify as diagonal (exact zeros off-diagonal).
        let ident = fuse_run([
            (&gates::h::<f64>(), [0usize].as_slice()),
            (&gates::h::<f64>(), [0usize].as_slice()),
        ]);
        assert_eq!(ident[0].kind, FusedKernel::Diagonal);
    }

    #[test]
    fn cz_alone_is_diagonal() {
        let fused = fuse_run([(&gates::cz::<f64>(), [0usize, 1].as_slice())]);
        assert_eq!(fused[0].kind, FusedKernel::Diagonal);
    }

    #[test]
    fn stats_tally() {
        let mut stats = FusionStats::default();
        let ops = vec![
            (gates::h::<f64>(), vec![0]),
            (gates::t::<f64>(), vec![0]),
            (gates::cx::<f64>(), vec![0, 1]),
        ];
        let mut fuser = Fuser::new();
        for (m, q) in &ops {
            fuser.push(m, q);
        }
        let (before, run) = fuser.finish();
        stats.record_run(before, &run);
        stats.record_passthrough();
        assert_eq!(stats.ops_before, 4);
        assert_eq!(stats.ops_after, run.len() + 1);
        assert_eq!(stats.passthrough, 1);
        assert!(stats.ops_saved() >= 2);
        assert!(stats.reduction() > 0.0);
        let shown = format!("{stats}");
        assert!(shown.contains("saved"), "{shown}");
    }

    #[test]
    fn random_runs_compose_exactly() {
        let mut rng = ptsbe_rng::PhiloxRng::new(42, 0);
        for trial in 0..25 {
            let n = 3;
            let mut ops = Vec::new();
            for step in 0..10 {
                // Deterministic mix of arities/qubits from the RNG.
                let r = ptsbe_rng::Rng::next_u64(&mut rng);
                let a = (r % n as u64) as usize;
                let b = ((r >> 8) % n as u64) as usize;
                if r.is_multiple_of(3) && a != b {
                    ops.push((gates::cx::<f64>(), vec![a, b]));
                } else if step % 2 == 0 {
                    ops.push((
                        ptsbe_math::random::haar_unitary::<f64>(2, &mut rng),
                        vec![a],
                    ));
                } else {
                    ops.push((gates::rz::<f64>(0.1 * trial as f64), vec![a]));
                }
            }
            assert_fused_equivalent(n, &ops);
        }
    }
}
