//! Noisy circuits: the sampling domain of the PTS algorithms.
//!
//! A [`NoisyCircuit`] is a circuit whose stochastic content has been made
//! explicit as an indexed list of [`NoiseSite`]s (paper Fig. 2: the hollow
//! blue squares). A *trajectory* is then simply one Kraus-index choice per
//! site, and everything the PTS layer does — proportional sampling,
//! probability bands, top-k enumeration, provenance labeling — operates on
//! this site list without touching any quantum state.

use crate::circuit::Circuit;
use crate::kraus::KrausChannel;
use crate::op::{GateOp, Op};
use std::sync::Arc;

/// One stochastic location in the circuit.
#[derive(Clone, Debug)]
pub struct NoiseSite {
    /// Dense site index (`0..n_sites`), the key used by trajectory
    /// assignments and provenance records.
    pub id: usize,
    /// Position in [`NoisyCircuit::ops`] where the site fires.
    pub op_index: usize,
    /// Qubits the channel acts on.
    pub qubits: Vec<usize>,
    /// The channel.
    pub channel: Arc<KrausChannel>,
}

/// Execution-ready op stream: gates interleaved with numbered noise sites.
#[derive(Clone, Debug)]
pub enum NoisyOp {
    /// Coherent gate.
    Gate(GateOp),
    /// Stochastic site, resolved via the trajectory assignment (PTSBE) or
    /// sampled at runtime (Algorithm 1 baseline).
    Site(usize),
    /// Z-basis measurement.
    Measure {
        /// Qubits to measure, in record order.
        qubits: Vec<usize>,
    },
    /// Reset to |0⟩.
    Reset {
        /// The qubit to reset.
        qubit: usize,
    },
}

/// A circuit with explicit, indexed noise sites.
#[derive(Clone, Debug)]
pub struct NoisyCircuit {
    n_qubits: usize,
    ops: Vec<NoisyOp>,
    sites: Vec<NoiseSite>,
}

impl NoisyCircuit {
    /// Convert a circuit containing [`Op::Noise`] entries into indexed form.
    pub fn from_circuit(circuit: Circuit) -> Self {
        let n_qubits = circuit.n_qubits();
        let mut ops = Vec::with_capacity(circuit.ops().len());
        let mut sites = Vec::new();
        for op in circuit.ops() {
            match op {
                Op::Gate(g) => ops.push(NoisyOp::Gate(g.clone())),
                Op::Noise(n) => {
                    let id = sites.len();
                    sites.push(NoiseSite {
                        id,
                        op_index: ops.len(),
                        qubits: n.qubits.clone(),
                        channel: Arc::clone(&n.channel),
                    });
                    ops.push(NoisyOp::Site(id));
                }
                Op::Measure { qubits } => ops.push(NoisyOp::Measure {
                    qubits: qubits.clone(),
                }),
                Op::Reset { qubit } => ops.push(NoisyOp::Reset { qubit: *qubit }),
            }
        }
        Self {
            n_qubits,
            ops,
            sites,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The op stream.
    pub fn ops(&self) -> &[NoisyOp] {
        &self.ops
    }

    /// The noise sites, ordered by position in the circuit.
    pub fn sites(&self) -> &[NoiseSite] {
        &self.sites
    }

    /// Number of noise sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Qubits measured, in record order.
    pub fn measured_qubits(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let NoisyOp::Measure { qubits } = op {
                out.extend_from_slice(qubits);
            }
        }
        out
    }

    /// True when every site's channel is a unitary mixture, i.e. PTS
    /// pre-sampling is *exact* (no importance weights needed).
    pub fn all_unitary_mixture(&self) -> bool {
        self.sites.iter().all(|s| s.channel.is_unitary_mixture())
    }

    /// True when the coherent part is Clifford and every channel is a
    /// unitary mixture of Paulis — the condition for the stabilizer
    /// backend.
    pub fn gates_clifford(&self) -> bool {
        self.ops.iter().all(|o| match o {
            NoisyOp::Gate(g) => g.gate.is_clifford(),
            _ => true,
        })
    }

    /// Nominal joint probability of a full trajectory assignment
    /// (`choices[site.id]` = Kraus index). Exact for unitary-mixture
    /// channels; the maximally-mixed-state proposal weight otherwise.
    pub fn assignment_probability(&self, choices: &[usize]) -> f64 {
        assert_eq!(
            choices.len(),
            self.sites.len(),
            "assignment length mismatch"
        );
        let mut p = 1.0;
        for site in &self.sites {
            p *= site.channel.sampling_probs()[choices[site.id]];
        }
        p
    }

    /// True when two sites could represent *simultaneous* errors on a
    /// shared qubit — Algorithm 2's `compatible()` rejects such pairs when
    /// building correlated injections.
    pub fn sites_conflict(&self, a: usize, b: usize) -> bool {
        let (sa, sb) = (&self.sites[a], &self.sites[b]);
        sa.op_index == sb.op_index && sa.qubits.iter().any(|q| sb.qubits.contains(q))
    }

    /// The trivial ("no error anywhere") assignment, when every channel
    /// has an identity branch.
    pub fn identity_assignment(&self) -> Option<Vec<usize>> {
        self.sites
            .iter()
            .map(|s| s.channel.identity_index())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;
    use crate::noise_model::NoiseModel;

    fn noisy_bell(p: f64) -> NoisyCircuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        NoiseModel::new()
            .with_default_1q(channels::depolarizing(p))
            .with_default_2q(channels::depolarizing(p))
            .apply(&c)
    }

    #[test]
    fn site_indexing() {
        let nc = noisy_bell(0.1);
        assert_eq!(nc.n_sites(), 3); // h -> 1, cx -> 2 (per-qubit fan-out)
        for (i, site) in nc.sites().iter().enumerate() {
            assert_eq!(site.id, i);
            match &nc.ops()[site.op_index] {
                NoisyOp::Site(id) => assert_eq!(*id, i),
                other => panic!("op_index points at {other:?}"),
            }
        }
    }

    #[test]
    fn assignment_probability_factorizes() {
        let nc = noisy_bell(0.1);
        let ident = nc.identity_assignment().unwrap();
        let p0 = nc.assignment_probability(&ident);
        assert!((p0 - 0.9f64.powi(3)).abs() < 1e-12);
        // One X error on site 0.
        let mut one_err = ident.clone();
        one_err[0] = 1;
        let p1 = nc.assignment_probability(&one_err);
        assert!((p1 - 0.9f64.powi(2) * (0.1 / 3.0)).abs() < 1e-12);
        assert!(p1 < p0);
    }

    #[test]
    fn unitary_mixture_detection_propagates() {
        assert!(noisy_bell(0.2).all_unitary_mixture());
        let mut c = Circuit::new(1);
        c.h(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.2))
            .apply(&c);
        assert!(!nc.all_unitary_mixture());
    }

    #[test]
    fn clifford_gate_check() {
        let nc = noisy_bell(0.1);
        assert!(nc.gates_clifford());
        let mut c = Circuit::new(1);
        c.t(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.1))
            .apply(&c);
        assert!(!nc.gates_clifford());
    }

    #[test]
    fn conflicts_require_shared_qubit_and_time() {
        let mut c = Circuit::new(2);
        let ch = Arc::new(channels::depolarizing(0.1));
        // Two sites at different op positions on the same qubit: no conflict.
        c.noise(Arc::clone(&ch), &[0]);
        c.noise(Arc::clone(&ch), &[0]);
        let nc = NoisyCircuit::from_circuit(c);
        assert!(!nc.sites_conflict(0, 1));
    }

    #[test]
    fn measured_qubits_order() {
        let mut c = Circuit::new(3);
        c.measure(&[2, 0]);
        let nc = NoisyCircuit::from_circuit(c);
        assert_eq!(nc.measured_qubits(), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assignment_length_checked() {
        let nc = noisy_bell(0.1);
        let _ = nc.assignment_probability(&[0]);
    }

    #[test]
    fn identity_assignment_none_for_damping() {
        let mut c = Circuit::new(1);
        c.h(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.2))
            .apply(&c);
        assert!(nc.identity_assignment().is_none());
    }
}
