//! Noisy circuits: the sampling domain of the PTS algorithms.
//!
//! A [`NoisyCircuit`] is a circuit whose stochastic content has been made
//! explicit as an indexed list of [`NoiseSite`]s (paper Fig. 2: the hollow
//! blue squares). A *trajectory* is then simply one Kraus-index choice per
//! site, and everything the PTS layer does — proportional sampling,
//! probability bands, top-k enumeration, provenance labeling — operates on
//! this site list without touching any quantum state.

use crate::circuit::Circuit;
use crate::kraus::KrausChannel;
use crate::op::{GateOp, Op};
use std::sync::Arc;

/// One stochastic location in the circuit.
#[derive(Clone, Debug)]
pub struct NoiseSite {
    /// Dense site index (`0..n_sites`), the key used by trajectory
    /// assignments and provenance records.
    pub id: usize,
    /// Position in [`NoisyCircuit::ops`] where the site fires.
    pub op_index: usize,
    /// Qubits the channel acts on.
    pub qubits: Vec<usize>,
    /// The channel.
    pub channel: Arc<KrausChannel>,
}

/// Execution-ready op stream: gates interleaved with numbered noise sites.
#[derive(Clone, Debug)]
pub enum NoisyOp {
    /// Coherent gate.
    Gate(GateOp),
    /// Stochastic site, resolved via the trajectory assignment (PTSBE) or
    /// sampled at runtime (Algorithm 1 baseline).
    Site(usize),
    /// Z-basis measurement.
    Measure {
        /// Qubits to measure, in record order.
        qubits: Vec<usize>,
    },
    /// Reset to |0⟩.
    Reset {
        /// The qubit to reset.
        qubit: usize,
    },
}

/// A circuit with explicit, indexed noise sites.
#[derive(Clone, Debug)]
pub struct NoisyCircuit {
    n_qubits: usize,
    ops: Vec<NoisyOp>,
    sites: Vec<NoiseSite>,
}

impl NoisyCircuit {
    /// Convert a circuit containing [`Op::Noise`] entries into indexed form.
    pub fn from_circuit(circuit: Circuit) -> Self {
        let n_qubits = circuit.n_qubits();
        let mut ops = Vec::with_capacity(circuit.ops().len());
        let mut sites = Vec::new();
        for op in circuit.ops() {
            match op {
                Op::Gate(g) => ops.push(NoisyOp::Gate(g.clone())),
                Op::Noise(n) => {
                    let id = sites.len();
                    sites.push(NoiseSite {
                        id,
                        op_index: ops.len(),
                        qubits: n.qubits.clone(),
                        channel: Arc::clone(&n.channel),
                    });
                    ops.push(NoisyOp::Site(id));
                }
                Op::Measure { qubits } => ops.push(NoisyOp::Measure {
                    qubits: qubits.clone(),
                }),
                Op::Reset { qubit } => ops.push(NoisyOp::Reset { qubit: *qubit }),
            }
        }
        Self {
            n_qubits,
            ops,
            sites,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The op stream.
    pub fn ops(&self) -> &[NoisyOp] {
        &self.ops
    }

    /// The noise sites, ordered by position in the circuit.
    pub fn sites(&self) -> &[NoiseSite] {
        &self.sites
    }

    /// Number of noise sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Qubits measured, in record order.
    pub fn measured_qubits(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let NoisyOp::Measure { qubits } = op {
                out.extend_from_slice(qubits);
            }
        }
        out
    }

    /// True when every site's channel is a unitary mixture, i.e. PTS
    /// pre-sampling is *exact* (no importance weights needed).
    pub fn all_unitary_mixture(&self) -> bool {
        self.sites.iter().all(|s| s.channel.is_unitary_mixture())
    }

    /// True when the coherent part is Clifford and every channel is a
    /// unitary mixture of Paulis — the condition for the stabilizer
    /// backend.
    pub fn gates_clifford(&self) -> bool {
        self.ops.iter().all(|o| match o {
            NoisyOp::Gate(g) => g.gate.is_clifford(),
            _ => true,
        })
    }

    /// True when every coherent gate is a Clifford (the noisy-circuit
    /// counterpart of [`Circuit::is_clifford`]; alias of
    /// [`NoisyCircuit::gates_clifford`] under the name the service router
    /// reads).
    pub fn is_clifford(&self) -> bool {
        self.gates_clifford()
    }

    /// True when every noise site's channel is a Pauli mixture (see
    /// [`KrausChannel::is_pauli_mixture`]). Together with
    /// [`NoisyCircuit::is_clifford`] and the absence of resets, this is
    /// the router's precondition for the bulk Pauli-frame engine.
    pub fn all_pauli_channels(&self) -> bool {
        self.sites.iter().all(|s| s.channel.is_pauli_mixture())
    }

    /// True when the circuit contains a reset op (stochastic — rejected
    /// by every fixed-assignment backend and by the frame sampler).
    pub fn has_reset(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, NoisyOp::Reset { .. }))
    }

    /// Nominal joint probability of a full trajectory assignment
    /// (`choices[site.id]` = Kraus index). Exact for unitary-mixture
    /// channels; the maximally-mixed-state proposal weight otherwise.
    pub fn assignment_probability(&self, choices: &[usize]) -> f64 {
        assert_eq!(
            choices.len(),
            self.sites.len(),
            "assignment length mismatch"
        );
        let mut p = 1.0;
        for site in &self.sites {
            p *= site.channel.sampling_probs()[choices[site.id]];
        }
        p
    }

    /// True when two sites could represent *simultaneous* errors on a
    /// shared qubit — Algorithm 2's `compatible()` rejects such pairs when
    /// building correlated injections.
    pub fn sites_conflict(&self, a: usize, b: usize) -> bool {
        let (sa, sb) = (&self.sites[a], &self.sites[b]);
        sa.op_index == sb.op_index && sa.qubits.iter().any(|q| sb.qubits.contains(q))
    }

    /// The trivial ("no error anywhere") assignment, when every channel
    /// has an identity branch.
    pub fn identity_assignment(&self) -> Option<Vec<usize>> {
        self.sites
            .iter()
            .map(|s| s.channel.identity_index())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;
    use crate::noise_model::NoiseModel;

    fn noisy_bell(p: f64) -> NoisyCircuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        NoiseModel::new()
            .with_default_1q(channels::depolarizing(p))
            .with_default_2q(channels::depolarizing(p))
            .apply(&c)
    }

    #[test]
    fn site_indexing() {
        let nc = noisy_bell(0.1);
        assert_eq!(nc.n_sites(), 3); // h -> 1, cx -> 2 (per-qubit fan-out)
        for (i, site) in nc.sites().iter().enumerate() {
            assert_eq!(site.id, i);
            match &nc.ops()[site.op_index] {
                NoisyOp::Site(id) => assert_eq!(*id, i),
                other => panic!("op_index points at {other:?}"),
            }
        }
    }

    #[test]
    fn assignment_probability_factorizes() {
        let nc = noisy_bell(0.1);
        let ident = nc.identity_assignment().unwrap();
        let p0 = nc.assignment_probability(&ident);
        assert!((p0 - 0.9f64.powi(3)).abs() < 1e-12);
        // One X error on site 0.
        let mut one_err = ident.clone();
        one_err[0] = 1;
        let p1 = nc.assignment_probability(&one_err);
        assert!((p1 - 0.9f64.powi(2) * (0.1 / 3.0)).abs() < 1e-12);
        assert!(p1 < p0);
    }

    #[test]
    fn unitary_mixture_detection_propagates() {
        assert!(noisy_bell(0.2).all_unitary_mixture());
        let mut c = Circuit::new(1);
        c.h(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.2))
            .apply(&c);
        assert!(!nc.all_unitary_mixture());
    }

    #[test]
    fn clifford_gate_check() {
        let nc = noisy_bell(0.1);
        assert!(nc.gates_clifford());
        let mut c = Circuit::new(1);
        c.t(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.1))
            .apply(&c);
        assert!(!nc.gates_clifford());
    }

    #[test]
    fn conflicts_require_shared_qubit_and_time() {
        let mut c = Circuit::new(2);
        let ch = Arc::new(channels::depolarizing(0.1));
        // Two sites at different op positions on the same qubit: no conflict.
        c.noise(Arc::clone(&ch), &[0]);
        c.noise(Arc::clone(&ch), &[0]);
        let nc = NoisyCircuit::from_circuit(c);
        assert!(!nc.sites_conflict(0, 1));
    }

    #[test]
    fn measured_qubits_order() {
        let mut c = Circuit::new(3);
        c.measure(&[2, 0]);
        let nc = NoisyCircuit::from_circuit(c);
        assert_eq!(nc.measured_qubits(), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assignment_length_checked() {
        let nc = noisy_bell(0.1);
        let _ = nc.assignment_probability(&[0]);
    }

    #[test]
    fn clifford_detection_matches_gate_zoo() {
        use crate::gate::Gate;
        let zoo: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::X, vec![0]),
            (Gate::Y, vec![0]),
            (Gate::Z, vec![0]),
            (Gate::H, vec![0]),
            (Gate::S, vec![0]),
            (Gate::Sdg, vec![0]),
            (Gate::T, vec![0]),
            (Gate::Tdg, vec![0]),
            (Gate::Sx, vec![0]),
            (Gate::Sxdg, vec![0]),
            (Gate::Sy, vec![0]),
            (Gate::Sydg, vec![0]),
            (Gate::Rx(0.3), vec![0]),
            (Gate::Ry(0.3), vec![0]),
            (Gate::Rz(0.3), vec![0]),
            (Gate::P(0.3), vec![0]),
            (Gate::Cx, vec![0, 1]),
            (Gate::Cz, vec![0, 1]),
            (Gate::Swap, vec![0, 1]),
            (Gate::Ccx, vec![0, 1, 2]),
        ];
        for (gate, qubits) in zoo {
            let expect = gate.is_clifford();
            let mut c = Circuit::new(3);
            c.gate(gate.clone(), &qubits).measure_all();
            let nc = NoisyCircuit::from_circuit(c);
            assert_eq!(
                nc.is_clifford(),
                expect,
                "gate {} must {}be Clifford",
                gate.name(),
                if expect { "" } else { "not " }
            );
        }
    }

    #[test]
    fn pauli_channel_detection_matches_channel_zoo() {
        let pauli: Vec<KrausChannel> = vec![
            channels::depolarizing(0.1),
            channels::depolarizing2(0.2),
            channels::bit_flip(0.3),
            channels::phase_flip(0.25),
            channels::bit_phase_flip(0.15),
            channels::pauli(0.1, 0.05, 0.02),
        ];
        for ch in &pauli {
            assert!(ch.is_pauli_mixture(), "{} is a Pauli mixture", ch.name());
        }
        let non_pauli: Vec<KrausChannel> = vec![
            channels::amplitude_damping(0.2),
            channels::phase_damping(0.2),
            channels::coherent_x_overrotation(0.05),
            channels::thermal_relaxation(0.1, 0.1),
        ];
        for ch in &non_pauli {
            assert!(
                !ch.is_pauli_mixture(),
                "{} is not a Pauli mixture",
                ch.name()
            );
        }

        let mut c = Circuit::new(1);
        c.h(0).measure_all();
        let nc = NoiseModel::new()
            .with_default_1q(channels::bit_flip(0.1))
            .apply(&c);
        assert!(nc.all_pauli_channels());
        let nc = NoiseModel::new()
            .with_default_1q(channels::coherent_x_overrotation(0.05))
            .apply(&c);
        assert!(!nc.all_pauli_channels());
    }

    #[test]
    fn reset_detection() {
        let mut c = Circuit::new(1);
        c.reset(0);
        assert!(NoisyCircuit::from_circuit(c).has_reset());
        let mut c = Circuit::new(1);
        c.h(0).measure_all();
        assert!(!NoisyCircuit::from_circuit(c).has_reset());
    }

    #[test]
    fn identity_assignment_none_for_damping() {
        let mut c = Circuit::new(1);
        c.h(0);
        let nc = NoiseModel::new()
            .with_default_1q(channels::amplitude_damping(0.2))
            .apply(&c);
        assert!(nc.identity_assignment().is_none());
    }
}
