//! The circuit builder.

use crate::gate::Gate;
use crate::kraus::KrausChannel;
use crate::op::{GateOp, NoiseOp, Op};
use ptsbe_math::Matrix;
use std::sync::Arc;

/// A quantum circuit over `n_qubits` qubits: an ordered list of [`Op`]s.
///
/// Builder methods validate qubit indices eagerly and return `&mut Self`
/// for chaining:
///
/// ```
/// use ptsbe_circuit::Circuit;
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2).measure_all();
/// assert_eq!(c.gate_count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The operation sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of coherent gates.
    pub fn gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_gate()).count()
    }

    /// Number of explicit noise sites.
    pub fn noise_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_noise()).count()
    }

    /// True when every gate is Clifford (stabilizer-simulable).
    pub fn is_clifford(&self) -> bool {
        self.ops.iter().all(|o| match o {
            Op::Gate(g) => g.gate.is_clifford(),
            _ => true,
        })
    }

    /// Simple layered depth over coherent gates (noise/measure excluded).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for op in &self.ops {
            if let Op::Gate(g) = op {
                let next = g.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
                for &q in &g.qubits {
                    level[q] = next;
                }
                depth = depth.max(next);
            }
        }
        depth
    }

    fn check_qubits(&self, qubits: &[usize]) {
        for &q in qubits {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range for a {}-qubit circuit",
                self.n_qubits
            );
        }
        for (i, &a) in qubits.iter().enumerate() {
            for &b in &qubits[i + 1..] {
                assert_ne!(a, b, "duplicate qubit {a} in one operation");
            }
        }
    }

    /// Append an arbitrary operation (validates qubit indices).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.check_qubits(op.qubits());
        if let Op::Gate(g) = &op {
            assert_eq!(
                g.gate.arity(),
                g.qubits.len(),
                "gate {} expects {} qubit(s)",
                g.gate.name(),
                g.gate.arity()
            );
        }
        if let Op::Noise(n) = &op {
            assert_eq!(
                n.channel.arity(),
                n.qubits.len(),
                "channel {} expects {} qubit(s)",
                n.channel.name(),
                n.channel.arity()
            );
        }
        self.ops.push(op);
        self
    }

    /// Append a gate on the given qubits.
    pub fn gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.push(Op::Gate(GateOp {
            gate,
            qubits: qubits.to_vec(),
        }))
    }

    /// Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, &[q])
    }
    /// Pauli Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }
    /// Pauli Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }
    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, &[q])
    }
    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, &[q])
    }
    /// S†.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sdg, &[q])
    }
    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, &[q])
    }
    /// T†.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Tdg, &[q])
    }
    /// √X.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sx, &[q])
    }
    /// √X†.
    pub fn sxdg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sxdg, &[q])
    }
    /// √Y.
    pub fn sy(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sy, &[q])
    }
    /// √Y†.
    pub fn sydg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sydg, &[q])
    }
    /// X rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rx(theta), &[q])
    }
    /// Y rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Ry(theta), &[q])
    }
    /// Z rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rz(theta), &[q])
    }
    /// Phase gate.
    pub fn p(&mut self, q: usize, lambda: f64) -> &mut Self {
        self.gate(Gate::P(lambda), &[q])
    }
    /// CNOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.gate(Gate::Cx, &[control, target])
    }
    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Cz, &[a, b])
    }
    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }
    /// Toffoli.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.gate(Gate::Ccx, &[c0, c1, target])
    }
    /// Arbitrary single-qubit unitary.
    pub fn unitary1(&mut self, m: Matrix<f64>, q: usize) -> &mut Self {
        self.gate(Gate::unitary1(m), &[q])
    }
    /// Arbitrary two-qubit unitary.
    pub fn unitary2(&mut self, m: Matrix<f64>, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::unitary2(m), &[a, b])
    }

    /// Explicit noise insertion.
    pub fn noise(&mut self, channel: Arc<KrausChannel>, qubits: &[usize]) -> &mut Self {
        self.push(Op::Noise(NoiseOp {
            channel,
            qubits: qubits.to_vec(),
        }))
    }

    /// Measure the listed qubits (appended to the shot record in order).
    pub fn measure(&mut self, qubits: &[usize]) -> &mut Self {
        self.push(Op::Measure {
            qubits: qubits.to_vec(),
        })
    }

    /// Measure every qubit, LSB first.
    pub fn measure_all(&mut self) -> &mut Self {
        let qubits: Vec<usize> = (0..self.n_qubits).collect();
        self.measure(&qubits)
    }

    /// Reset a qubit to |0⟩.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.push(Op::Reset { qubit: q })
    }

    /// Qubits measured by the circuit, in record order.
    pub fn measured_qubits(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let Op::Measure { qubits } = op {
                out.extend_from_slice(qubits);
            }
        }
        out
    }

    /// Concatenate another circuit's ops (qubit counts must match).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "extend: qubit count mismatch"
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// The inverse circuit: gates reversed and daggered. Only valid for
    /// purely coherent circuits.
    ///
    /// # Panics
    /// Panics if the circuit contains noise, measurement, or reset ops.
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for op in self.ops.iter().rev() {
            match op {
                Op::Gate(g) => {
                    out.push(Op::Gate(GateOp {
                        gate: g.gate.dagger(),
                        qubits: g.qubits.clone(),
                    }));
                }
                other => panic!("inverse: non-gate op {other:?} cannot be inverted"),
            }
        }
        out
    }

    /// Remap a circuit onto a larger register: qubit `q` becomes
    /// `mapping[q]`. Used to embed logical-block circuits into the 35-/85-
    /// qubit MSD layouts.
    pub fn embedded(&self, n_qubits: usize, mapping: &[usize]) -> Circuit {
        assert_eq!(mapping.len(), self.n_qubits, "embedded: mapping length");
        let mut out = Circuit::new(n_qubits);
        for op in &self.ops {
            let remap = |qs: &[usize]| qs.iter().map(|&q| mapping[q]).collect::<Vec<_>>();
            let new_op = match op {
                Op::Gate(g) => Op::Gate(GateOp {
                    gate: g.gate.clone(),
                    qubits: remap(&g.qubits),
                }),
                Op::Noise(n) => Op::Noise(NoiseOp {
                    channel: Arc::clone(&n.channel),
                    qubits: remap(&n.qubits),
                }),
                Op::Measure { qubits } => Op::Measure {
                    qubits: remap(qubits),
                },
                Op::Reset { qubit } => Op::Reset {
                    qubit: mapping[*qubit],
                },
            };
            out.push(new_op);
        }
        out
    }
}

impl std::fmt::Display for Circuit {
    /// One op per line: `h q0`, `cx q0 q1`, `noise[depolarizing] q2`, …
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "circuit({} qubits)", self.n_qubits)?;
        for op in &self.ops {
            match op {
                Op::Gate(g) => {
                    write!(f, "  {}", g.gate.name())?;
                    for q in &g.qubits {
                        write!(f, " q{q}")?;
                    }
                    writeln!(f)?;
                }
                Op::Noise(n) => {
                    write!(f, "  noise[{}]", n.channel.name())?;
                    for q in &n.qubits {
                        write!(f, " q{q}")?;
                    }
                    writeln!(f)?;
                }
                Op::Measure { qubits } => {
                    write!(f, "  measure")?;
                    for q in qubits {
                        write!(f, " q{q}")?;
                    }
                    writeln!(f)?;
                }
                Op::Reset { qubit } => writeln!(f, "  reset q{qubit}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;

    #[test]
    fn display_format() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.noise(Arc::new(channels::depolarizing(0.1)), &[1]);
        c.measure_all();
        let s = format!("{c}");
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0 q1"));
        assert!(s.contains("noise[depolarizing] q1"));
        assert!(s.contains("measure q0 q1"));
    }

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.ops().len(), 3);
        assert_eq!(c.measured_qubits(), vec![0, 1]);
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // depth 2
        assert_eq!(c.depth(), 2);
        c.h(2); // still depth 2 (parallel wire)
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn clifford_detection() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        assert!(c.is_clifford());
        c.t(0);
        assert!(!c.is_clifford());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_bounds_checked() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_rejected() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    #[should_panic(expected = "expects 1 qubit")]
    fn arity_mismatch_rejected() {
        let mut c = Circuit::new(2);
        c.push(Op::Gate(GateOp {
            gate: Gate::H,
            qubits: vec![0, 1],
        }));
    }

    #[test]
    fn noise_arity_checked() {
        let mut c = Circuit::new(2);
        let ch = Arc::new(channels::depolarizing(0.1));
        c.noise(Arc::clone(&ch), &[0]);
        assert_eq!(c.noise_count(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c2 = Circuit::new(2);
            c2.noise(ch, &[0, 1]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn embedding_remaps() {
        let mut block = Circuit::new(2);
        block.h(0).cx(0, 1).measure_all();
        let big = block.embedded(10, &[4, 7]);
        assert_eq!(big.n_qubits(), 10);
        match &big.ops()[1] {
            Op::Gate(g) => assert_eq!(g.qubits, vec![4, 7]),
            _ => panic!("expected gate"),
        }
        assert_eq!(big.measured_qubits(), vec![4, 7]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.gate_count(), 2);
    }
}
