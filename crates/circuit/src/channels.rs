//! The standard noise-channel zoo.
//!
//! Every constructor returns a validated [`KrausChannel`]. Unitary-mixture
//! channels (Pauli families, depolarizing) are the ones PTS can pre-sample
//! exactly; the damping channels exercise the general-channel
//! importance-weighting path.

use crate::kraus::KrausChannel;
use ptsbe_math::{gates, Complex, Matrix};

/// Single-qubit depolarizing channel: with probability `p` one of X/Y/Z is
/// applied uniformly.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn depolarizing(p: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&p), "depolarizing: p out of range");
    KrausChannel::unitary_mixture(
        "depolarizing",
        vec![1.0 - p, p / 3.0, p / 3.0, p / 3.0],
        vec![
            Matrix::identity(2),
            gates::x::<f64>(),
            gates::y::<f64>(),
            gates::z::<f64>(),
        ],
    )
}

/// Two-qubit depolarizing channel: with probability `p` one of the 15
/// non-identity Pauli pairs is applied uniformly.
pub fn depolarizing2(p: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&p), "depolarizing2: p out of range");
    let mut probs = Vec::with_capacity(16);
    let mut unitaries = Vec::with_capacity(16);
    for i in 0..4usize {
        for j in 0..4usize {
            unitaries.push(gates::pauli::<f64>(i).kron(&gates::pauli::<f64>(j)));
            probs.push(if i == 0 && j == 0 { 1.0 - p } else { p / 15.0 });
        }
    }
    KrausChannel::unitary_mixture("depolarizing2", probs, unitaries)
}

/// Bit flip: X with probability `p`.
pub fn bit_flip(p: f64) -> KrausChannel {
    pauli_channel(p, 0.0, 0.0, "bit_flip")
}

/// Phase flip: Z with probability `p`.
pub fn phase_flip(p: f64) -> KrausChannel {
    pauli_channel(0.0, 0.0, p, "phase_flip")
}

/// Bit-phase flip: Y with probability `p`.
pub fn bit_phase_flip(p: f64) -> KrausChannel {
    pauli_channel(0.0, p, 0.0, "bit_phase_flip")
}

/// General Pauli channel with probabilities `(px, py, pz)`.
///
/// # Panics
/// Panics if any probability is negative or the total exceeds 1.
pub fn pauli(px: f64, py: f64, pz: f64) -> KrausChannel {
    pauli_channel(px, py, pz, "pauli")
}

fn pauli_channel(px: f64, py: f64, pz: f64, name: &str) -> KrausChannel {
    assert!(
        px >= 0.0 && py >= 0.0 && pz >= 0.0,
        "{name}: negative probability"
    );
    let pi = 1.0 - px - py - pz;
    assert!(pi >= -1e-12, "{name}: probabilities exceed 1");
    // All four branches kept (zero-weight ones included) so branch indices
    // are stable: 0=I, 1=X, 2=Y, 3=Z.
    KrausChannel::unitary_mixture(
        name,
        vec![pi.max(0.0), px, py, pz],
        vec![
            Matrix::identity(2),
            gates::x::<f64>(),
            gates::y::<f64>(),
            gates::z::<f64>(),
        ],
    )
}

/// Amplitude damping with decay probability `gamma` (spontaneous emission
/// toward |0⟩). A *general* channel: exercises the importance-weighting
/// path of PTS.
pub fn amplitude_damping(gamma: f64) -> KrausChannel {
    assert!(
        (0.0..=1.0).contains(&gamma),
        "amplitude_damping: gamma out of range"
    );
    let mut k0 = Matrix::<f64>::identity(2);
    k0[(1, 1)] = Complex::from_f64((1.0 - gamma).sqrt(), 0.0);
    let mut k1 = Matrix::<f64>::zeros(2, 2);
    k1[(0, 1)] = Complex::from_f64(gamma.sqrt(), 0.0);
    KrausChannel::new("amplitude_damping", vec![k0, k1]).expect("amplitude damping is CPTP")
}

/// Generalized amplitude damping at finite temperature: relaxation toward a
/// thermal state with excited-state population `p_exc`.
pub fn generalized_amplitude_damping(gamma: f64, p_exc: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&gamma));
    assert!((0.0..=1.0).contains(&p_exc));
    let p = 1.0 - p_exc;
    let mut k0 = Matrix::<f64>::identity(2);
    k0[(1, 1)] = Complex::from_f64((1.0 - gamma).sqrt(), 0.0);
    let k0 = k0.scaled_real(p.sqrt());
    let mut k1 = Matrix::<f64>::zeros(2, 2);
    k1[(0, 1)] = Complex::from_f64(gamma.sqrt(), 0.0);
    let k1 = k1.scaled_real(p.sqrt());
    let mut k2 = Matrix::<f64>::identity(2);
    k2[(0, 0)] = Complex::from_f64((1.0 - gamma).sqrt(), 0.0);
    let k2 = k2.scaled_real(p_exc.sqrt());
    let mut k3 = Matrix::<f64>::zeros(2, 2);
    k3[(1, 0)] = Complex::from_f64(gamma.sqrt(), 0.0);
    let k3 = k3.scaled_real(p_exc.sqrt());
    KrausChannel::new("generalized_amplitude_damping", vec![k0, k1, k2, k3])
        .expect("generalized amplitude damping is CPTP")
}

/// Phase damping (pure dephasing) with parameter `lambda`.
pub fn phase_damping(lambda: f64) -> KrausChannel {
    assert!(
        (0.0..=1.0).contains(&lambda),
        "phase_damping: lambda out of range"
    );
    let mut k0 = Matrix::<f64>::identity(2);
    k0[(1, 1)] = Complex::from_f64((1.0 - lambda).sqrt(), 0.0);
    let mut k1 = Matrix::<f64>::zeros(2, 2);
    k1[(1, 1)] = Complex::from_f64(lambda.sqrt(), 0.0);
    KrausChannel::new("phase_damping", vec![k0, k1]).expect("phase damping is CPTP")
}

/// Deterministic coherent over-rotation about X by `epsilon` radians — a
/// single-Kraus unitary "channel" modeling systematic gate error.
pub fn coherent_x_overrotation(epsilon: f64) -> KrausChannel {
    KrausChannel::unitary_mixture("coherent_x", vec![1.0], vec![gates::rx::<f64>(epsilon)])
}

/// Thermal relaxation: amplitude damping (T1) followed by the extra pure
/// dephasing needed to realize the requested T2.
///
/// `gamma = 1 − e^{−t/T1}` is the relaxation probability over the gate
/// duration, `lambda_phi` the *additional* dephasing beyond the T1-induced
/// part (physical devices have `T2 ≤ 2·T1`, i.e. `lambda_phi ≥ 0`).
pub fn thermal_relaxation(gamma: f64, lambda_phi: f64) -> KrausChannel {
    assert!(
        (0.0..=1.0).contains(&gamma),
        "thermal_relaxation: gamma out of range"
    );
    assert!(
        (0.0..=1.0).contains(&lambda_phi),
        "thermal_relaxation: lambda_phi out of range"
    );
    crate::kraus::compose(
        "thermal_relaxation",
        &amplitude_damping(gamma),
        &phase_damping(lambda_phi),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_relaxation_properties() {
        // Pure T1 (no extra dephasing) reproduces amplitude damping.
        let tr = thermal_relaxation(0.3, 0.0);
        assert!(!tr.is_unitary_mixture());
        assert_eq!(tr.arity(), 1);
        // Composition is CPTP by construction; the degenerate corners
        // validate too.
        let _ = thermal_relaxation(0.0, 0.0);
        let _ = thermal_relaxation(1.0, 1.0);
    }

    #[test]
    fn compose_is_sequential() {
        // bit_flip(1.0) ∘ bit_flip(1.0) = identity channel.
        let x1 = bit_flip(1.0);
        let id2 = crate::kraus::compose("xx", &x1, &x1);
        // Only one branch with non-zero weight, proportional to I.
        let probs = id2.sampling_probs();
        let heavy: Vec<usize> = probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1e-9)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(heavy.len(), 1);
        assert_eq!(id2.identity_index(), Some(heavy[0]));
    }

    #[test]
    fn all_constructors_validate() {
        // Construction itself runs the CPTP check; just exercise the zoo.
        let _ = depolarizing(0.0);
        let _ = depolarizing(1.0);
        let _ = depolarizing2(0.2);
        let _ = bit_flip(0.5);
        let _ = phase_flip(0.01);
        let _ = bit_phase_flip(0.3);
        let _ = pauli(0.1, 0.2, 0.3);
        let _ = amplitude_damping(0.0);
        let _ = amplitude_damping(1.0);
        let _ = generalized_amplitude_damping(0.3, 0.2);
        let _ = phase_damping(0.4);
        let _ = coherent_x_overrotation(0.05);
    }

    #[test]
    fn pauli_branch_indices_stable() {
        let ch = pauli(0.0, 0.25, 0.0);
        assert_eq!(ch.n_ops(), 4);
        assert_eq!(ch.branch_label(1), "X");
        assert_eq!(ch.branch_label(2), "Y");
        let probs = ch.sampling_probs();
        assert!((probs[2] - 0.25).abs() < 1e-12);
        assert!(probs[1].abs() < 1e-12);
    }

    #[test]
    fn depolarizing2_probabilities() {
        let ch = depolarizing2(0.15);
        let probs = ch.sampling_probs();
        assert_eq!(probs.len(), 16);
        assert!((probs[0] - 0.85).abs() < 1e-9);
        for &pi in &probs[1..] {
            assert!((pi - 0.01).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn depolarizing_range_checked() {
        let _ = depolarizing(1.5);
    }

    #[test]
    #[should_panic(expected = "probabilities exceed 1")]
    fn pauli_total_checked() {
        let _ = pauli(0.6, 0.5, 0.2);
    }

    #[test]
    fn gad_reduces_to_ad_at_zero_temperature() {
        let gad = generalized_amplitude_damping(0.3, 0.0);
        let ad = amplitude_damping(0.3);
        // First two Kraus ops match; the thermal pair carries zero weight.
        assert!(gad.op(0).max_abs_diff(ad.op(0)) < 1e-12);
        assert!(gad.op(1).max_abs_diff(ad.op(1)) < 1e-12);
        assert!(gad.op(2).frobenius_norm() < 1e-12);
        assert!(gad.op(3).frobenius_norm() < 1e-12);
    }
}
