//! Kraus channels with CPTP validation and unitary-mixture detection.
//!
//! A channel is a set `{K_i}` with `Σ K_i† K_i = I`. CUDA-Q (paper §2.2,
//! feature 2) analyzes each channel once: when every `K_i = √p_i · U_i`
//! with `U_i` unitary, the per-trajectory branch probabilities are
//! state-independent and can be sampled without touching the statevector.
//! The same analysis runs here at construction time and is exposed through
//! [`ChannelKind`]; the PTS layer leans on it for *exact* pre-sampling,
//! falling back to importance-weighted nominal probabilities for general
//! channels.

use ptsbe_math::Matrix;
use std::fmt;
use std::sync::Arc;

/// Numerical tolerance for CPTP and unitary-mixture detection.
const CHANNEL_TOL: f64 = 1e-9;

/// Validation failure for a prospective Kraus channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The channel has no Kraus operators.
    Empty,
    /// Kraus operators have inconsistent or non-power-of-two shapes.
    BadShape,
    /// `Σ K†K` deviates from the identity by more than tolerance.
    NotTracePreserving,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Empty => write!(f, "channel has no Kraus operators"),
            ChannelError::BadShape => write!(f, "Kraus operators must share a 2^k square shape"),
            ChannelError::NotTracePreserving => {
                write!(f, "Kraus operators do not satisfy the CPTP condition")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// Structural classification determined at construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelKind {
    /// Every `K_i = √p_i U_i` with `U_i` unitary: branch probabilities
    /// `p_i` are state-independent.
    UnitaryMixture {
        /// Branch probabilities (sum to 1).
        probs: Vec<f64>,
        /// The unit-norm unitaries `U_i`.
        unitaries: Vec<Arc<Matrix<f64>>>,
    },
    /// General CPTP channel: branch probabilities depend on the state.
    /// `nominal_probs` are `tr(K†K)/2^arity` — the branch probabilities
    /// averaged over the maximally mixed state, used by PTS as proposal
    /// weights (see `ptsbe-core::pts`).
    General {
        /// Maximally-mixed-state branch probabilities (sum to 1).
        nominal_probs: Vec<f64>,
    },
}

/// A validated CPTP quantum channel on `arity` qubits.
#[derive(Debug, Clone)]
pub struct KrausChannel {
    name: String,
    arity: usize,
    ops: Vec<Arc<Matrix<f64>>>,
    kind: ChannelKind,
    /// Index of the Kraus operator proportional to the identity, if any —
    /// the "no error happened" branch that Algorithm 2 treats specially.
    identity_index: Option<usize>,
}

impl KrausChannel {
    /// Construct a unitary-mixture channel directly from `(p_i, U_i)`
    /// pairs. Unlike [`KrausChannel::new`], this preserves the caller's
    /// structure exactly — including zero-probability branches, whose
    /// unitaries would be unrecoverable from the (zero) Kraus operators.
    /// Branch indices therefore stay stable across parameter sweeps
    /// (e.g. a Pauli channel always has branches I/X/Y/Z at 0/1/2/3).
    ///
    /// # Panics
    /// Panics if shapes are inconsistent, any `U_i` is not unitary, any
    /// probability is negative, or the probabilities do not sum to 1.
    pub fn unitary_mixture(
        name: impl Into<String>,
        probs: Vec<f64>,
        unitaries: Vec<Matrix<f64>>,
    ) -> Self {
        assert!(!probs.is_empty(), "unitary_mixture: empty channel");
        assert_eq!(
            probs.len(),
            unitaries.len(),
            "unitary_mixture: length mismatch"
        );
        let dim = unitaries[0].rows();
        assert!(
            dim.is_power_of_two() && dim > 0,
            "unitary_mixture: bad dimension"
        );
        let arity = dim.trailing_zeros() as usize;
        let mut total = 0.0;
        for (p, u) in probs.iter().zip(&unitaries) {
            assert!(*p >= -CHANNEL_TOL, "unitary_mixture: negative probability");
            assert_eq!(
                (u.rows(), u.cols()),
                (dim, dim),
                "unitary_mixture: shape mismatch"
            );
            assert!(u.is_unitary(1e-9), "unitary_mixture: non-unitary branch");
            total += p.max(0.0);
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "unitary_mixture: probabilities sum to {total}"
        );
        let probs: Vec<f64> = probs.iter().map(|p| p.max(0.0) / total).collect();
        let ops: Vec<Arc<Matrix<f64>>> = probs
            .iter()
            .zip(&unitaries)
            .map(|(p, u)| Arc::new(u.scaled_real(p.sqrt())))
            .collect();
        let unitaries: Vec<Arc<Matrix<f64>>> = unitaries.into_iter().map(Arc::new).collect();
        let identity_index = unitaries
            .iter()
            .position(|u| phase_free_diff(u, &Matrix::identity(dim)) <= CHANNEL_TOL.sqrt());
        Self {
            name: name.into(),
            arity,
            ops,
            kind: ChannelKind::UnitaryMixture { probs, unitaries },
            identity_index,
        }
    }

    /// Validate and classify a set of Kraus operators.
    pub fn new(name: impl Into<String>, ops: Vec<Matrix<f64>>) -> Result<Self, ChannelError> {
        if ops.is_empty() {
            return Err(ChannelError::Empty);
        }
        let dim = ops[0].rows();
        if dim == 0 || !dim.is_power_of_two() {
            return Err(ChannelError::BadShape);
        }
        let arity = dim.trailing_zeros() as usize;
        for k in &ops {
            if k.rows() != dim || k.cols() != dim {
                return Err(ChannelError::BadShape);
            }
        }

        // CPTP: Σ K†K = I.
        let mut sum = Matrix::<f64>::zeros(dim, dim);
        for k in &ops {
            sum = &sum + &k.dagger().mul_ref(k);
        }
        if sum.max_abs_diff(&Matrix::identity(dim)) > CHANNEL_TOL {
            return Err(ChannelError::NotTracePreserving);
        }

        // Unitary-mixture detection: K†K = p·I for each operator.
        let mut probs = Vec::with_capacity(ops.len());
        let mut unitaries = Vec::with_capacity(ops.len());
        let mut is_mixture = true;
        for k in &ops {
            let ktk = k.dagger().mul_ref(k);
            let p = ktk.trace().re / dim as f64;
            if p < -CHANNEL_TOL {
                is_mixture = false;
                break;
            }
            let p = p.max(0.0);
            let scaled_id = Matrix::<f64>::identity(dim).scaled_real(p);
            if ktk.max_abs_diff(&scaled_id) > CHANNEL_TOL {
                is_mixture = false;
                break;
            }
            if p > CHANNEL_TOL {
                let u = k.scaled_real(1.0 / p.sqrt());
                debug_assert!(u.is_unitary(1e-6));
                unitaries.push(Arc::new(u));
            } else {
                // Zero-probability branch: keep a placeholder identity.
                unitaries.push(Arc::new(Matrix::identity(dim)));
            }
            probs.push(p);
        }

        let ops: Vec<Arc<Matrix<f64>>> = ops.into_iter().map(Arc::new).collect();

        let kind = if is_mixture {
            // CPTP guarantees Σp = 1 up to round-off; normalize exactly.
            let total: f64 = probs.iter().sum();
            let probs = probs.iter().map(|p| p / total).collect();
            ChannelKind::UnitaryMixture { probs, unitaries }
        } else {
            let nominal: Vec<f64> = ops
                .iter()
                .map(|k| (k.dagger().mul_ref(k).trace().re / dim as f64).max(0.0))
                .collect();
            ChannelKind::General {
                nominal_probs: nominal,
            }
        };

        // Identity branch: K ≈ c·I with |c|² = branch weight.
        let identity_index = ops.iter().position(|k| {
            let c = k[(0, 0)];
            if c.norm_sqr() <= CHANNEL_TOL {
                return false;
            }
            let target = Matrix::<f64>::identity(dim).scaled(c);
            k.max_abs_diff(&target) <= CHANNEL_TOL.sqrt()
        });

        Ok(Self {
            name: name.into(),
            arity,
            ops,
            kind,
            identity_index,
        })
    }

    /// Channel label (used in provenance metadata).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits the channel acts on.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Hilbert-space dimension `2^arity`.
    pub fn dim(&self) -> usize {
        1 << self.arity
    }

    /// Number of Kraus operators.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// The `i`-th Kraus operator.
    pub fn op(&self, i: usize) -> &Matrix<f64> {
        &self.ops[i]
    }

    /// All Kraus operators.
    pub fn ops(&self) -> &[Arc<Matrix<f64>>] {
        &self.ops
    }

    /// Structural classification.
    pub fn kind(&self) -> &ChannelKind {
        &self.kind
    }

    /// True when the channel is a unitary mixture (state-independent
    /// branch probabilities).
    pub fn is_unitary_mixture(&self) -> bool {
        matches!(self.kind, ChannelKind::UnitaryMixture { .. })
    }

    /// Branch probabilities used for *pre-sampling*: exact for unitary
    /// mixtures, nominal (maximally-mixed average) for general channels.
    pub fn sampling_probs(&self) -> &[f64] {
        match &self.kind {
            ChannelKind::UnitaryMixture { probs, .. } => probs,
            ChannelKind::General { nominal_probs } => nominal_probs,
        }
    }

    /// Index of the identity ("no error") branch, when one exists.
    pub fn identity_index(&self) -> Option<usize> {
        self.identity_index
    }

    /// Per-branch *exact-identity* flags: `flags[k]` is true when branch
    /// `k` of a unitary mixture is bit-for-bit the identity matrix, so an
    /// execution path may skip its application as a mathematical no-op.
    /// Stricter than [`KrausChannel::identity_index`] (which tolerates
    /// global phase and round-off — branches whose application is *not*
    /// a no-op): phase-identities and general-channel branches are never
    /// flagged, because general channels renormalize on application.
    /// Every backend compiler consumes this same `f64`-level detection,
    /// which is what keeps scalar, batch-major and MPS paths skipping
    /// identical branches — the cross-path bitwise-identity invariant.
    pub fn identity_skip_flags(&self) -> Vec<bool> {
        match &self.kind {
            ChannelKind::UnitaryMixture { unitaries, .. } => {
                unitaries.iter().map(|u| u.is_exact_identity()).collect()
            }
            ChannelKind::General { nominal_probs } => vec![false; nominal_probs.len()],
        }
    }

    /// Probability that *some* non-identity branch fires (the `p` of
    /// Algorithm 2's `r ≤ p` test). Zero if the channel has no identity
    /// branch.
    pub fn error_probability(&self) -> f64 {
        match self.identity_index {
            Some(idx) => 1.0 - self.sampling_probs()[idx],
            None => 1.0,
        }
    }

    /// True when the channel is a *Pauli mixture*: a unitary mixture
    /// whose every branch is (up to global phase) a tensor product of
    /// single-qubit Paulis. This is exactly the noise domain of
    /// Pauli-frame simulation (Stim's, and `ptsbe_stabilizer`'s): frames
    /// propagate Pauli errors by XOR rules, so the service router uses
    /// this predicate (with [`crate::Circuit::is_clifford`]) to decide
    /// whether a job may run on the bulk frame sampler.
    pub fn is_pauli_mixture(&self) -> bool {
        let ChannelKind::UnitaryMixture { unitaries, .. } = &self.kind else {
            return false;
        };
        if self.arity > 2 {
            // branch_label only names 1- and 2-qubit Pauli products; the
            // noise zoo produces nothing wider.
            return false;
        }
        (0..unitaries.len()).all(|i| {
            let label = self.branch_label(i);
            label.len() == self.arity && label.chars().all(|c| "IXYZ".contains(c))
        })
    }

    /// Short human-readable label for branch `i` (provenance metadata).
    /// Pauli-mixture channels get `I/X/Y/Z` names; everything else is `K{i}`.
    pub fn branch_label(&self, i: usize) -> String {
        if let ChannelKind::UnitaryMixture { unitaries, .. } = &self.kind {
            let u = &unitaries[i];
            if u.rows() == 2 {
                for (name, m) in [
                    ("I", ptsbe_math::gates::pauli::<f64>(0)),
                    ("X", ptsbe_math::gates::pauli::<f64>(1)),
                    ("Y", ptsbe_math::gates::pauli::<f64>(2)),
                    ("Z", ptsbe_math::gates::pauli::<f64>(3)),
                ] {
                    if phase_free_diff(u, &m) < 1e-8 {
                        return name.to_string();
                    }
                }
            } else if u.rows() == 4 {
                if let Some(label) = two_qubit_pauli_label(u) {
                    return label;
                }
            }
        }
        format!("K{i}")
    }
}

/// Sequential composition of two channels on the same qubits:
/// `(b ∘ a)(ρ) = b(a(ρ))`, with Kraus set `{B_j · A_i}`.
///
/// # Panics
/// Panics when arities differ.
pub fn compose(name: impl Into<String>, a: &KrausChannel, b: &KrausChannel) -> KrausChannel {
    assert_eq!(a.arity(), b.arity(), "compose: arity mismatch");
    let mut ops = Vec::with_capacity(a.n_ops() * b.n_ops());
    for bj in b.ops() {
        for ai in a.ops() {
            ops.push(bj.mul_ref(ai));
        }
    }
    KrausChannel::new(name, ops).expect("composition of CPTP maps is CPTP")
}

/// Distance between two unitaries modulo global phase.
fn phase_free_diff(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    // Align phases using the largest entry of b.
    let mut best = (0usize, 0usize);
    let mut best_mag = 0.0;
    for r in 0..b.rows() {
        for c in 0..b.cols() {
            let m = b[(r, c)].norm_sqr();
            if m > best_mag {
                best_mag = m;
                best = (r, c);
            }
        }
    }
    let num = a[best];
    let den = b[best];
    if num.norm_sqr() < 1e-18 {
        return f64::MAX;
    }
    let phase = num * den.conj();
    let mag = phase.abs();
    if mag < 1e-18 {
        return f64::MAX;
    }
    let phase = phase.scale(1.0 / mag);
    a.max_abs_diff(&b.scaled(phase))
}

/// Match a 4×4 unitary against the 16 two-qubit Pauli products.
fn two_qubit_pauli_label(u: &Matrix<f64>) -> Option<String> {
    const NAMES: [&str; 4] = ["I", "X", "Y", "Z"];
    for (i, ni) in NAMES.iter().enumerate() {
        for (j, nj) in NAMES.iter().enumerate() {
            let m = ptsbe_math::gates::pauli::<f64>(i).kron(&ptsbe_math::gates::pauli::<f64>(j));
            if phase_free_diff(u, &m) < 1e-8 {
                return Some(format!("{ni}{nj}"));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;
    use ptsbe_math::gates;

    #[test]
    fn depolarizing_is_unitary_mixture() {
        let ch = channels::depolarizing(0.1);
        assert!(ch.is_unitary_mixture());
        assert_eq!(ch.n_ops(), 4);
        assert_eq!(ch.arity(), 1);
        let probs = ch.sampling_probs();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((probs[0] - 0.9).abs() < 1e-9);
        assert_eq!(ch.identity_index(), Some(0));
        assert!((ch.error_probability() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_is_general() {
        let ch = channels::amplitude_damping(0.2);
        assert!(!ch.is_unitary_mixture());
        assert_eq!(ch.identity_index(), None);
        let nominal = ch.sampling_probs();
        assert!((nominal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Nominal damping branch weight = γ/2.
        assert!((nominal[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn branch_labels_for_paulis() {
        let ch = channels::depolarizing(0.3);
        assert_eq!(ch.branch_label(0), "I");
        assert_eq!(ch.branch_label(1), "X");
        assert_eq!(ch.branch_label(2), "Y");
        assert_eq!(ch.branch_label(3), "Z");
    }

    #[test]
    fn two_qubit_labels() {
        let ch = channels::depolarizing2(0.15);
        assert_eq!(ch.branch_label(0), "II");
        // All 16 labels distinct.
        let labels: std::collections::HashSet<_> = (0..16).map(|i| ch.branch_label(i)).collect();
        assert_eq!(labels.len(), 16);
    }

    #[test]
    fn cptp_violation_rejected() {
        let bad = vec![gates::x::<f64>().scaled_real(0.5)];
        assert_eq!(
            KrausChannel::new("bad", bad).unwrap_err(),
            ChannelError::NotTracePreserving
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            KrausChannel::new("e", vec![]).unwrap_err(),
            ChannelError::Empty
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let ops = vec![Matrix::<f64>::identity(2), Matrix::<f64>::identity(4)];
        assert_eq!(
            KrausChannel::new("s", ops).unwrap_err(),
            ChannelError::BadShape
        );
        let ops = vec![Matrix::<f64>::zeros(2, 3)];
        assert_eq!(
            KrausChannel::new("s", ops).unwrap_err(),
            ChannelError::BadShape
        );
        let ops = vec![Matrix::<f64>::identity(3)];
        assert_eq!(
            KrausChannel::new("s", ops).unwrap_err(),
            ChannelError::BadShape
        );
    }

    #[test]
    fn pure_unitary_channel() {
        // A deterministic coherent error: single Kraus operator.
        let ch = KrausChannel::new("overrotate", vec![gates::rx::<f64>(0.05)]).unwrap();
        assert!(ch.is_unitary_mixture());
        assert_eq!(ch.n_ops(), 1);
        assert!((ch.sampling_probs()[0] - 1.0).abs() < 1e-12);
        // Rx(0.05) is not proportional to the identity.
        assert_eq!(ch.identity_index(), None);
        assert!((ch.error_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_detected_up_to_phase() {
        // K0 = e^{iθ}·√(1-p)·I should still register as the identity branch.
        let p = 0.1f64;
        let phase = ptsbe_math::Complex::<f64>::cis(0.7);
        let k0 = Matrix::<f64>::identity(2).scaled(phase.scale((1.0 - p).sqrt()));
        let k1 = gates::x::<f64>().scaled_real(p.sqrt());
        let ch = KrausChannel::new("phased", vec![k0, k1]).unwrap();
        assert_eq!(ch.identity_index(), Some(0));
    }

    #[test]
    fn identity_skip_flags_exact_only() {
        // Depolarizing branch 0 is the exact identity; X/Y/Z are not.
        assert_eq!(
            channels::depolarizing(0.1).identity_skip_flags(),
            vec![true, false, false, false]
        );
        // Two-qubit depolarizing: only the II branch skips.
        let flags = channels::depolarizing2(0.2).identity_skip_flags();
        assert!(flags[0]);
        assert!(flags[1..].iter().all(|&f| !f));
        // A phase-identity branch e^{iθ}·I has identity_index (tolerant)
        // but must NOT be skippable (its application multiplies a phase).
        let p = 0.1f64;
        let phase = ptsbe_math::Complex::<f64>::cis(0.7);
        let k0 = Matrix::<f64>::identity(2).scaled(phase.scale((1.0 - p).sqrt()));
        let k1 = gates::x::<f64>().scaled_real(p.sqrt());
        let ch = KrausChannel::new("phased", vec![k0, k1]).unwrap();
        assert_eq!(ch.identity_index(), Some(0));
        assert!(ch.identity_skip_flags().iter().all(|&f| !f));
        // General channels never skip, even if a branch looks identity-ish.
        assert!(channels::amplitude_damping(0.2)
            .identity_skip_flags()
            .iter()
            .all(|&f| !f));
    }

    #[test]
    fn phase_damping_detection() {
        // Phase damping Kraus ops are diagonal but K1 ∝ |1><1| is not
        // unitary-scalable => general channel.
        let ch = channels::phase_damping(0.25);
        assert!(!ch.is_unitary_mixture());
    }

    #[test]
    fn phase_flip_vs_phase_damping_equivalence_point() {
        // Phase flip (unitary mixture) exists for the same physics; the
        // classifier must distinguish the two forms.
        let flip = channels::phase_flip(0.25);
        assert!(flip.is_unitary_mixture());
    }
}
