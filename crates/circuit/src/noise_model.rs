//! Noise models: attach channels to a clean circuit the way CUDA-Q's
//! `noiseModel` does (`noiseChannel ← lookUp(noiseModel, operator)` in the
//! paper's Algorithm 1).
//!
//! Resolution order for a gate: exact name match → arity default. The
//! result of [`NoiseModel::apply`] is a [`crate::NoisyCircuit`] with one
//! explicit noise site per (gate, rule) hit, plus optional pre-measurement
//! flip noise.

use crate::circuit::Circuit;
use crate::kraus::KrausChannel;
use crate::noisy::NoisyCircuit;
use crate::op::{NoiseOp, Op};
use std::collections::HashMap;
use std::sync::Arc;

/// Declarative mapping from gates to noise channels.
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    /// Channel applied after every 1-qubit gate without a name override.
    default_1q: Option<Arc<KrausChannel>>,
    /// Channel applied after every 2-qubit gate without a name override.
    /// Arity 1 channels are applied per-qubit; arity 2 channels once.
    default_2q: Option<Arc<KrausChannel>>,
    /// Per-gate-name overrides (e.g. only `cx` gates are noisy).
    by_name: HashMap<String, Arc<KrausChannel>>,
    /// Gate names exempted from noise entirely.
    noiseless: Vec<String>,
    /// Channel applied to each measured qubit right before measurement
    /// (readout error).
    before_measure: Option<Arc<KrausChannel>>,
}

impl NoiseModel {
    /// Empty (noiseless) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the default channel after 1-qubit gates (must have arity 1).
    pub fn with_default_1q(mut self, ch: KrausChannel) -> Self {
        assert_eq!(ch.arity(), 1, "default_1q channel must be single-qubit");
        self.default_1q = Some(Arc::new(ch));
        self
    }

    /// Set the default channel after 2-qubit gates (arity 1 = applied to
    /// each qubit; arity 2 = applied once to the pair).
    pub fn with_default_2q(mut self, ch: KrausChannel) -> Self {
        assert!(
            ch.arity() == 1 || ch.arity() == 2,
            "default_2q channel must have arity 1 or 2"
        );
        self.default_2q = Some(Arc::new(ch));
        self
    }

    /// Override the channel for a specific gate name.
    pub fn with_gate_noise(mut self, gate_name: &str, ch: KrausChannel) -> Self {
        self.by_name.insert(gate_name.to_string(), Arc::new(ch));
        self
    }

    /// Exempt a gate name from all noise.
    pub fn with_noiseless(mut self, gate_name: &str) -> Self {
        self.noiseless.push(gate_name.to_string());
        self
    }

    /// Apply a readout-error channel to each measured qubit.
    pub fn with_measurement_noise(mut self, ch: KrausChannel) -> Self {
        assert_eq!(ch.arity(), 1, "measurement noise must be single-qubit");
        self.before_measure = Some(Arc::new(ch));
        self
    }

    /// Channel that fires after the given gate, if any.
    fn lookup(&self, gate_name: &str, gate_arity: usize) -> Option<&Arc<KrausChannel>> {
        if self.noiseless.iter().any(|n| n == gate_name) {
            return None;
        }
        if let Some(ch) = self.by_name.get(gate_name) {
            return Some(ch);
        }
        match gate_arity {
            1 => self.default_1q.as_ref(),
            2 => self.default_2q.as_ref(),
            _ => None,
        }
    }

    /// Weave the model's channels into `circuit`, producing the explicit
    /// noisy circuit the PTS layer samples over.
    pub fn apply(&self, circuit: &Circuit) -> NoisyCircuit {
        let mut noisy = Circuit::new(circuit.n_qubits());
        for op in circuit.ops() {
            match op {
                Op::Gate(g) => {
                    noisy.push(op.clone());
                    if let Some(ch) = self.lookup(g.gate.name(), g.gate.arity()) {
                        if ch.arity() == g.qubits.len() {
                            noisy.push(Op::Noise(NoiseOp {
                                channel: Arc::clone(ch),
                                qubits: g.qubits.clone(),
                            }));
                        } else if ch.arity() == 1 {
                            for &q in &g.qubits {
                                noisy.push(Op::Noise(NoiseOp {
                                    channel: Arc::clone(ch),
                                    qubits: vec![q],
                                }));
                            }
                        } else {
                            panic!(
                                "channel {} (arity {}) cannot attach to gate {} (arity {})",
                                ch.name(),
                                ch.arity(),
                                g.gate.name(),
                                g.qubits.len()
                            );
                        }
                    }
                }
                Op::Measure { qubits } => {
                    if let Some(ch) = &self.before_measure {
                        for &q in qubits {
                            noisy.push(Op::Noise(NoiseOp {
                                channel: Arc::clone(ch),
                                qubits: vec![q],
                            }));
                        }
                    }
                    noisy.push(op.clone());
                }
                _ => {
                    noisy.push(op.clone());
                }
            }
        }
        NoisyCircuit::from_circuit(noisy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn defaults_attach_per_arity() {
        let model = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.01))
            .with_default_2q(channels::depolarizing2(0.02));
        let noisy = model.apply(&bell());
        // h -> 1 site, cx -> 1 site.
        assert_eq!(noisy.sites().len(), 2);
        assert_eq!(noisy.sites()[0].channel.name(), "depolarizing");
        assert_eq!(noisy.sites()[1].channel.name(), "depolarizing2");
        assert_eq!(noisy.sites()[1].qubits, vec![0, 1]);
    }

    #[test]
    fn one_qubit_channel_fans_out_on_two_qubit_gate() {
        let model = NoiseModel::new().with_default_2q(channels::depolarizing(0.01));
        let noisy = model.apply(&bell());
        // cx gets one site per qubit.
        assert_eq!(noisy.sites().len(), 2);
        assert_eq!(noisy.sites()[0].qubits, vec![0]);
        assert_eq!(noisy.sites()[1].qubits, vec![1]);
    }

    #[test]
    fn name_override_beats_default() {
        let model = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.01))
            .with_gate_noise("h", channels::bit_flip(0.5));
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let noisy = model.apply(&c);
        assert_eq!(noisy.sites().len(), 2);
        assert_eq!(noisy.sites()[0].channel.name(), "bit_flip");
        assert_eq!(noisy.sites()[1].channel.name(), "depolarizing");
    }

    #[test]
    fn noiseless_exemption() {
        let model = NoiseModel::new()
            .with_default_1q(channels::depolarizing(0.01))
            .with_noiseless("h");
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let noisy = model.apply(&c);
        assert_eq!(noisy.sites().len(), 1);
    }

    #[test]
    fn measurement_noise_sites() {
        let model = NoiseModel::new().with_measurement_noise(channels::bit_flip(0.02));
        let noisy = model.apply(&bell());
        assert_eq!(noisy.sites().len(), 2);
        // Sites must appear before the measure op.
        let measure_pos = noisy
            .ops()
            .iter()
            .position(|o| matches!(o, crate::noisy::NoisyOp::Measure { .. }))
            .unwrap();
        for site in noisy.sites() {
            assert!(site.op_index < measure_pos);
        }
    }

    #[test]
    fn empty_model_is_noiseless() {
        let noisy = NoiseModel::new().apply(&bell());
        assert!(noisy.sites().is_empty());
    }
}
