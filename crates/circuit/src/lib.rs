//! Circuit intermediate representation shared by every PTSBE backend.
//!
//! This is the front end the paper's Fig. 1 calls "an arbitrary noisy
//! circuit": a sequence of coherent gates (deterministic) and noise sites
//! (stochastic, each a CPTP Kraus channel). The IR is backend-agnostic —
//! the statevector, MPS, density-matrix and stabilizer simulators all
//! consume the same [`Circuit`]/[`NoisyCircuit`] types.
//!
//! Key pieces:
//! - [`gate::Gate`] — the universal gate set (plus arbitrary 1-/2-qubit
//!   unitaries), each gate knowing its matrix and Clifford membership;
//! - [`kraus::KrausChannel`] — a validated CPTP channel that detects the
//!   *unitary mixture* structure CUDA-Q exploits (paper §2.2 feature 2);
//! - [`channels`] — the standard noise zoo (depolarizing, damping, Pauli);
//! - [`noise_model::NoiseModel`] — attaches channels to gates the way
//!   CUDA-Q noise models do (`lookUp(noiseModel, operator)` in Alg. 1);
//! - [`noisy::NoisyCircuit`] — the circuit with noise sites made explicit,
//!   the object PTS algorithms sample over (paper Fig. 2);
//! - [`fusion`] — the gate-fusion pass backend compilers run once per
//!   segment, merging adjacent-gate runs into classified ≤2-qubit kernels
//!   shared by every trajectory;
//! - [`hash`] — stable semantic content hashing, the cache key the
//!   data-collection service memoizes compiled artifacts under.

pub mod channels;
pub mod circuit;
pub mod fusion;
pub mod gate;
pub mod hash;
pub mod kraus;
pub mod noise_model;
pub mod noisy;
pub mod op;

pub use circuit::Circuit;
pub use fusion::{FusedKernel, FusedOp, Fuser, FusionStats};
pub use gate::Gate;
pub use hash::StableHasher;
pub use kraus::{ChannelError, ChannelKind, KrausChannel};
pub use noise_model::NoiseModel;
pub use noisy::{NoiseSite, NoisyCircuit, NoisyOp};
pub use op::{GateOp, NoiseOp, Op};
