//! Property tests for channel validation and classification.

use proptest::prelude::*;
use ptsbe_circuit::{channels, ChannelKind, KrausChannel};
use ptsbe_math::{gates, Matrix};
use ptsbe_rng::PhiloxRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn pauli_channels_classified_and_normalized(px in 0.0f64..0.4, py in 0.0f64..0.3, pz in 0.0f64..0.3) {
        let ch = channels::pauli(px, py, pz);
        prop_assert!(ch.is_unitary_mixture());
        let probs = ch.sampling_probs();
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((probs[1] - px).abs() < 1e-9);
        prop_assert!((probs[2] - py).abs() < 1e-9);
        prop_assert!((probs[3] - pz).abs() < 1e-9);
        prop_assert_eq!(ch.identity_index(), Some(0));
        prop_assert!((ch.error_probability() - (px + py + pz)).abs() < 1e-9);
    }

    #[test]
    fn damping_channels_always_general(gamma in 0.01f64..0.99) {
        let ch = channels::amplitude_damping(gamma);
        prop_assert!(!ch.is_unitary_mixture());
        match ch.kind() {
            ChannelKind::General { nominal_probs } => {
                prop_assert!((nominal_probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!((nominal_probs[1] - gamma / 2.0).abs() < 1e-9);
            }
            _ => prop_assert!(false, "amplitude damping misclassified"),
        }
    }

    #[test]
    fn random_unitary_mixtures_detected(seed in 0u64..500, p in 0.05f64..0.95) {
        // Build K0 = sqrt(1-p) U0, K1 = sqrt(p) U1 from Haar unitaries:
        // detection must classify it as a mixture with the right probs.
        let mut rng = PhiloxRng::new(seed, 5);
        let u0 = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
        let u1 = ptsbe_math::random::haar_unitary::<f64>(2, &mut rng);
        let ops = vec![u0.scaled_real((1.0 - p).sqrt()), u1.scaled_real(p.sqrt())];
        let ch = KrausChannel::new("random-mixture", ops).unwrap();
        prop_assert!(ch.is_unitary_mixture());
        let probs = ch.sampling_probs();
        prop_assert!((probs[0] - (1.0 - p)).abs() < 1e-8);
        prop_assert!((probs[1] - p).abs() < 1e-8);
    }

    #[test]
    fn scaled_identity_rejected(scale in 0.1f64..0.9) {
        // A single K = s·I with s<1 is not trace-preserving.
        let ops = vec![Matrix::<f64>::identity(2).scaled_real(scale)];
        prop_assert!(KrausChannel::new("bad", ops).is_err());
    }

    #[test]
    fn depolarizing2_branch_labels_cover_pauli_pairs(p in 0.01f64..0.99) {
        let ch = channels::depolarizing2(p);
        let labels: std::collections::HashSet<String> =
            (0..16).map(|i| ch.branch_label(i)).collect();
        prop_assert_eq!(labels.len(), 16);
        for l in &labels {
            prop_assert_eq!(l.len(), 2);
            for c in l.chars() {
                prop_assert!("IXYZ".contains(c));
            }
        }
    }

    #[test]
    fn coherent_error_composition_is_cptp(eps in -0.5f64..0.5) {
        // Rx(eps) followed by its inverse is the identity channel; both
        // validate individually.
        let a = channels::coherent_x_overrotation(eps);
        let b = channels::coherent_x_overrotation(-eps);
        prop_assert!(a.is_unitary_mixture());
        prop_assert!(b.is_unitary_mixture());
        let prod = a.op(0).mul_ref(b.op(0));
        prop_assert!(prod.max_abs_diff(&gates::rx::<f64>(0.0)) < 1e-9);
    }
}
