//! Thin Householder QR for complex matrices.
//!
//! Used by the MPS backend for canonicalization sweeps (where only an
//! isometry factor is needed, never the full square Q) and by
//! [`crate::random`] to project Gaussian matrices onto the Haar measure.

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Result of a thin QR factorization `A = Q · R` with `Q` an `m×k` isometry
/// (`Q†Q = I_k`, `k = min(m, n)`) and `R` a `k×n` upper-triangular factor
/// whose diagonal is real and non-negative (uniqueness convention).
pub struct Qr<T: Scalar> {
    /// Isometry factor, `m×k`.
    pub q: Matrix<T>,
    /// Upper-triangular factor, `k×n`.
    pub r: Matrix<T>,
}

/// Compute the thin QR factorization of `a`.
pub fn qr_thin<T: Scalar>(a: &Matrix<T>) -> Qr<T> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);

    // Working copy that becomes R in its upper triangle.
    let mut work = a.clone();
    // Householder reflectors v_j (each of length m - j), applied as
    // H = I - 2 v v† with ||v|| = 1.
    let mut reflectors: Vec<Vec<Complex<T>>> = Vec::with_capacity(k);

    for j in 0..k {
        // Column slice x = work[j.., j].
        let mut v: Vec<Complex<T>> = (j..m).map(|r| work[(r, j)]).collect();
        let norm_x = vec_norm(&v);
        if norm_x <= T::tol() {
            reflectors.push(Vec::new());
            continue;
        }
        // alpha = -e^{i arg(x0)} ||x|| avoids cancellation.
        let x0 = v[0];
        let phase = if x0.abs() <= T::eps() {
            Complex::one()
        } else {
            x0.scale(T::ONE / x0.abs())
        };
        let alpha = -(phase.scale(norm_x));
        v[0] -= alpha;
        let vn = vec_norm(&v);
        if vn <= T::eps() {
            // x is already a (negative-phase) multiple of e1; no reflection
            // needed beyond fixing the sign below.
            reflectors.push(Vec::new());
            work[(j, j)] = alpha;
            continue;
        }
        let inv = T::ONE / vn;
        for c in &mut v {
            *c = c.scale(inv);
        }
        // Apply H to the trailing submatrix work[j.., j..].
        apply_reflector_left(&mut work, &v, j);
        reflectors.push(v);
    }

    // Extract R (upper triangle of first k rows).
    let mut r = Matrix::zeros(k, n);
    for i in 0..k {
        for c in i..n {
            r[(i, c)] = work[(i, c)];
        }
    }

    // Build thin Q by applying reflectors in reverse order to I_{m×k}.
    let mut q = Matrix::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = Complex::one();
    }
    for j in (0..k).rev() {
        if reflectors[j].is_empty() {
            continue;
        }
        apply_reflector_left_offset(&mut q, &reflectors[j], j);
    }

    // Normalize so the diagonal of R is real non-negative.
    for i in 0..k {
        let d = r[(i, i)];
        let mag = d.abs();
        if mag <= T::eps() {
            continue;
        }
        let ph = d.scale(T::ONE / mag); // e^{i arg d}
        let ph_conj = ph.conj();
        // R row i *= conj(phase); Q col i *= phase.
        for c in i..n {
            r[(i, c)] *= ph_conj;
        }
        for rr in 0..m {
            q[(rr, i)] *= ph;
        }
    }

    Qr { q, r }
}

/// Result of a column-pivoted (rank-revealing) thin QR factorization
/// `A · P = Q · R`, with `Q` held implicitly as its Householder
/// reflectors (apply it via [`QrCp::apply_q`]). Pivoting picks the
/// largest remaining column at every step, so the magnitudes of `R`'s
/// diagonal are non-increasing and the trailing rows of `R` collect the
/// numerically negligible directions — the property [`crate::svd::svd_qr`]
/// uses to shrink rank-deficient SVDs before the expensive iteration.
///
/// Unlike [`qr_thin`], the diagonal of `R` is *not* phase-normalized
/// (the SVD consumer doesn't care, and normalizing an implicit `Q` would
/// cost an extra pass).
pub struct QrCp<T: Scalar> {
    /// Householder reflectors `v_j` (unit norm, length `m - j`), in
    /// elimination order. Empty vectors are identity steps.
    reflectors: Vec<Vec<Complex<T>>>,
    /// Upper-triangular factor, `k×n`, columns already permuted.
    pub r: Matrix<T>,
    /// `perm[j]` = original column of `A` now at position `j`.
    pub perm: Vec<usize>,
    rows: usize,
}

impl<T: Scalar> QrCp<T> {
    /// Apply the implicit `Q` to the zero-padded extension of `x`:
    /// returns `Q · [x; 0]` (shape `m × x.cols()`), i.e. `x` expressed
    /// in the basis of `Q`'s leading columns. Reflectors acting entirely
    /// below `x`'s rows are provable no-ops on the padding and skipped.
    pub fn apply_q(&self, x: &Matrix<T>) -> Matrix<T> {
        let m = self.rows;
        let p = x.cols();
        let active = self.reflectors.len().min(x.rows());
        let mut cols: Vec<Vec<Complex<T>>> = (0..p)
            .map(|c| {
                let mut col = vec![Complex::zero(); m];
                for r in 0..x.rows() {
                    col[r] = x[(r, c)];
                }
                col
            })
            .collect();
        for j in (0..active).rev() {
            let v = &self.reflectors[j];
            if v.is_empty() {
                continue;
            }
            for col in &mut cols {
                reflect(v, &mut col[j..]);
            }
        }
        let mut out = Matrix::zeros(m, p);
        for (c, col) in cols.iter().enumerate() {
            for (r, z) in col.iter().enumerate() {
                out[(r, c)] = *z;
            }
        }
        out
    }
}

/// Apply `H = I - 2vv†` to one contiguous column slice (`v` unit norm).
#[inline]
fn reflect<T: Scalar>(v: &[Complex<T>], col: &mut [Complex<T>]) {
    let mut w = Complex::zero();
    for (vi, x) in v.iter().zip(col.iter()) {
        w += vi.conj() * *x;
    }
    let w2 = w.scale(T::TWO);
    for (vi, x) in v.iter().zip(col.iter_mut()) {
        *x -= *vi * w2;
    }
}

/// Column-pivoted thin QR `A · P = Q · R` (see [`QrCp`]).
///
/// Remaining-column norms are tracked by downdating with a cancellation
/// guard (recompute when the downdated estimate loses eight digits
/// against the column's start-of-factorization norm), the LINPACK
/// recipe.
pub fn qr_cp<T: Scalar>(a: &Matrix<T>) -> QrCp<T> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);

    // Column-major working copy: every Householder application below is
    // a pass over contiguous memory.
    let mut cols: Vec<Vec<Complex<T>>> = (0..n)
        .map(|c| (0..m).map(|r| a[(r, c)]).collect())
        .collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut norms: Vec<T> = cols.iter().map(|col| col_norm_sqr(col)).collect();
    let mut ref_norms = norms.clone();
    let mut reflectors: Vec<Vec<Complex<T>>> = Vec::with_capacity(k);

    for j in 0..k {
        // Pivot: largest remaining column (by downdated estimate).
        let mut p = j;
        for c in j + 1..n {
            if norms[c] > norms[p] {
                p = c;
            }
        }
        if p != j {
            cols.swap(j, p);
            perm.swap(j, p);
            norms.swap(j, p);
            ref_norms.swap(j, p);
        }

        let mut v: Vec<Complex<T>> = cols[j][j..].to_vec();
        let norm_x = col_norm_sqr(&v).sqrt();
        if norm_x <= T::tol() {
            // Largest remaining column is negligible: the factorization
            // is complete, but keep the loop shape (identity steps).
            reflectors.push(Vec::new());
            continue;
        }
        let x0 = v[0];
        let phase = if x0.abs() <= T::eps() {
            Complex::one()
        } else {
            x0.scale(T::ONE / x0.abs())
        };
        let alpha = -(phase.scale(norm_x));
        v[0] -= alpha;
        let vn = col_norm_sqr(&v).sqrt();
        if vn <= T::eps() {
            reflectors.push(Vec::new());
            cols[j][j] = alpha;
            cols[j][j + 1..].fill(Complex::zero());
        } else {
            let inv = T::ONE / vn;
            for c in &mut v {
                *c = c.scale(inv);
            }
            cols[j][j] = alpha;
            cols[j][j + 1..].fill(Complex::zero());
            for col in cols.iter_mut().skip(j + 1) {
                reflect(&v, &mut col[j..]);
            }
            reflectors.push(v);
        }

        // Downdate the remaining norms by the row the reflector exposed.
        for c in j + 1..n {
            let head = cols[c][j].norm_sqr();
            let down = norms[c] - head;
            norms[c] = if down <= ref_norms[c] * T::from_f64(1e-8) {
                // Cancellation: recompute from what actually remains.
                let fresh = col_norm_sqr(&cols[c][j + 1..]);
                ref_norms[c] = fresh;
                fresh
            } else {
                down
            };
        }
    }

    let mut r = Matrix::zeros(k, n);
    for (c, col) in cols.iter().enumerate() {
        for i in 0..k.min(c + 1) {
            r[(i, c)] = col[i];
        }
    }
    QrCp {
        reflectors,
        r,
        perm,
        rows: m,
    }
}

fn col_norm_sqr<T: Scalar>(col: &[Complex<T>]) -> T {
    col.iter().map(|z| z.norm_sqr()).fold(T::ZERO, |a, b| a + b)
}

fn vec_norm<T: Scalar>(v: &[Complex<T>]) -> T {
    v.iter()
        .map(|z| z.norm_sqr())
        .fold(T::ZERO, |a, b| a + b)
        .sqrt()
}

/// Apply `H = I - 2vv†` to rows `j..` of every column `j..` of `work`.
fn apply_reflector_left<T: Scalar>(work: &mut Matrix<T>, v: &[Complex<T>], j: usize) {
    let m = work.rows();
    let n = work.cols();
    for c in j..n {
        // w = v† · work[j.., c]
        let mut w = Complex::zero();
        for (vi, r) in v.iter().zip(j..m) {
            w += vi.conj() * work[(r, c)];
        }
        let w2 = w.scale(T::TWO);
        for (vi, r) in v.iter().zip(j..m) {
            let delta = *vi * w2;
            work[(r, c)] -= delta;
        }
    }
}

/// Same as [`apply_reflector_left`] but for the Q accumulation where the
/// reflector spans rows `j..` and all columns.
fn apply_reflector_left_offset<T: Scalar>(q: &mut Matrix<T>, v: &[Complex<T>], j: usize) {
    let m = q.rows();
    let k = q.cols();
    for c in 0..k {
        let mut w = Complex::zero();
        for (vi, r) in v.iter().zip(j..m) {
            w += vi.conj() * q[(r, c)];
        }
        let w2 = w.scale(T::TWO);
        for (vi, r) in v.iter().zip(j..m) {
            let delta = *vi * w2;
            q[(r, c)] -= delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;
    use ptsbe_rng::PhiloxRng;

    fn check_qr(a: &Matrix<f64>, tol: f64) {
        let Qr { q, r } = qr_thin(a);
        let k = a.rows().min(a.cols());
        assert_eq!(q.rows(), a.rows());
        assert_eq!(q.cols(), k);
        assert_eq!(r.rows(), k);
        assert_eq!(r.cols(), a.cols());
        // Reconstruction.
        assert!(q.mul_ref(&r).max_abs_diff(a) < tol, "A != QR");
        // Isometry.
        let qtq = q.dagger().mul_ref(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(k)) < tol, "Q†Q != I");
        // Upper triangular with real non-negative diagonal.
        for i in 0..k {
            for c in 0..i.min(r.cols()) {
                assert!(r[(i, c)].abs() < tol, "R not upper triangular");
            }
            if i < r.cols() {
                assert!(r[(i, i)].im.abs() < tol, "R diagonal not real");
                assert!(r[(i, i)].re >= -tol, "R diagonal negative");
            }
        }
    }

    #[test]
    fn square_random() {
        let mut rng = PhiloxRng::new(41, 0);
        for n in [1usize, 2, 3, 5, 8, 16] {
            let a = random_matrix::<f64>(n, n, &mut rng);
            check_qr(&a, 1e-10);
        }
    }

    #[test]
    fn tall_random() {
        let mut rng = PhiloxRng::new(42, 0);
        for (m, n) in [(4usize, 2usize), (8, 3), (16, 5), (7, 1)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_qr(&a, 1e-10);
        }
    }

    #[test]
    fn wide_random() {
        let mut rng = PhiloxRng::new(43, 0);
        for (m, n) in [(2usize, 4usize), (3, 8), (5, 16)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_qr(&a, 1e-10);
        }
    }

    #[test]
    fn rank_deficient() {
        // Two identical columns.
        let mut rng = PhiloxRng::new(44, 0);
        let col = random_matrix::<f64>(6, 1, &mut rng);
        let mut a = Matrix::zeros(6, 2);
        for r in 0..6 {
            a[(r, 0)] = col[(r, 0)];
            a[(r, 1)] = col[(r, 0)];
        }
        let Qr { q, r } = qr_thin(&a);
        assert!(q.mul_ref(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(4, 3);
        let Qr { q, r } = qr_thin(&a);
        assert!(q.mul_ref(&r).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn identity_fixed_point() {
        let a = Matrix::<f64>::identity(5);
        let Qr { q, r } = qr_thin(&a);
        assert!(q.max_abs_diff(&a) < 1e-12);
        assert!(r.max_abs_diff(&a) < 1e-12);
    }

    /// `A[:, perm[c]] == (Q·R)[:, c]`, Q implicit. Also checks R is upper
    /// triangular with non-increasing diagonal magnitudes (the pivoting
    /// contract the rank detection in `svd_qrcp` rests on).
    fn check_qr_cp(a: &Matrix<f64>, tol: f64) {
        let cp = qr_cp(a);
        let k = a.rows().min(a.cols());
        assert_eq!(cp.r.rows(), k);
        assert_eq!(cp.r.cols(), a.cols());
        let mut seen = vec![false; a.cols()];
        for &p in &cp.perm {
            assert!(!seen[p], "perm is not a permutation");
            seen[p] = true;
        }
        let recon = cp.apply_q(&cp.r);
        for c in 0..a.cols() {
            for r in 0..a.rows() {
                let diff = (recon[(r, c)] - a[(r, cp.perm[c])]).abs();
                assert!(diff < tol, "A·P != Q·R at ({r}, {c}): {diff:.3e}");
            }
        }
        let mut prev = f64::INFINITY;
        for i in 0..k {
            for c in 0..i {
                assert!(cp.r[(i, c)].abs() < tol, "R not upper triangular");
            }
            let d = cp.r[(i, i)].abs();
            assert!(
                d <= prev + tol,
                "pivoted diagonal not non-increasing: |r{i}{i}| = {d:.3e} > {prev:.3e}"
            );
            prev = d;
        }
        // Implicit Q is an isometry: apply it to I_k and check.
        let q = cp.apply_q(&Matrix::identity(k));
        let qtq = q.dagger().mul_ref(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(k)) < tol, "Q†Q != I");
    }

    #[test]
    fn qr_cp_random_shapes() {
        let mut rng = PhiloxRng::new(45, 0);
        for (m, n) in [
            (1usize, 1usize),
            (5, 5),
            (8, 3),
            (3, 8),
            (16, 16),
            (16, 24),
            (24, 16),
        ] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_qr_cp(&a, 1e-10);
        }
    }

    #[test]
    fn qr_cp_rank_deficient_exposes_rank() {
        // Rank-3 12×12 matrix: the pivoted R must push everything past
        // row 3 down to machine noise, and still reconstruct A exactly.
        let mut rng = PhiloxRng::new(46, 0);
        let l = random_matrix::<f64>(12, 3, &mut rng);
        let r = random_matrix::<f64>(3, 12, &mut rng);
        let a = l.mul_ref(&r);
        check_qr_cp(&a, 1e-9);
        let cp = qr_cp(&a);
        let scale = cp.r[(0, 0)].abs();
        for i in 3..12 {
            assert!(
                cp.r[(i, i)].abs() < scale * 1e-12,
                "rank-3 input left |r{i}{i}| = {:.3e}",
                cp.r[(i, i)].abs()
            );
        }
    }

    #[test]
    fn qr_cp_zero_matrix() {
        let a = Matrix::<f64>::zeros(4, 3);
        let cp = qr_cp(&a);
        assert!(cp.r.max_abs_diff(&Matrix::zeros(3, 3)) < 1e-15);
        assert!(cp.apply_q(&cp.r).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn qr_cp_apply_q_pads_short_input() {
        // apply_q must treat x as zero-padded to m rows: Q·[x; 0] with a
        // 2-row x against 6-row reflectors.
        let mut rng = PhiloxRng::new(47, 0);
        let a = random_matrix::<f64>(6, 4, &mut rng);
        let cp = qr_cp(&a);
        let x = random_matrix::<f64>(2, 3, &mut rng);
        let mut padded = Matrix::zeros(4, 3);
        for r in 0..2 {
            for c in 0..3 {
                padded[(r, c)] = x[(r, c)];
            }
        }
        let got = cp.apply_q(&x);
        let want = cp.apply_q(&padded);
        assert!(got.max_abs_diff(&want) < 1e-12);
    }
}
