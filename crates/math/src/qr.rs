//! Thin Householder QR for complex matrices.
//!
//! Used by the MPS backend for canonicalization sweeps (where only an
//! isometry factor is needed, never the full square Q) and by
//! [`crate::random`] to project Gaussian matrices onto the Haar measure.

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Result of a thin QR factorization `A = Q · R` with `Q` an `m×k` isometry
/// (`Q†Q = I_k`, `k = min(m, n)`) and `R` a `k×n` upper-triangular factor
/// whose diagonal is real and non-negative (uniqueness convention).
pub struct Qr<T: Scalar> {
    /// Isometry factor, `m×k`.
    pub q: Matrix<T>,
    /// Upper-triangular factor, `k×n`.
    pub r: Matrix<T>,
}

/// Compute the thin QR factorization of `a`.
pub fn qr_thin<T: Scalar>(a: &Matrix<T>) -> Qr<T> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);

    // Working copy that becomes R in its upper triangle.
    let mut work = a.clone();
    // Householder reflectors v_j (each of length m - j), applied as
    // H = I - 2 v v† with ||v|| = 1.
    let mut reflectors: Vec<Vec<Complex<T>>> = Vec::with_capacity(k);

    for j in 0..k {
        // Column slice x = work[j.., j].
        let mut v: Vec<Complex<T>> = (j..m).map(|r| work[(r, j)]).collect();
        let norm_x = vec_norm(&v);
        if norm_x <= T::tol() {
            reflectors.push(Vec::new());
            continue;
        }
        // alpha = -e^{i arg(x0)} ||x|| avoids cancellation.
        let x0 = v[0];
        let phase = if x0.abs() <= T::eps() {
            Complex::one()
        } else {
            x0.scale(T::ONE / x0.abs())
        };
        let alpha = -(phase.scale(norm_x));
        v[0] -= alpha;
        let vn = vec_norm(&v);
        if vn <= T::eps() {
            // x is already a (negative-phase) multiple of e1; no reflection
            // needed beyond fixing the sign below.
            reflectors.push(Vec::new());
            work[(j, j)] = alpha;
            continue;
        }
        let inv = T::ONE / vn;
        for c in &mut v {
            *c = c.scale(inv);
        }
        // Apply H to the trailing submatrix work[j.., j..].
        apply_reflector_left(&mut work, &v, j);
        reflectors.push(v);
    }

    // Extract R (upper triangle of first k rows).
    let mut r = Matrix::zeros(k, n);
    for i in 0..k {
        for c in i..n {
            r[(i, c)] = work[(i, c)];
        }
    }

    // Build thin Q by applying reflectors in reverse order to I_{m×k}.
    let mut q = Matrix::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = Complex::one();
    }
    for j in (0..k).rev() {
        if reflectors[j].is_empty() {
            continue;
        }
        apply_reflector_left_offset(&mut q, &reflectors[j], j);
    }

    // Normalize so the diagonal of R is real non-negative.
    for i in 0..k {
        let d = r[(i, i)];
        let mag = d.abs();
        if mag <= T::eps() {
            continue;
        }
        let ph = d.scale(T::ONE / mag); // e^{i arg d}
        let ph_conj = ph.conj();
        // R row i *= conj(phase); Q col i *= phase.
        for c in i..n {
            r[(i, c)] *= ph_conj;
        }
        for rr in 0..m {
            q[(rr, i)] *= ph;
        }
    }

    Qr { q, r }
}

fn vec_norm<T: Scalar>(v: &[Complex<T>]) -> T {
    v.iter()
        .map(|z| z.norm_sqr())
        .fold(T::ZERO, |a, b| a + b)
        .sqrt()
}

/// Apply `H = I - 2vv†` to rows `j..` of every column `j..` of `work`.
fn apply_reflector_left<T: Scalar>(work: &mut Matrix<T>, v: &[Complex<T>], j: usize) {
    let m = work.rows();
    let n = work.cols();
    for c in j..n {
        // w = v† · work[j.., c]
        let mut w = Complex::zero();
        for (vi, r) in v.iter().zip(j..m) {
            w += vi.conj() * work[(r, c)];
        }
        let w2 = w.scale(T::TWO);
        for (vi, r) in v.iter().zip(j..m) {
            let delta = *vi * w2;
            work[(r, c)] -= delta;
        }
    }
}

/// Same as [`apply_reflector_left`] but for the Q accumulation where the
/// reflector spans rows `j..` and all columns.
fn apply_reflector_left_offset<T: Scalar>(q: &mut Matrix<T>, v: &[Complex<T>], j: usize) {
    let m = q.rows();
    let k = q.cols();
    for c in 0..k {
        let mut w = Complex::zero();
        for (vi, r) in v.iter().zip(j..m) {
            w += vi.conj() * q[(r, c)];
        }
        let w2 = w.scale(T::TWO);
        for (vi, r) in v.iter().zip(j..m) {
            let delta = *vi * w2;
            q[(r, c)] -= delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;
    use ptsbe_rng::PhiloxRng;

    fn check_qr(a: &Matrix<f64>, tol: f64) {
        let Qr { q, r } = qr_thin(a);
        let k = a.rows().min(a.cols());
        assert_eq!(q.rows(), a.rows());
        assert_eq!(q.cols(), k);
        assert_eq!(r.rows(), k);
        assert_eq!(r.cols(), a.cols());
        // Reconstruction.
        assert!(q.mul_ref(&r).max_abs_diff(a) < tol, "A != QR");
        // Isometry.
        let qtq = q.dagger().mul_ref(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(k)) < tol, "Q†Q != I");
        // Upper triangular with real non-negative diagonal.
        for i in 0..k {
            for c in 0..i.min(r.cols()) {
                assert!(r[(i, c)].abs() < tol, "R not upper triangular");
            }
            if i < r.cols() {
                assert!(r[(i, i)].im.abs() < tol, "R diagonal not real");
                assert!(r[(i, i)].re >= -tol, "R diagonal negative");
            }
        }
    }

    #[test]
    fn square_random() {
        let mut rng = PhiloxRng::new(41, 0);
        for n in [1usize, 2, 3, 5, 8, 16] {
            let a = random_matrix::<f64>(n, n, &mut rng);
            check_qr(&a, 1e-10);
        }
    }

    #[test]
    fn tall_random() {
        let mut rng = PhiloxRng::new(42, 0);
        for (m, n) in [(4usize, 2usize), (8, 3), (16, 5), (7, 1)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_qr(&a, 1e-10);
        }
    }

    #[test]
    fn wide_random() {
        let mut rng = PhiloxRng::new(43, 0);
        for (m, n) in [(2usize, 4usize), (3, 8), (5, 16)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_qr(&a, 1e-10);
        }
    }

    #[test]
    fn rank_deficient() {
        // Two identical columns.
        let mut rng = PhiloxRng::new(44, 0);
        let col = random_matrix::<f64>(6, 1, &mut rng);
        let mut a = Matrix::zeros(6, 2);
        for r in 0..6 {
            a[(r, 0)] = col[(r, 0)];
            a[(r, 1)] = col[(r, 0)];
        }
        let Qr { q, r } = qr_thin(&a);
        assert!(q.mul_ref(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(4, 3);
        let Qr { q, r } = qr_thin(&a);
        assert!(q.mul_ref(&r).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn identity_fixed_point() {
        let a = Matrix::<f64>::identity(5);
        let Qr { q, r } = qr_thin(&a);
        assert!(q.max_abs_diff(&a) < 1e-12);
        assert!(r.max_abs_diff(&a) < 1e-12);
    }
}
