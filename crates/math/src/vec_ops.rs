//! Complex vector kernels shared by the statevector and MPS backends.
//!
//! Two families live here:
//!
//! - interleaved helpers ([`mat2_apply`]/[`mat4_apply`]) operating on
//!   [`Complex`] values — the scalar statevector path;
//! - split-plane helpers ([`mat2_planes`]/[`mat4_planes`]/[`cmul_plane`]
//!   and friends) operating on separate `re`/`im` slices — the
//!   structure-of-arrays batch path. They compose the same parts-level
//!   primitives ([`crate::complex::cplx_mul_parts`] /
//!   [`crate::complex::cplx_mul_add_parts`]) the [`Complex`] operators
//!   route through, so the two layouts produce bit-identical amplitudes,
//!   and their loops are shuffle-free mul/`mul_add` chains the compiler
//!   lowers to packed FMA.

use crate::complex::{cplx_mul_add_parts, cplx_mul_parts, Complex};
use crate::scalar::Scalar;

/// Sum of squared moduli.
pub fn norm_sqr<T: Scalar>(v: &[Complex<T>]) -> T {
    v.iter().map(|z| z.norm_sqr()).fold(T::ZERO, |a, b| a + b)
}

/// Euclidean norm.
pub fn norm<T: Scalar>(v: &[Complex<T>]) -> T {
    norm_sqr(v).sqrt()
}

/// Normalize in place; returns the original norm. A zero vector is left
/// untouched (returns zero).
pub fn normalize<T: Scalar>(v: &mut [Complex<T>]) -> T {
    let n = norm(v);
    if n > T::ZERO {
        let inv = T::ONE / n;
        for z in v.iter_mut() {
            *z = z.scale(inv);
        }
    }
    n
}

/// `y_r = Σ_c e[2r + c] · x_c` for a 2×2 matrix in row-major entry order
/// `[m00, m01, m10, m11]` — the FMA-form inner step of every 1-qubit gate
/// kernel. The scalar and batch-major statevector paths both call this,
/// which is what makes their amplitudes bitwise identical.
#[inline(always)]
pub fn mat2_apply<T: Scalar>(
    e: &[Complex<T>; 4],
    x0: Complex<T>,
    x1: Complex<T>,
) -> (Complex<T>, Complex<T>) {
    (e[0].mul_add(x0, e[1] * x1), e[2].mul_add(x0, e[3] * x1))
}

/// `y_r = Σ_c m[r][c] · x_c` for a 4×4 matrix — the FMA-form inner step of
/// every dense 2-qubit gate kernel, shared by the scalar and batch-major
/// paths for the same bitwise-identity reason as [`mat2_apply`].
#[inline(always)]
pub fn mat4_apply<T: Scalar>(mm: &[[Complex<T>; 4]; 4], x: &[Complex<T>; 4]) -> [Complex<T>; 4] {
    let mut y = [Complex::zero(); 4];
    for (row, yr) in mm.iter().zip(y.iter_mut()) {
        let acc = row[0].mul_add(x[0], row[1] * x[1]);
        let acc = row[2].mul_add(x[2], acc);
        *yr = row[3].mul_add(x[3], acc);
    }
    y
}

// ---------------------------------------------------------------------------
// Split-plane (structure-of-arrays) run kernels

/// In-place plain complex scale of a split-plane run: `z_j *= d` with the
/// exact `Complex: Mul` arithmetic — the diagonal-gate inner loop.
#[inline(always)]
pub fn cmul_plane<T: Scalar>(dr: T, di: T, re: &mut [T], im: &mut [T]) {
    let n = re.len();
    let (re, im) = (&mut re[..n], &mut im[..n]);
    for j in 0..n {
        let (yr, yi) = cplx_mul_parts(re[j], im[j], dr, di);
        re[j] = yr;
        im[j] = yi;
    }
}

/// In-place real scale of a split-plane run: `z_j *= s` (the exact
/// arithmetic of `Complex::scale`).
#[inline(always)]
pub fn scale_plane<T: Scalar>(s: T, re: &mut [T], im: &mut [T]) {
    let n = re.len();
    let (re, im) = (&mut re[..n], &mut im[..n]);
    for j in 0..n {
        re[j] *= s;
        im[j] *= s;
    }
}

/// In-place negation of a split-plane run (the exact arithmetic of
/// `Complex: Neg`, including signed zeros).
#[inline(always)]
pub fn neg_plane<T: Scalar>(re: &mut [T], im: &mut [T]) {
    let n = re.len();
    let (re, im) = (&mut re[..n], &mut im[..n]);
    for j in 0..n {
        re[j] = -re[j];
        im[j] = -im[j];
    }
}

/// [`mat2_apply`] over a split-plane run pair: for every `j`,
/// `(lo_j, hi_j) ← M · (lo_j, hi_j)` with the 2×2 matrix given as
/// separate entry planes `er`/`ei` (row-major `[m00, m01, m10, m11]`).
/// Bitwise identical to calling [`mat2_apply`] per element.
#[inline(always)]
pub fn mat2_planes<T: Scalar>(
    er: &[T; 4],
    ei: &[T; 4],
    lo_re: &mut [T],
    lo_im: &mut [T],
    hi_re: &mut [T],
    hi_im: &mut [T],
) {
    let n = lo_re.len();
    let (lo_re, lo_im) = (&mut lo_re[..n], &mut lo_im[..n]);
    let (hi_re, hi_im) = (&mut hi_re[..n], &mut hi_im[..n]);
    for j in 0..n {
        let (x0r, x0i, x1r, x1i) = (lo_re[j], lo_im[j], hi_re[j], hi_im[j]);
        let (t0r, t0i) = cplx_mul_parts(er[1], ei[1], x1r, x1i);
        let (y0r, y0i) = cplx_mul_add_parts(er[0], ei[0], x0r, x0i, t0r, t0i);
        let (t1r, t1i) = cplx_mul_parts(er[3], ei[3], x1r, x1i);
        let (y1r, y1i) = cplx_mul_add_parts(er[2], ei[2], x0r, x0i, t1r, t1i);
        lo_re[j] = y0r;
        lo_im[j] = y0i;
        hi_re[j] = y1r;
        hi_im[j] = y1i;
    }
}

/// [`mat4_apply`] over four split-plane runs: for every `j`, the quad
/// `(x0..x3)_j ← M · (x0..x3)_j` with the 4×4 matrix given as separate
/// entry planes. Bitwise identical to calling [`mat4_apply`] per element.
#[inline(always)]
pub fn mat4_planes<T: Scalar>(
    mr: &[[T; 4]; 4],
    mi: &[[T; 4]; 4],
    re: [&mut [T]; 4],
    im: [&mut [T]; 4],
) {
    let [r0, r1, r2, r3] = re;
    let [i0, i1, i2, i3] = im;
    let n = r0.len();
    let (r0, r1, r2, r3) = (&mut r0[..n], &mut r1[..n], &mut r2[..n], &mut r3[..n]);
    let (i0, i1, i2, i3) = (&mut i0[..n], &mut i1[..n], &mut i2[..n], &mut i3[..n]);
    for j in 0..n {
        let xr = [r0[j], r1[j], r2[j], r3[j]];
        let xi = [i0[j], i1[j], i2[j], i3[j]];
        let mut yr = [T::ZERO; 4];
        let mut yi = [T::ZERO; 4];
        for r in 0..4 {
            let (tr, ti) = cplx_mul_parts(mr[r][1], mi[r][1], xr[1], xi[1]);
            let (ar, ai) = cplx_mul_add_parts(mr[r][0], mi[r][0], xr[0], xi[0], tr, ti);
            let (ar, ai) = cplx_mul_add_parts(mr[r][2], mi[r][2], xr[2], xi[2], ar, ai);
            let (fr, fi) = cplx_mul_add_parts(mr[r][3], mi[r][3], xr[3], xi[3], ar, ai);
            yr[r] = fr;
            yi[r] = fi;
        }
        r0[j] = yr[0];
        r1[j] = yr[1];
        r2[j] = yr[2];
        r3[j] = yr[3];
        i0[j] = yi[0];
        i1[j] = yi[1];
        i2[j] = yi[2];
        i3[j] = yi[3];
    }
}

/// Hermitian inner product `⟨a|b⟩ = Σ conj(a_i)·b_i`.
pub fn inner<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> Complex<T> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Complex::zero();
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Fidelity between two pure states: `|⟨a|b⟩|²`.
pub fn fidelity<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> T {
    inner(a, b).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    #[test]
    fn norms() {
        let v = [C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        assert_eq!(norm_sqr(&v), 25.0);
        assert_eq!(norm(&v), 5.0);
    }

    #[test]
    fn normalize_roundtrip() {
        let mut v = vec![C64::new(1.0, 1.0); 8];
        let n = normalize(&mut v);
        assert!((n - 4.0).abs() < 1e-12);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector() {
        let mut v = vec![C64::zero(); 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|z| *z == C64::zero()));
    }

    #[test]
    fn mat_apply_helpers_match_naive_products() {
        let e = [
            C64::new(0.2, 0.3),
            C64::new(-1.0, 0.5),
            C64::new(0.0, -0.7),
            C64::new(1.4, 0.0),
        ];
        let (x0, x1) = (C64::new(0.6, -0.1), C64::new(-0.3, 0.8));
        let (y0, y1) = mat2_apply(&e, x0, x1);
        assert!((y0 - (e[0] * x0 + e[1] * x1)).abs() < 1e-15);
        assert!((y1 - (e[2] * x0 + e[3] * x1)).abs() < 1e-15);

        let mm = [[C64::new(0.1, 0.2); 4], e, e, [C64::i(); 4]];
        let x = [x0, x1, C64::one(), C64::new(0.0, -2.0)];
        let y = mat4_apply(&mm, &x);
        for (r, yr) in y.iter().enumerate() {
            let mut naive = C64::zero();
            for (c, &xc) in x.iter().enumerate() {
                naive += mm[r][c] * xc;
            }
            assert!((*yr - naive).abs() < 1e-14, "row {r}");
        }
    }

    fn bits(z: C64) -> (u64, u64) {
        (z.re.to_bits(), z.im.to_bits())
    }

    #[test]
    fn plane_kernels_bitwise_match_interleaved() {
        // Pseudo-random operands; the property under test is bit equality
        // between the split-plane loops and the Complex-valued helpers.
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / (1u64 << 53) as f64 - 0.5
        };
        let n = 13; // odd length exercises any tail handling
        let mut zs: Vec<Vec<C64>> = (0..4)
            .map(|_| (0..n).map(|_| C64::new(next(), next())).collect())
            .collect();
        let mut res: Vec<Vec<f64>> = zs
            .iter()
            .map(|v| v.iter().map(|z| z.re).collect())
            .collect();
        let mut ims: Vec<Vec<f64>> = zs
            .iter()
            .map(|v| v.iter().map(|z| z.im).collect())
            .collect();
        let e: [C64; 4] = [0, 1, 2, 3].map(|_| C64::new(next(), next()));
        let er = e.map(|z| z.re);
        let ei = e.map(|z| z.im);
        let mm: [[C64; 4]; 4] =
            [[0; 4]; 4].map(|row: [i32; 4]| row.map(|_| C64::new(next(), next())));
        let mr = mm.map(|row| row.map(|z| z.re));
        let mi = mm.map(|row| row.map(|z| z.im));
        let d = C64::new(next(), next());

        // mat2 on planes 0/1 vs. interleaved.
        {
            let (lo, hi) = res.split_at_mut(1);
            let (loi, hii) = ims.split_at_mut(1);
            mat2_planes(&er, &ei, &mut lo[0], &mut loi[0], &mut hi[0], &mut hii[0]);
        }
        for j in 0..n {
            let (y0, y1) = mat2_apply(&e, zs[0][j], zs[1][j]);
            assert_eq!(
                bits(C64::new(res[0][j], ims[0][j])),
                bits(y0),
                "mat2 lo {j}"
            );
            assert_eq!(
                bits(C64::new(res[1][j], ims[1][j])),
                bits(y1),
                "mat2 hi {j}"
            );
            zs[0][j] = y0;
            zs[1][j] = y1;
        }

        // mat4 over all four planes vs. interleaved.
        {
            let mut rit = res.iter_mut();
            let (a, b, c, dd) = (
                rit.next().unwrap(),
                rit.next().unwrap(),
                rit.next().unwrap(),
                rit.next().unwrap(),
            );
            let mut iit = ims.iter_mut();
            let (ia, ib, ic, id) = (
                iit.next().unwrap(),
                iit.next().unwrap(),
                iit.next().unwrap(),
                iit.next().unwrap(),
            );
            mat4_planes(&mr, &mi, [a, b, c, dd], [ia, ib, ic, id]);
        }
        for j in 0..n {
            let x = [zs[0][j], zs[1][j], zs[2][j], zs[3][j]];
            let y = mat4_apply(&mm, &x);
            for r in 0..4 {
                assert_eq!(
                    bits(C64::new(res[r][j], ims[r][j])),
                    bits(y[r]),
                    "mat4 {r} {j}"
                );
                zs[r][j] = y[r];
            }
        }

        // cmul / scale / neg.
        cmul_plane(d.re, d.im, &mut res[2], &mut ims[2]);
        scale_plane(0.37, &mut res[3], &mut ims[3]);
        for j in 0..n {
            assert_eq!(
                bits(C64::new(res[2][j], ims[2][j])),
                bits(zs[2][j] * d),
                "cmul {j}"
            );
            assert_eq!(
                bits(C64::new(res[3][j], ims[3][j])),
                bits(zs[3][j].scale(0.37)),
                "scale {j}"
            );
        }
        neg_plane(&mut res[1], &mut ims[1]);
        for j in 0..n {
            assert_eq!(
                bits(C64::new(res[1][j], ims[1][j])),
                bits(-zs[1][j]),
                "neg {j}"
            );
        }
    }

    #[test]
    fn inner_products() {
        let e0 = [C64::one(), C64::zero()];
        let e1 = [C64::zero(), C64::one()];
        assert_eq!(inner(&e0, &e1), C64::zero());
        assert_eq!(inner(&e0, &e0), C64::one());
        // Antilinearity in the first argument.
        let a = [C64::i(), C64::zero()];
        assert_eq!(inner(&a, &e0), C64::new(0.0, -1.0));
    }

    #[test]
    fn fidelity_bounds() {
        let plus = [
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
        ];
        let zero = [C64::one(), C64::zero()];
        assert!((fidelity(&plus, &zero) - 0.5).abs() < 1e-12);
        assert!((fidelity(&plus, &plus) - 1.0).abs() < 1e-12);
    }
}
