//! Complex vector kernels shared by the statevector and MPS backends.

use crate::complex::Complex;
use crate::scalar::Scalar;

/// Sum of squared moduli.
pub fn norm_sqr<T: Scalar>(v: &[Complex<T>]) -> T {
    v.iter().map(|z| z.norm_sqr()).fold(T::ZERO, |a, b| a + b)
}

/// Euclidean norm.
pub fn norm<T: Scalar>(v: &[Complex<T>]) -> T {
    norm_sqr(v).sqrt()
}

/// Normalize in place; returns the original norm. A zero vector is left
/// untouched (returns zero).
pub fn normalize<T: Scalar>(v: &mut [Complex<T>]) -> T {
    let n = norm(v);
    if n > T::ZERO {
        let inv = T::ONE / n;
        for z in v.iter_mut() {
            *z = z.scale(inv);
        }
    }
    n
}

/// `y_r = Σ_c e[2r + c] · x_c` for a 2×2 matrix in row-major entry order
/// `[m00, m01, m10, m11]` — the FMA-form inner step of every 1-qubit gate
/// kernel. The scalar and batch-major statevector paths both call this,
/// which is what makes their amplitudes bitwise identical.
#[inline(always)]
pub fn mat2_apply<T: Scalar>(
    e: &[Complex<T>; 4],
    x0: Complex<T>,
    x1: Complex<T>,
) -> (Complex<T>, Complex<T>) {
    (e[0].mul_add(x0, e[1] * x1), e[2].mul_add(x0, e[3] * x1))
}

/// `y_r = Σ_c m[r][c] · x_c` for a 4×4 matrix — the FMA-form inner step of
/// every dense 2-qubit gate kernel, shared by the scalar and batch-major
/// paths for the same bitwise-identity reason as [`mat2_apply`].
#[inline(always)]
pub fn mat4_apply<T: Scalar>(mm: &[[Complex<T>; 4]; 4], x: &[Complex<T>; 4]) -> [Complex<T>; 4] {
    let mut y = [Complex::zero(); 4];
    for (row, yr) in mm.iter().zip(y.iter_mut()) {
        let acc = row[0].mul_add(x[0], row[1] * x[1]);
        let acc = row[2].mul_add(x[2], acc);
        *yr = row[3].mul_add(x[3], acc);
    }
    y
}

/// Hermitian inner product `⟨a|b⟩ = Σ conj(a_i)·b_i`.
pub fn inner<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> Complex<T> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Complex::zero();
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Fidelity between two pure states: `|⟨a|b⟩|²`.
pub fn fidelity<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> T {
    inner(a, b).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    #[test]
    fn norms() {
        let v = [C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        assert_eq!(norm_sqr(&v), 25.0);
        assert_eq!(norm(&v), 5.0);
    }

    #[test]
    fn normalize_roundtrip() {
        let mut v = vec![C64::new(1.0, 1.0); 8];
        let n = normalize(&mut v);
        assert!((n - 4.0).abs() < 1e-12);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector() {
        let mut v = vec![C64::zero(); 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|z| *z == C64::zero()));
    }

    #[test]
    fn mat_apply_helpers_match_naive_products() {
        let e = [
            C64::new(0.2, 0.3),
            C64::new(-1.0, 0.5),
            C64::new(0.0, -0.7),
            C64::new(1.4, 0.0),
        ];
        let (x0, x1) = (C64::new(0.6, -0.1), C64::new(-0.3, 0.8));
        let (y0, y1) = mat2_apply(&e, x0, x1);
        assert!((y0 - (e[0] * x0 + e[1] * x1)).abs() < 1e-15);
        assert!((y1 - (e[2] * x0 + e[3] * x1)).abs() < 1e-15);

        let mm = [[C64::new(0.1, 0.2); 4], e, e, [C64::i(); 4]];
        let x = [x0, x1, C64::one(), C64::new(0.0, -2.0)];
        let y = mat4_apply(&mm, &x);
        for (r, yr) in y.iter().enumerate() {
            let mut naive = C64::zero();
            for (c, &xc) in x.iter().enumerate() {
                naive += mm[r][c] * xc;
            }
            assert!((*yr - naive).abs() < 1e-14, "row {r}");
        }
    }

    #[test]
    fn inner_products() {
        let e0 = [C64::one(), C64::zero()];
        let e1 = [C64::zero(), C64::one()];
        assert_eq!(inner(&e0, &e1), C64::zero());
        assert_eq!(inner(&e0, &e0), C64::one());
        // Antilinearity in the first argument.
        let a = [C64::i(), C64::zero()];
        assert_eq!(inner(&a, &e0), C64::new(0.0, -1.0));
    }

    #[test]
    fn fidelity_bounds() {
        let plus = [
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
        ];
        let zero = [C64::one(), C64::zero()];
        assert!((fidelity(&plus, &zero) - 0.5).abs() < 1e-12);
        assert!((fidelity(&plus, &plus) - 1.0).abs() < 1e-12);
    }
}
