//! Complex vector kernels shared by the statevector and MPS backends.

use crate::complex::Complex;
use crate::scalar::Scalar;

/// Sum of squared moduli.
pub fn norm_sqr<T: Scalar>(v: &[Complex<T>]) -> T {
    v.iter().map(|z| z.norm_sqr()).fold(T::ZERO, |a, b| a + b)
}

/// Euclidean norm.
pub fn norm<T: Scalar>(v: &[Complex<T>]) -> T {
    norm_sqr(v).sqrt()
}

/// Normalize in place; returns the original norm. A zero vector is left
/// untouched (returns zero).
pub fn normalize<T: Scalar>(v: &mut [Complex<T>]) -> T {
    let n = norm(v);
    if n > T::ZERO {
        let inv = T::ONE / n;
        for z in v.iter_mut() {
            *z = z.scale(inv);
        }
    }
    n
}

/// Hermitian inner product `⟨a|b⟩ = Σ conj(a_i)·b_i`.
pub fn inner<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> Complex<T> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Complex::zero();
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Fidelity between two pure states: `|⟨a|b⟩|²`.
pub fn fidelity<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> T {
    inner(a, b).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    #[test]
    fn norms() {
        let v = [C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        assert_eq!(norm_sqr(&v), 25.0);
        assert_eq!(norm(&v), 5.0);
    }

    #[test]
    fn normalize_roundtrip() {
        let mut v = vec![C64::new(1.0, 1.0); 8];
        let n = normalize(&mut v);
        assert!((n - 4.0).abs() < 1e-12);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector() {
        let mut v = vec![C64::zero(); 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|z| *z == C64::zero()));
    }

    #[test]
    fn inner_products() {
        let e0 = [C64::one(), C64::zero()];
        let e1 = [C64::zero(), C64::one()];
        assert_eq!(inner(&e0, &e1), C64::zero());
        assert_eq!(inner(&e0, &e0), C64::one());
        // Antilinearity in the first argument.
        let a = [C64::i(), C64::zero()];
        assert_eq!(inner(&a, &e0), C64::new(0.0, -1.0));
    }

    #[test]
    fn fidelity_bounds() {
        let plus = [
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
        ];
        let zero = [C64::one(), C64::zero()];
        assert!((fidelity(&plus, &zero) - 0.5).abs() < 1e-12);
        assert!((fidelity(&plus, &plus) - 1.0).abs() < 1e-12);
    }
}
