//! Numerical substrate for the PTSBE workspace.
//!
//! The paper's simulators sit on top of cuBLAS/cuSOLVER-grade dense kernels;
//! this crate provides the CPU equivalents, generic over [`Scalar`]
//! (`f32`/`f64` — the paper's statevectors are complex64, i.e. `f32` pairs,
//! while validation oracles want `f64`):
//!
//! - [`complex::Complex`] — a minimal `#[repr(C)]` complex type whose
//!   `[re, im]` layout matches interleaved GPU statevector buffers;
//! - [`matrix::Matrix`] — dense row-major complex matrices with the gate
//!   algebra (product, dagger, Kronecker, unitarity/Hermiticity checks);
//! - [`gates`] — the standard universal gate zoo, including the √X and √Y
//!   gates of the paper's Fig. 3 magic-state-distillation circuit;
//! - [`qr`] / [`svd`] — Householder QR and one-sided Jacobi SVD, the two
//!   factorizations the MPS backend needs for canonicalization and bond
//!   truncation;
//! - [`random`] — Haar-random unitaries and states for tests and twirling.

pub mod complex;
pub mod gates;
pub mod matrix;
pub mod qr;
pub mod random;
pub mod scalar;
pub mod svd;
pub mod vec_ops;

pub use complex::{cplx_mul_add_parts, cplx_mul_parts, cplx_norm_sqr_parts, Complex, C32, C64};
pub use matrix::Matrix;
pub use scalar::Scalar;

/// Absolute tolerance used by the workspace's "is this numerically zero"
/// checks at `f64` precision.
pub const TOL_F64: f64 = 1e-10;
/// Absolute tolerance at `f32` precision.
pub const TOL_F32: f32 = 1e-4;

/// True when two floats are within `tol`; used pervasively by tests.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
