//! Random matrices, unitaries and states (tests, twirling, workload
//! generators).

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::qr::qr_thin;
use crate::scalar::Scalar;
use ptsbe_rng::Rng;

/// Two iid standard normal variates via Box–Muller.
pub fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    // Avoid u = 0 so the log is finite.
    let u = 1.0 - rng.next_f64();
    let v = rng.next_f64();
    let r = (-2.0 * u.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * v;
    (r * theta.cos(), r * theta.sin())
}

/// Matrix with iid complex standard normal entries.
pub fn random_matrix<T: Scalar>(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix<T> {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let (re, im) = gaussian_pair(rng);
            m[(r, c)] = Complex::from_f64(re, im);
        }
    }
    m
}

/// Haar-distributed random unitary via QR of a Ginibre matrix (the
/// R-diagonal phase fix in [`qr_thin`] makes the distribution exactly Haar).
pub fn haar_unitary<T: Scalar>(n: usize, rng: &mut impl Rng) -> Matrix<T> {
    let a = random_matrix::<T>(n, n, rng);
    qr_thin(&a).q
}

/// Normalized random state vector of the given length.
pub fn random_state<T: Scalar>(len: usize, rng: &mut impl Rng) -> Vec<Complex<T>> {
    let mut v: Vec<Complex<T>> = (0..len)
        .map(|_| {
            let (re, im) = gaussian_pair(rng);
            Complex::from_f64(re, im)
        })
        .collect();
    let norm = crate::vec_ops::norm(&v);
    let inv = T::ONE / norm;
    for z in &mut v {
        *z = z.scale(inv);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbe_rng::PhiloxRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = PhiloxRng::new(61, 0);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sum2 / (2.0 * n as f64);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = PhiloxRng::new(62, 0);
        for n in [1usize, 2, 4, 8] {
            let q = haar_unitary::<f64>(n, &mut rng);
            assert!(q.is_unitary(1e-10), "n = {n}");
        }
    }

    #[test]
    fn random_states_normalized() {
        let mut rng = PhiloxRng::new(63, 0);
        for len in [1usize, 2, 16, 1024] {
            let v = random_state::<f64>(len, &mut rng);
            let n = crate::vec_ops::norm(&v);
            assert!((n - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn unitaries_differ_across_draws() {
        let mut rng = PhiloxRng::new(64, 0);
        let a = haar_unitary::<f64>(4, &mut rng);
        let b = haar_unitary::<f64>(4, &mut rng);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }
}
