//! One-sided Jacobi SVD for complex matrices.
//!
//! The MPS backend truncates bond dimensions by SVD after every two-qubit
//! gate — exactly the kernel cuTensorNet delegates to cuSOLVER. One-sided
//! Jacobi is chosen for its simplicity, unconditional numerical robustness,
//! and high relative accuracy on small singular values (which matters when
//! deciding what entanglement to truncate).

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Full SVD `A = U · diag(S) · Vh` with `U: m×k`, `S: k` (descending,
/// non-negative), `Vh: k×n`, `k = min(m, n)`.
pub struct Svd<T: Scalar> {
    /// Left singular vectors (columns), `m×k`.
    pub u: Matrix<T>,
    /// Singular values, descending.
    pub s: Vec<T>,
    /// Right singular vectors (rows, already conjugate-transposed), `k×n`.
    pub vh: Matrix<T>,
}

/// Maximum number of Jacobi sweeps before declaring convergence failure.
const MAX_SWEEPS: usize = 60;

/// Compute the thin SVD of `a`.
///
/// # Panics
/// Panics if the iteration fails to converge within [`MAX_SWEEPS`] sweeps
/// (practically unreachable for the well-scaled matrices produced by gate
/// applications).
pub fn svd<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    if m >= n {
        svd_tall(a)
    } else {
        // A = U S Vh  <=>  A† = V S U†.
        let Svd { u, s, vh } = svd_tall(&a.dagger());
        Svd {
            u: vh.dagger(),
            s,
            vh: u.dagger(),
        }
    }
}

/// One-sided Jacobi on a tall (m ≥ n) matrix: orthogonalize columns of a
/// working copy G = A·V by plane rotations, accumulating V.
fn svd_tall<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(m >= n);

    // Column-major working storage for cache-friendly column ops.
    let mut g: Vec<Vec<Complex<T>>> = (0..n)
        .map(|c| (0..m).map(|r| a[(r, c)]).collect())
        .collect();
    let mut v = Matrix::<T>::identity(n);

    if n > 1 {
        let mut converged = false;
        let mut last_off = T::ZERO;
        for _sweep in 0..MAX_SWEEPS {
            let mut off_max = T::ZERO;
            // Columns whose norm is negligible against the dominant one
            // carry numerically-zero singular values; rotating against
            // them only churns round-off, so they count as converged.
            let scale = g
                .iter()
                .map(|col| col_norm_sqr(col))
                .fold(T::ZERO, Scalar::max);
            let floor = scale * T::eps() * T::eps() * T::from_f64(16.0);
            for i in 0..n - 1 {
                for j in i + 1..n {
                    let aii = col_norm_sqr(&g[i]);
                    let ajj = col_norm_sqr(&g[j]);
                    if aii <= floor || ajj <= floor {
                        continue;
                    }
                    let aij = col_inner(&g[i], &g[j]);
                    let mag = aij.abs();
                    let rel = mag / (aii.sqrt() * ajj.sqrt());
                    off_max = off_max.max(rel);
                    if rel <= T::eps() {
                        continue;
                    }
                    // Complex Jacobi rotation annihilating g_i† g_j.
                    let phase = aij.scale(T::ONE / mag); // e^{i phi}
                    let tau = (ajj - aii) / (T::TWO * mag);
                    let t = {
                        let sign = if tau >= T::ZERO { T::ONE } else { -T::ONE };
                        sign / (tau.abs() + (T::ONE + tau * tau).sqrt())
                    };
                    let c = T::ONE / (T::ONE + t * t).sqrt();
                    let s = c * t;

                    rotate_cols(&mut g, i, j, c, s, phase);
                    rotate_matrix_cols(&mut v, i, j, c, s, phase);
                }
            }
            if off_max <= T::from_f64(1e3) * T::eps() {
                converged = true;
                break;
            }
            last_off = off_max;
        }
        // Accept near-converged results: residual rotations below √eps
        // perturb singular values at relative O(eps) — harmless for the
        // truncation decisions this SVD feeds.
        assert!(
            converged || last_off <= T::eps().sqrt(),
            "svd: Jacobi iteration failed to converge (residual {last_off})"
        );
    }

    // Singular values and left vectors.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<T> = g.iter().map(|col| col_norm_sqr(col).sqrt()).collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vh = Matrix::zeros(n, n);
    for (slot, &src) in order.iter().enumerate() {
        let sigma = norms[src];
        s.push(sigma);
        if sigma > T::ZERO {
            let inv = T::ONE / sigma;
            for r in 0..m {
                u[(r, slot)] = g[src][r].scale(inv);
            }
        }
        for c in 0..n {
            vh[(slot, c)] = v[(c, src)].conj();
        }
    }
    Svd { u, s, vh }
}

#[inline]
fn col_norm_sqr<T: Scalar>(col: &[Complex<T>]) -> T {
    col.iter().map(|z| z.norm_sqr()).fold(T::ZERO, |a, b| a + b)
}

#[inline]
fn col_inner<T: Scalar>(a: &[Complex<T>], b: &[Complex<T>]) -> Complex<T> {
    let mut acc = Complex::zero();
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Apply the rotation `[gi, gj] <- [gi, gj] · J` with
/// `J = [[c, s·e^{iφ}], [-s·e^{-iφ}, c]]` — chosen so the new columns have
/// zero inner product.
fn rotate_cols<T: Scalar>(
    g: &mut [Vec<Complex<T>>],
    i: usize,
    j: usize,
    c: T,
    s: T,
    phase: Complex<T>,
) {
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    let (left, right) = g.split_at_mut(hi);
    let (gi, gj) = (&mut left[lo], &mut right[0]);
    let sp = phase.scale(s);
    let spc = phase.conj().scale(s);
    for (x, y) in gi.iter_mut().zip(gj.iter_mut()) {
        let xi = *x;
        let yj = *y;
        *x = xi.scale(c) - yj * spc;
        *y = xi * sp + yj.scale(c);
    }
}

/// The same rotation applied to columns `i, j` of an accumulator matrix.
fn rotate_matrix_cols<T: Scalar>(
    v: &mut Matrix<T>,
    i: usize,
    j: usize,
    c: T,
    s: T,
    phase: Complex<T>,
) {
    let sp = phase.scale(s);
    let spc = phase.conj().scale(s);
    for r in 0..v.rows() {
        let xi = v[(r, i)];
        let yj = v[(r, j)];
        v[(r, i)] = xi.scale(c) - yj * spc;
        v[(r, j)] = xi * sp + yj.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{haar_unitary, random_matrix};
    use ptsbe_rng::PhiloxRng;

    fn check_svd(a: &Matrix<f64>, tol: f64) {
        let Svd { u, s, vh } = svd(a);
        let k = a.rows().min(a.cols());
        assert_eq!(u.cols(), k);
        assert_eq!(s.len(), k);
        assert_eq!(vh.rows(), k);
        // Descending non-negative.
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "singular values not sorted: {s:?}");
        }
        assert!(s.iter().all(|&x| x >= 0.0));
        // Reconstruction U diag(S) Vh == A.
        let mut usv = Matrix::zeros(a.rows(), a.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let mut acc = Complex::zero();
                for (kk, &sk) in s.iter().enumerate() {
                    acc += u[(r, kk)].scale(sk) * vh[(kk, c)];
                }
                usv[(r, c)] = acc;
            }
        }
        assert!(
            usv.max_abs_diff(a) < tol,
            "A != U S Vh (diff {})",
            usv.max_abs_diff(a)
        );
        // U, V isometries on the non-null space.
        let utu = u.dagger().mul_ref(&u);
        let vvt = vh.mul_ref(&vh.dagger());
        for i in 0..k {
            if s[i] > 1e-9 {
                assert!((utu[(i, i)].re - 1.0).abs() < tol);
                assert!((vvt[(i, i)].re - 1.0).abs() < tol);
            }
        }
    }

    #[test]
    fn random_square() {
        let mut rng = PhiloxRng::new(51, 0);
        for n in [1usize, 2, 3, 4, 8, 12] {
            let a = random_matrix::<f64>(n, n, &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn random_tall_and_wide() {
        let mut rng = PhiloxRng::new(52, 0);
        for (m, n) in [(6usize, 2usize), (9, 4), (2, 6), (4, 9), (16, 1), (1, 16)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn unitary_has_unit_singular_values() {
        let mut rng = PhiloxRng::new(53, 0);
        let q = haar_unitary::<f64>(6, &mut rng);
        let Svd { s, .. } = svd(&q);
        for &sv in &s {
            assert!((sv - 1.0).abs() < 1e-10, "sv {sv}");
        }
    }

    #[test]
    fn known_diagonal() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        a[(0, 0)] = Complex::from_f64(0.5, 0.0);
        a[(1, 1)] = Complex::from_f64(-2.0, 0.0);
        a[(2, 2)] = Complex::from_f64(0.0, 1.0);
        let Svd { s, .. } = svd(&a);
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product => rank 1.
        let mut a = Matrix::<f64>::zeros(4, 3);
        for r in 0..4 {
            for c in 0..3 {
                a[(r, c)] = Complex::from_f64((r + 1) as f64 * (c + 1) as f64, 0.0);
            }
        }
        let Svd { s, .. } = svd(&a);
        assert!(s[0] > 1.0);
        assert!(
            s[1].abs() < 1e-9,
            "rank-1 matrix should have one nonzero sv"
        );
        assert!(s[2].abs() < 1e-9);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(3, 2);
        let Svd { s, .. } = svd(&a);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn f32_precision() {
        let mut rng = PhiloxRng::new(54, 0);
        let a64 = random_matrix::<f64>(5, 5, &mut rng);
        let a32 = Matrix::<f32>::from_f64_matrix(&a64);
        let Svd { u, s, vh } = svd(&a32);
        let mut usv = Matrix::<f32>::zeros(5, 5);
        for r in 0..5 {
            for c in 0..5 {
                let mut acc = Complex::zero();
                for (kk, &sk) in s.iter().enumerate() {
                    acc += u[(r, kk)].scale(sk) * vh[(kk, c)];
                }
                usv[(r, c)] = acc;
            }
        }
        assert!(usv.max_abs_diff(&a32) < 1e-4);
    }

    #[test]
    fn frobenius_norm_preserved() {
        let mut rng = PhiloxRng::new(55, 0);
        let a = random_matrix::<f64>(7, 5, &mut rng);
        let Svd { s, .. } = svd(&a);
        let from_s: f64 = s.iter().map(|&x| x * x).sum::<f64>().sqrt();
        assert!((from_s - a.frobenius_norm()).abs() < 1e-9);
    }
}
