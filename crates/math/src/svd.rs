//! One-sided Jacobi SVD for complex matrices.
//!
//! The MPS backend truncates bond dimensions by SVD after every two-qubit
//! gate — exactly the kernel cuTensorNet delegates to cuSOLVER. One-sided
//! Jacobi is chosen for its simplicity, unconditional numerical robustness,
//! and high relative accuracy on small singular values (which matters when
//! deciding what entanglement to truncate).

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Full SVD `A = U · diag(S) · Vh` with `U: m×k`, `S: k` (descending,
/// non-negative), `Vh: k×n`, `k = min(m, n)`.
pub struct Svd<T: Scalar> {
    /// Left singular vectors (columns), `m×k`.
    pub u: Matrix<T>,
    /// Singular values, descending.
    pub s: Vec<T>,
    /// Right singular vectors (rows, already conjugate-transposed), `k×n`.
    pub vh: Matrix<T>,
}

/// Maximum number of Jacobi sweeps before declaring convergence failure.
const MAX_SWEEPS: usize = 60;

/// Aspect ratio (max dim / min dim) at which [`svd_qr`] switches to the
/// QR-first reduction. One Householder pass costs ~m·n² flops while each
/// Jacobi sweep on the unreduced matrix costs ~m·n²; shrinking the long
/// side to `min(m, n)` before iterating pays for itself as soon as the
/// matrix is meaningfully rectangular.
const QR_FIRST_ASPECT: usize = 2;

/// Minimum `min(m, n)` at which [`svd_qr`] routes square and
/// near-square matrices through the rank-revealing (column-pivoted) QR
/// front end. Below this the Jacobi iteration is already cheap and the
/// pivoted pass would only add overhead.
const QRCP_MIN_DIM: usize = 64;

/// Thin SVD with a shape-aware front end. Matrices whose small side is
/// at least [`QRCP_MIN_DIM`] go through the rank-revealing,
/// doubly-preconditioned route ([`svd_qrcp`]) regardless of aspect —
/// the dominant win on MPS two-site updates. Smaller matrices with
/// aspect ≥ [`QR_FIRST_ASPECT`] factor the long dimension away with one
/// Householder QR pass and iterate only on the `k×k` core
/// (`k = min(m, n)`); small near-square inputs fall through to [`svd`]
/// untouched (bitwise identical).
///
/// Exact same contract as [`svd`]; results agree up to floating-point
/// round-off (not bitwise — the rotations act on a different matrix).
///
/// # Panics
/// Same convergence panic as [`svd`].
pub fn svd_qr<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    if m.min(n) >= QRCP_MIN_DIM {
        // Large matrices of any aspect: the rank-revealing front end
        // subsumes the plain QR-first reduction (its pivoted pass runs
        // on cache-friendly column-major storage, unlike `qr_thin`) and
        // additionally shrinks the iteration to the numerical rank.
        svd_qrcp(a)
    } else if n > 0 && m >= QR_FIRST_ASPECT * n {
        // A = Q R (Q: m×n isometry, R: n×n) ⇒ svd(R) = U S Vh gives
        // A = (Q U) S Vh.
        let qr = crate::qr::qr_thin(a);
        let core = svd(&qr.r);
        Svd {
            u: qr.q.mul_ref(&core.u),
            s: core.s,
            vh: core.vh,
        }
    } else if m > 0 && n >= QR_FIRST_ASPECT * m {
        // A† = Q R (Q: n×m, R: m×m) ⇒ A = R† Q†; svd(R†) = U S W gives
        // A = U S (W Q†).
        let qr = crate::qr::qr_thin(&a.dagger());
        let core = svd(&qr.r.dagger());
        Svd {
            u: core.u,
            s: core.s,
            vh: core.vh.mul_ref(&qr.q.dagger()),
        }
    } else {
        svd(a)
    }
}

/// Rank-revealing, doubly-preconditioned SVD for large matrices
/// (Drmač–Veselić): column-pivoted QR concentrates the mass in the
/// leading rows of `R`, the provably negligible trailing rows are
/// dropped (perturbation ≤ `16·eps·‖A‖_F`, i.e. `O(eps)` relative —
/// below the Jacobi convergence tolerance itself), and a *second*
/// pivoted QR pass of `R_top†` turns the remaining `rank×n` block into
/// a square triangular factor whose columns are already nearly
/// orthogonal — one-sided Jacobi then converges in a small handful of
/// sweeps instead of the ~log(1/eps) it needs on raw near-square input.
/// MPS two-site matrices are the motivating workload: their
/// `(2χ)×(2χ)` updates dominate encoded-state preparation.
///
/// Singular values below the drop threshold come back as exact `0.0`
/// with zero singular-vector columns — the same convention [`svd`] uses
/// for exactly-zero singular values.
fn svd_qrcp<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    if m < n {
        // A = U S Vh  <=>  A† = V S U†; one dagger keeps the tall-case
        // logic below free of aspect bookkeeping.
        let Svd { u, s, vh } = svd_qrcp(&a.dagger());
        return Svd {
            u: vh.dagger(),
            s,
            vh: u.dagger(),
        };
    }
    let k = n;
    let cp = crate::qr::qr_cp(a);

    // Numerical rank: keep the smallest leading row block of R whose
    // dropped suffix carries ≤ (16·eps)² of the total Frobenius mass.
    // Bounding the *actual* dropped mass (not the pivot diagonal, which
    // can underestimate on Kahan-style matrices) keeps this safe.
    let row_mass: Vec<T> = (0..k)
        .map(|i| {
            let mut acc = T::ZERO;
            for c in i..n {
                acc += cp.r[(i, c)].norm_sqr();
            }
            acc
        })
        .collect();
    let total: T = row_mass.iter().fold(T::ZERO, |a, &b| a + b);
    let tol_mass = total * T::eps() * T::eps() * T::from_f64(256.0);
    let mut rank = k;
    let mut suffix = T::ZERO;
    for i in (0..k).rev() {
        if suffix + row_mass[i] > tol_mass {
            break;
        }
        suffix += row_mass[i];
        rank = i;
    }
    if rank == 0 {
        return Svd {
            u: Matrix::zeros(m, k),
            s: vec![T::ZERO; k],
            vh: Matrix::zeros(k, n),
        };
    }

    let mut r_top = Matrix::zeros(rank, n);
    for i in 0..rank {
        for c in i..n {
            r_top[(i, c)] = cp.r[(i, c)];
        }
    }

    // Second preconditioning pass: R_top† · P₂ = Q₂ · R₂ gives
    // R_top[perm₂[j], :] = (Q₂ · R₂[:, j])†, so with the small SVD
    // R₂† = U₃ S V₃h the pieces compose as
    // R_top = Π₂ U₃ S (V₃h Q₂†),  Π₂[perm₂[j], j] = 1.
    // The core is full-rank square by construction (the suffix-mass cut
    // above trimmed the negligible directions), so the cheaper no-V
    // Jacobi variant applies.
    let cp2 = crate::qr::qr_cp(&r_top.dagger());
    let core = svd_tall_core(&cp2.r.dagger(), false);

    // A ≈ (Q₁ Π₂ U₃) S (V₃h Q₂† P₁†), padded back to the k-value
    // contract.
    let mut u_core = Matrix::zeros(rank, rank);
    for j in 0..rank {
        for c in 0..rank {
            u_core[(cp2.perm[j], c)] = core.u[(j, c)];
        }
    }
    let u_lead = cp.apply_q(&u_core);
    let mut u = Matrix::zeros(m, k);
    for r in 0..m {
        for c in 0..rank {
            u[(r, c)] = u_lead[(r, c)];
        }
    }
    let mut s = core.s;
    s.resize(k, T::ZERO);
    // Vh_core = (Q₂ · V₃h†)†, its columns un-permuted through P₁.
    let q2v = cp2.apply_q(&core.vh.dagger());
    let mut vh = Matrix::zeros(k, n);
    for i in 0..rank {
        for c in 0..n {
            vh[(i, cp.perm[c])] = q2v[(c, i)].conj();
        }
    }
    Svd { u, s, vh }
}

/// Compute the thin SVD of `a`.
///
/// # Panics
/// Panics if the iteration fails to converge within [`MAX_SWEEPS`] sweeps
/// (practically unreachable for the well-scaled matrices produced by gate
/// applications).
pub fn svd<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    if m >= n {
        svd_tall(a)
    } else {
        // A = U S Vh  <=>  A† = V S U†.
        let Svd { u, s, vh } = svd_tall(&a.dagger());
        Svd {
            u: vh.dagger(),
            s,
            vh: u.dagger(),
        }
    }
}

/// One-sided Jacobi on a tall (m ≥ n) matrix: orthogonalize columns of a
/// working copy G = A·V by plane rotations, accumulating V.
///
/// G and V live as split re/im column planes (the structure-of-arrays
/// idiom of [`crate::vec_ops`]): the three O(m) kernels on the pair loop
/// — hermitian inner product, plane rotation, norm accumulation — become
/// shuffle-free mul/`mul_add` lane loops with [`LANES`] independent
/// accumulators, which breaks the reduction dependency chain and lets
/// the compiler pack them into SIMD FMAs. Lane-blocked reductions order
/// the sums differently from a sequential loop, so results move at
/// O(eps) relative to the old interleaved kernels — within the
/// tolerance every consumer (truncation decisions, canonicalization)
/// already budgets for the iteration itself.
fn svd_tall<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    svd_tall_core(a, true)
}

/// The Jacobi driver behind [`svd_tall`]. With `accumulate_v` the right
/// factor is accumulated rotation-by-rotation (full [`svd`] contract:
/// `Vh` rows stay unitary even on zero singular values). Without it the
/// V rotations — ~40% of the per-rotation work on square input — are
/// skipped and `Vh = S⁻¹·U†·A` is recovered with one small matmul at
/// the end; rows for exactly-zero singular values come back zero, so
/// this variant is reserved for callers that feed full-rank input (the
/// preconditioned core of [`svd_qrcp`]).
fn svd_tall_core<T: Scalar>(a: &Matrix<T>, accumulate_v: bool) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(m >= n);

    // Split-plane column-major working storage.
    let mut gre: Vec<Vec<T>> = Vec::with_capacity(n);
    let mut gim: Vec<Vec<T>> = Vec::with_capacity(n);
    for c in 0..n {
        let mut re = Vec::with_capacity(m);
        let mut im = Vec::with_capacity(m);
        for r in 0..m {
            let z = a[(r, c)];
            re.push(z.re);
            im.push(z.im);
        }
        gre.push(re);
        gim.push(im);
    }
    // Pristine copy of A's planes for the final `S⁻¹·U†·A` recovery.
    let (are, aim) = if accumulate_v {
        (Vec::new(), Vec::new())
    } else {
        (gre.clone(), gim.clone())
    };
    // V accumulated as split-plane columns too: rotations touch two
    // contiguous columns instead of striding a row-major matrix.
    let nv = if accumulate_v { n } else { 0 };
    let mut vre: Vec<Vec<T>> = (0..nv)
        .map(|c| {
            let mut col = vec![T::ZERO; n];
            col[c] = T::ONE;
            col
        })
        .collect();
    let mut vim: Vec<Vec<T>> = vec![vec![T::ZERO; n]; nv];
    // Cached column norms², maintained across rotations: each rotation
    // re-accumulates its two columns' norms from the freshly written
    // values, so the cache never drifts from a recomputed pass.
    let mut norms: Vec<T> = (0..n).map(|c| norm_sqr_planes(&gre[c], &gim[c])).collect();

    if n > 1 {
        let mut converged = false;
        let mut last_off = T::ZERO;
        for _sweep in 0..MAX_SWEEPS {
            let mut off_max = T::ZERO;
            // Columns whose norm is negligible against the dominant one
            // carry numerically-zero singular values; rotating against
            // them only churns round-off, so they count as converged.
            let scale = norms.iter().copied().fold(T::ZERO, Scalar::max);
            let floor = scale * T::eps() * T::eps() * T::from_f64(16.0);
            for i in 0..n - 1 {
                for j in i + 1..n {
                    let aii = norms[i];
                    let ajj = norms[j];
                    if aii <= floor || ajj <= floor {
                        continue;
                    }
                    let aij = inner_planes(&gre[i], &gim[i], &gre[j], &gim[j]);
                    let mag = aij.abs();
                    let rel = mag / (aii.sqrt() * ajj.sqrt());
                    off_max = off_max.max(rel);
                    if rel <= T::eps() {
                        continue;
                    }
                    // Complex Jacobi rotation annihilating g_i† g_j.
                    let phase = aij.scale(T::ONE / mag); // e^{i phi}
                    let tau = (ajj - aii) / (T::TWO * mag);
                    let t = {
                        let sign = if tau >= T::ZERO { T::ONE } else { -T::ONE };
                        sign / (tau.abs() + (T::ONE + tau * tau).sqrt())
                    };
                    let c = T::ONE / (T::ONE + t * t).sqrt();
                    let s = c * t;
                    let sp = phase.scale(s);

                    let (ir, jr) = pair_mut(&mut gre, i, j);
                    let (ii, ji) = pair_mut(&mut gim, i, j);
                    let (ni, nj) = rotate_planes(ir, ii, jr, ji, c, sp.re, sp.im);
                    norms[i] = ni;
                    norms[j] = nj;
                    if accumulate_v {
                        let (ir, jr) = pair_mut(&mut vre, i, j);
                        let (ii, ji) = pair_mut(&mut vim, i, j);
                        rotate_planes(ir, ii, jr, ji, c, sp.re, sp.im);
                    }
                }
            }
            if off_max <= T::from_f64(1e3) * T::eps() {
                converged = true;
                break;
            }
            last_off = off_max;
        }
        // Accept near-converged results: residual rotations below √eps
        // perturb singular values at relative O(eps) — harmless for the
        // truncation decisions this SVD feeds.
        assert!(
            converged || last_off <= T::eps().sqrt(),
            "svd: Jacobi iteration failed to converge (residual {last_off})"
        );
    }

    // Singular values and left vectors (cached norms² are what a fresh
    // pass over the planes would recompute).
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<T> = norms.into_iter().map(Scalar::sqrt).collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vh = Matrix::zeros(n, n);
    for (slot, &src) in order.iter().enumerate() {
        let sigma = norms[src];
        s.push(sigma);
        if sigma > T::ZERO {
            let inv = T::ONE / sigma;
            for r in 0..m {
                u[(r, slot)] = Complex::new(gre[src][r], gim[src][r]).scale(inv);
            }
        }
        if accumulate_v {
            for c in 0..n {
                vh[(slot, c)] = Complex::new(vre[src][c], -vim[src][c]);
            }
        } else if sigma > T::ZERO {
            // vh_slot = u_slot†·A / σ = g_src†·A / σ².
            let inv_sq = (T::ONE / sigma) * (T::ONE / sigma);
            for c in 0..n {
                vh[(slot, c)] = inner_planes(&gre[src], &gim[src], &are[c], &aim[c]).scale(inv_sq);
            }
        }
    }
    Svd { u, s, vh }
}

/// Lane width of the blocked reductions: fills an AVX-512 `f64` register;
/// narrower ISAs split the block into as many registers as they need.
const LANES: usize = 8;

/// Deterministic tree reduction of one lane block.
#[inline(always)]
fn reduce_lanes<T: Scalar>(acc: [T; LANES]) -> T {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Mutable references to columns `i < j` of a column collection.
#[inline]
fn pair_mut<T>(cols: &mut [Vec<T>], i: usize, j: usize) -> (&mut [T], &mut [T]) {
    debug_assert!(i < j);
    let (left, right) = cols.split_at_mut(j);
    (&mut left[i], &mut right[0])
}

/// `Σ re² + im²` with lane-blocked accumulation.
fn norm_sqr_planes<T: Scalar>(re: &[T], im: &[T]) -> T {
    let mut acc = [T::ZERO; LANES];
    let mut rc = re.chunks_exact(LANES);
    let mut ic = im.chunks_exact(LANES);
    for (r, i) in (&mut rc).zip(&mut ic) {
        for l in 0..LANES {
            acc[l] = r[l].mul_add(r[l], i[l].mul_add(i[l], acc[l]));
        }
    }
    let mut tail = T::ZERO;
    for (r, i) in rc.remainder().iter().zip(ic.remainder()) {
        tail = r.mul_add(*r, i.mul_add(*i, tail));
    }
    reduce_lanes(acc) + tail
}

/// Hermitian inner product `Σ conj(x)·y` over split planes, lane-blocked.
fn inner_planes<T: Scalar>(xr: &[T], xi: &[T], yr: &[T], yi: &[T]) -> Complex<T> {
    let mut ar = [T::ZERO; LANES];
    let mut ai = [T::ZERO; LANES];
    let mut xrc = xr.chunks_exact(LANES);
    let mut xic = xi.chunks_exact(LANES);
    let mut yrc = yr.chunks_exact(LANES);
    let mut yic = yi.chunks_exact(LANES);
    for (((a, b), p), q) in (&mut xrc).zip(&mut xic).zip(&mut yrc).zip(&mut yic) {
        for l in 0..LANES {
            // conj(x)·y = (xr·yr + xi·yi) + i(xr·yi − xi·yr)
            ar[l] = a[l].mul_add(p[l], b[l].mul_add(q[l], ar[l]));
            ai[l] = b[l].mul_add(-p[l], a[l].mul_add(q[l], ai[l]));
        }
    }
    let mut tr = T::ZERO;
    let mut ti = T::ZERO;
    for (((a, b), p), q) in xrc
        .remainder()
        .iter()
        .zip(xic.remainder())
        .zip(yrc.remainder())
        .zip(yic.remainder())
    {
        tr = a.mul_add(*p, b.mul_add(*q, tr));
        ti = b.mul_add(-*p, a.mul_add(*q, ti));
    }
    Complex::new(reduce_lanes(ar) + tr, reduce_lanes(ai) + ti)
}

/// Jacobi rotation of two split-plane columns,
/// `x' = c·x − conj(sp)·y`, `y' = sp·x + c·y` (with `sp = s·e^{iφ}`),
/// returning the rotated columns' norms² accumulated from the freshly
/// written values (lane-blocked).
fn rotate_planes<T: Scalar>(
    xr: &mut [T],
    xi: &mut [T],
    yr: &mut [T],
    yi: &mut [T],
    c: T,
    spr: T,
    spi: T,
) -> (T, T) {
    #[inline(always)]
    fn step<T: Scalar>(a: T, b: T, p: T, q: T, c: T, spr: T, spi: T) -> (T, T, T, T) {
        // conj(sp)·y = (spr·p + spi·q) + i(spr·q − spi·p)
        let xnr = c.mul_add(a, -spr.mul_add(p, spi * q));
        let xni = c.mul_add(b, -spr.mul_add(q, -(spi * p)));
        // sp·x = (spr·a − spi·b) + i(spr·b + spi·a)
        let ynr = c.mul_add(p, spr.mul_add(a, -(spi * b)));
        let yni = c.mul_add(q, spr.mul_add(b, spi * a));
        (xnr, xni, ynr, yni)
    }
    let mut nx = [T::ZERO; LANES];
    let mut ny = [T::ZERO; LANES];
    let mut xrc = xr.chunks_exact_mut(LANES);
    let mut xic = xi.chunks_exact_mut(LANES);
    let mut yrc = yr.chunks_exact_mut(LANES);
    let mut yic = yi.chunks_exact_mut(LANES);
    for (((a, b), p), q) in (&mut xrc).zip(&mut xic).zip(&mut yrc).zip(&mut yic) {
        for l in 0..LANES {
            let (xnr, xni, ynr, yni) = step(a[l], b[l], p[l], q[l], c, spr, spi);
            nx[l] = xnr.mul_add(xnr, xni.mul_add(xni, nx[l]));
            ny[l] = ynr.mul_add(ynr, yni.mul_add(yni, ny[l]));
            a[l] = xnr;
            b[l] = xni;
            p[l] = ynr;
            q[l] = yni;
        }
    }
    let mut tx = T::ZERO;
    let mut ty = T::ZERO;
    for (((a, b), p), q) in xrc
        .into_remainder()
        .iter_mut()
        .zip(xic.into_remainder())
        .zip(yrc.into_remainder())
        .zip(yic.into_remainder())
    {
        let (xnr, xni, ynr, yni) = step(*a, *b, *p, *q, c, spr, spi);
        tx = xnr.mul_add(xnr, xni.mul_add(xni, tx));
        ty = ynr.mul_add(ynr, yni.mul_add(yni, ty));
        *a = xnr;
        *b = xni;
        *p = ynr;
        *q = yni;
    }
    (reduce_lanes(nx) + tx, reduce_lanes(ny) + ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{haar_unitary, random_matrix};
    use ptsbe_rng::PhiloxRng;

    fn check_svd(a: &Matrix<f64>, tol: f64) {
        let Svd { u, s, vh } = svd(a);
        let k = a.rows().min(a.cols());
        assert_eq!(u.cols(), k);
        assert_eq!(s.len(), k);
        assert_eq!(vh.rows(), k);
        // Descending non-negative.
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "singular values not sorted: {s:?}");
        }
        assert!(s.iter().all(|&x| x >= 0.0));
        // Reconstruction U diag(S) Vh == A.
        let mut usv = Matrix::zeros(a.rows(), a.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let mut acc = Complex::zero();
                for (kk, &sk) in s.iter().enumerate() {
                    acc += u[(r, kk)].scale(sk) * vh[(kk, c)];
                }
                usv[(r, c)] = acc;
            }
        }
        assert!(
            usv.max_abs_diff(a) < tol,
            "A != U S Vh (diff {})",
            usv.max_abs_diff(a)
        );
        // U, V isometries on the non-null space.
        let utu = u.dagger().mul_ref(&u);
        let vvt = vh.mul_ref(&vh.dagger());
        for i in 0..k {
            if s[i] > 1e-9 {
                assert!((utu[(i, i)].re - 1.0).abs() < tol);
                assert!((vvt[(i, i)].re - 1.0).abs() < tol);
            }
        }
    }

    #[test]
    fn random_square() {
        let mut rng = PhiloxRng::new(51, 0);
        for n in [1usize, 2, 3, 4, 8, 12] {
            let a = random_matrix::<f64>(n, n, &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn random_tall_and_wide() {
        let mut rng = PhiloxRng::new(52, 0);
        for (m, n) in [(6usize, 2usize), (9, 4), (2, 6), (4, 9), (16, 1), (1, 16)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn unitary_has_unit_singular_values() {
        let mut rng = PhiloxRng::new(53, 0);
        let q = haar_unitary::<f64>(6, &mut rng);
        let Svd { s, .. } = svd(&q);
        for &sv in &s {
            assert!((sv - 1.0).abs() < 1e-10, "sv {sv}");
        }
    }

    #[test]
    fn known_diagonal() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        a[(0, 0)] = Complex::from_f64(0.5, 0.0);
        a[(1, 1)] = Complex::from_f64(-2.0, 0.0);
        a[(2, 2)] = Complex::from_f64(0.0, 1.0);
        let Svd { s, .. } = svd(&a);
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product => rank 1.
        let mut a = Matrix::<f64>::zeros(4, 3);
        for r in 0..4 {
            for c in 0..3 {
                a[(r, c)] = Complex::from_f64((r + 1) as f64 * (c + 1) as f64, 0.0);
            }
        }
        let Svd { s, .. } = svd(&a);
        assert!(s[0] > 1.0);
        assert!(
            s[1].abs() < 1e-9,
            "rank-1 matrix should have one nonzero sv"
        );
        assert!(s[2].abs() < 1e-9);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(3, 2);
        let Svd { s, .. } = svd(&a);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn f32_precision() {
        let mut rng = PhiloxRng::new(54, 0);
        let a64 = random_matrix::<f64>(5, 5, &mut rng);
        let a32 = Matrix::<f32>::from_f64_matrix(&a64);
        let Svd { u, s, vh } = svd(&a32);
        let mut usv = Matrix::<f32>::zeros(5, 5);
        for r in 0..5 {
            for c in 0..5 {
                let mut acc = Complex::zero();
                for (kk, &sk) in s.iter().enumerate() {
                    acc += u[(r, kk)].scale(sk) * vh[(kk, c)];
                }
                usv[(r, c)] = acc;
            }
        }
        assert!(usv.max_abs_diff(&a32) < 1e-4);
    }

    fn check_svd_qr(a: &Matrix<f64>, tol: f64) {
        let Svd { u, s, vh } = svd_qr(a);
        let k = a.rows().min(a.cols());
        assert_eq!(u.cols(), k);
        assert_eq!(s.len(), k);
        assert_eq!(vh.rows(), k);
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "singular values not sorted: {s:?}");
        }
        let mut usv = Matrix::zeros(a.rows(), a.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let mut acc = Complex::zero();
                for (kk, &sk) in s.iter().enumerate() {
                    acc += u[(r, kk)].scale(sk) * vh[(kk, c)];
                }
                usv[(r, c)] = acc;
            }
        }
        assert!(
            usv.max_abs_diff(a) < tol,
            "A != U S Vh via svd_qr (diff {})",
            usv.max_abs_diff(a)
        );
        let utu = u.dagger().mul_ref(&u);
        let vvt = vh.mul_ref(&vh.dagger());
        for i in 0..k {
            if s[i] > 1e-9 {
                assert!((utu[(i, i)].re - 1.0).abs() < tol);
                assert!((vvt[(i, i)].re - 1.0).abs() < tol);
            }
        }
    }

    #[test]
    fn qr_first_tall_and_wide() {
        let mut rng = PhiloxRng::new(56, 0);
        for (m, n) in [
            (8usize, 2usize),
            (16, 4),
            (9, 3),
            (2, 8),
            (4, 16),
            (3, 9),
            (32, 1),
            (1, 32),
        ] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            check_svd_qr(&a, 1e-9);
        }
    }

    #[test]
    fn qr_first_matches_plain_singular_values() {
        let mut rng = PhiloxRng::new(57, 0);
        for (m, n) in [(12usize, 4usize), (4, 12), (20, 5)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            let plain = svd(&a);
            let fast = svd_qr(&a);
            for (x, y) in plain.s.iter().zip(&fast.s) {
                assert!((x - y).abs() < 1e-10, "sv drift {x} vs {y}");
            }
        }
    }

    #[test]
    fn qr_first_square_is_passthrough() {
        // Near-square inputs skip the reduction entirely: bitwise equal.
        let mut rng = PhiloxRng::new(58, 0);
        for (m, n) in [(5usize, 5usize), (6, 4), (4, 6)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            let plain = svd(&a);
            let fast = svd_qr(&a);
            assert_eq!(plain.s, fast.s);
            assert_eq!(plain.u.max_abs_diff(&fast.u), 0.0);
            assert_eq!(plain.vh.max_abs_diff(&fast.vh), 0.0);
        }
    }

    #[test]
    fn qr_first_rank_deficient_and_zero() {
        let mut a = Matrix::<f64>::zeros(8, 3);
        for r in 0..8 {
            for c in 0..3 {
                a[(r, c)] = Complex::from_f64((r + 1) as f64 * (c + 1) as f64, 0.0);
            }
        }
        let Svd { s, .. } = svd_qr(&a);
        assert!(s[0] > 1.0);
        assert!(s[1].abs() < 1e-9);
        check_svd_qr(&a, 1e-9);
        let z = Matrix::<f64>::zeros(6, 2);
        let Svd { s, .. } = svd_qr(&z);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn frobenius_norm_preserved() {
        let mut rng = PhiloxRng::new(55, 0);
        let a = random_matrix::<f64>(7, 5, &mut rng);
        let Svd { s, .. } = svd(&a);
        let from_s: f64 = s.iter().map(|&x| x * x).sum::<f64>().sqrt();
        assert!((from_s - a.frobenius_norm()).abs() < 1e-9);
    }

    /// Near-square inputs at or above `QRCP_MIN_DIM` take the
    /// column-pivoted route; its singular values and reconstruction must
    /// agree with the dense Jacobi result to working precision.
    #[test]
    fn qrcp_full_rank_matches_dense() {
        let mut rng = PhiloxRng::new(59, 0);
        for (m, n) in [(64usize, 64usize), (96, 96), (80, 64), (64, 80)] {
            let a = random_matrix::<f64>(m, n, &mut rng);
            let scale = a.frobenius_norm();
            let plain = svd(&a);
            let fast = svd_qr(&a);
            for (x, y) in plain.s.iter().zip(&fast.s) {
                assert!((x - y).abs() < scale * 1e-10, "sv drift {x} vs {y}");
            }
            check_svd_qr(&a, scale * 1e-10);
        }
    }

    /// The motivating case: rank-deficient near-square matrices (the
    /// two-site MPS update whose true rank is at most the child bond).
    /// QRCP must find the rank, zero the tail exactly, and reproduce the
    /// nonzero spectrum.
    #[test]
    fn qrcp_rank_deficient_matches_dense() {
        let mut rng = PhiloxRng::new(60, 0);
        for (m, n, rank) in [(96usize, 96usize, 32usize), (64, 64, 48), (100, 72, 16)] {
            let l = random_matrix::<f64>(m, rank, &mut rng);
            let r = random_matrix::<f64>(rank, n, &mut rng);
            let a = l.mul_ref(&r);
            let scale = a.frobenius_norm();
            let plain = svd(&a);
            let fast = svd_qr(&a);
            for i in 0..rank {
                assert!(
                    (plain.s[i] - fast.s[i]).abs() < scale * 1e-10,
                    "sv drift at {i}: {} vs {}",
                    plain.s[i],
                    fast.s[i]
                );
            }
            // The detected null tail is *exactly* zero (padded), not noise.
            for i in rank..m.min(n) {
                assert_eq!(fast.s[i], 0.0, "tail sv {i} not exactly zero");
            }
            check_svd_qr(&a, scale * 1e-10);
        }
    }

    #[test]
    fn qrcp_zero_matrix() {
        let a = Matrix::<f64>::zeros(64, 64);
        let Svd { u, s, vh } = svd_qr(&a);
        assert!(s.iter().all(|&x| x == 0.0));
        assert!(u.max_abs_diff(&Matrix::zeros(64, 64)) == 0.0);
        assert!(vh.max_abs_diff(&Matrix::zeros(64, 64)) == 0.0);
    }
}
