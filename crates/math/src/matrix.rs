//! Dense row-major complex matrices.
//!
//! Sized for the workspace's needs: gate matrices (2x2 … 32x32), Kraus
//! operators, MPS bond matrices (up to a few hundred square), and density
//! matrices in the validation oracle (up to 2^8). Not a general BLAS — the
//! hot paths of the simulators use specialized kernels; this type is the
//! *correctness* workhorse.

use crate::complex::Complex;
use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<Complex<T>>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::zero(); rows * cols],
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::one();
        }
        m
    }

    /// Build from a row-major vector of entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex<T>>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: shape mismatch");
        Self { rows, cols, data }
    }

    /// Build from row-major `(re, im)` pairs in `f64` (constants tables).
    pub fn from_f64_pairs(rows: usize, cols: usize, entries: &[(f64, f64)]) -> Self {
        assert_eq!(entries.len(), rows * cols);
        Self {
            rows,
            cols,
            data: entries
                .iter()
                .map(|&(re, im)| Complex::from_f64(re, im))
                .collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.data
    }

    /// Consume the matrix and recover its row-major storage (buffer
    /// recycling: callers that built the matrix with [`Matrix::from_vec`]
    /// can take the allocation back for the next iteration).
    #[inline]
    pub fn into_vec(self) -> Vec<Complex<T>> {
        self.data
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scale all entries by a complex factor.
    pub fn scaled(&self, s: Complex<T>) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Scale all entries by a real factor.
    pub fn scaled_real(&self, s: T) -> Self {
        self.scaled(Complex::real(s))
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for ar in 0..self.rows {
            for ac in 0..self.cols {
                let a = self[(ar, ac)];
                if a == Complex::zero() {
                    continue;
                }
                for br in 0..rhs.rows {
                    for bc in 0..rhs.cols {
                        out[(ar * rhs.rows + br, ac * rhs.cols + bc)] = a * rhs[(br, bc)];
                    }
                }
            }
        }
        out
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Complex<T> {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .fold(T::ZERO, |a, b| a + b)
            .sqrt()
    }

    /// Largest entry-wise absolute difference against `other`.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(T::ZERO, Scalar::max)
    }

    /// True when `self† · self` is the identity to tolerance `tol`.
    pub fn is_unitary(&self, tol: T) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.dagger().mul_ref(self);
        prod.max_abs_diff(&Self::identity(self.rows)) <= tol
    }

    /// True when Hermitian to tolerance `tol`.
    pub fn is_hermitian(&self, tol: T) -> bool {
        self.is_square() && self.max_abs_diff(&self.dagger()) <= tol
    }

    /// True when the matrix is *exactly* the identity — every diagonal
    /// entry `1 + 0i` and every off-diagonal entry `0` by floating-point
    /// equality, no tolerance. This is the predicate behind the
    /// identity-branch skip in the execution paths: only a branch whose
    /// application is a mathematical no-op may be elided, and the
    /// detection must agree at every precision (exact 0/1 convert
    /// exactly), so it runs on the `f64` source matrices at compile time.
    /// Phase-identities `e^{iθ}·I` deliberately fail — applying them is
    /// not a no-op.
    pub fn is_exact_identity(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let want = if r == c {
                    Complex::one()
                } else {
                    Complex::zero()
                };
                if self[(r, c)] != want {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix product without consuming operands.
    pub fn mul_ref(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        // ikj loop order: stream over rhs rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::zero() {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    pub fn mul_vec(&self, v: &[Complex<T>]) -> Vec<Complex<T>> {
        assert_eq!(self.cols, v.len(), "mul_vec shape mismatch");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                let mut acc = Complex::zero();
                for (&a, &x) in row.iter().zip(v) {
                    acc += a * x;
                }
                acc
            })
            .collect()
    }

    /// Convert every entry to double precision.
    pub fn to_f64(&self) -> Matrix<f64> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.to_c64()).collect(),
        }
    }

    /// Convert from a double-precision matrix (used to instantiate gate
    /// constants at `f32`).
    pub fn from_f64_matrix(m: &Matrix<f64>) -> Self {
        Self {
            rows: m.rows,
            cols: m.cols,
            data: m
                .data
                .iter()
                .map(|z| Complex::from_f64(z.re, z.im))
                .collect(),
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = Complex<T>;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex<T> {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex<T> {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: Self) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: Self) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: Self) -> Matrix<T> {
        self.mul_ref(rhs)
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    fn pauli_x() -> Matrix<f64> {
        Matrix::from_f64_pairs(2, 2, &[(0.0, 0.0), (1.0, 0.0), (1.0, 0.0), (0.0, 0.0)])
    }

    fn pauli_y() -> Matrix<f64> {
        Matrix::from_f64_pairs(2, 2, &[(0.0, 0.0), (0.0, -1.0), (0.0, 1.0), (0.0, 0.0)])
    }

    #[test]
    fn identity_is_unitary_and_hermitian() {
        let id = Matrix::<f64>::identity(4);
        assert!(id.is_unitary(1e-12));
        assert!(id.is_hermitian(1e-12));
        assert_eq!(id.trace(), C64::new(4.0, 0.0));
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let y = pauli_y();
        // X^2 = I
        assert!(x.mul_ref(&x).max_abs_diff(&Matrix::identity(2)) < 1e-12);
        // XY = iZ
        let xy = x.mul_ref(&y);
        assert_eq!(xy[(0, 0)], C64::new(0.0, 1.0));
        assert_eq!(xy[(1, 1)], C64::new(0.0, -1.0));
        // anticommute: XY + YX = 0
        let anti = &x.mul_ref(&y) + &y.mul_ref(&x);
        assert!(anti.frobenius_norm() < 1e-12);
    }

    #[test]
    fn dagger_involution() {
        let m = Matrix::<f64>::from_f64_pairs(2, 3, &[(1.0, 2.0); 6]);
        assert_eq!(m.dagger().dagger(), m);
        assert_eq!(m.dagger().rows(), 3);
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = pauli_x();
        let id = Matrix::<f64>::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.rows(), 4);
        // X ⊗ I applied to |00> = |10>: column 0 should have 1 at row 2.
        assert_eq!(xi[(2, 0)], C64::new(1.0, 0.0));
        assert_eq!(xi[(0, 0)], C64::zero());
    }

    #[test]
    fn kron_mixed_with_product() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let lhs = a.kron(&b).mul_ref(&b.kron(&a));
        let rhs = a.mul_ref(&b).kron(&b.mul_ref(&a));
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = pauli_y();
        let v = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)];
        let mv = m.mul_vec(&v);
        // Y|0> = i|1>, Y(i|1>) = i * (-i)|0> = |0>; combined: Y(|0> + i|1>) = |0> + i|1>... compute directly:
        // row0: 0*1 + (-i)(i) = 1 ; row1: (i)(1) + 0 = i
        assert_eq!(mv[0], C64::new(1.0, 0.0));
        assert_eq!(mv[1], C64::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn product_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let _ = a.mul_ref(&b);
    }

    #[test]
    fn frobenius_and_diff() {
        let a = Matrix::<f64>::identity(3);
        let b = a.scaled_real(2.0);
        assert!((a.frobenius_norm() - 3f64.sqrt()).abs() < 1e-12);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f32_instantiation() {
        let x32 = Matrix::<f32>::from_f64_matrix(&pauli_x());
        assert!(x32.is_unitary(1e-5));
        assert_eq!(x32.to_f64().max_abs_diff(&pauli_x()), 0.0);
    }
}
