//! Floating-point abstraction: the workspace is generic over `f32`/`f64`.
//!
//! The paper stores statevectors as `complex64` (two `f32`s per amplitude,
//! "2^{n+1} float32 values"); the validation oracles (density matrix, MPS
//! truncation-error accounting) want `f64`. A single small trait keeps every
//! kernel monomorphizable to both without `num-traits`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real scalar used for amplitudes and probabilities.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Two.
    const TWO: Self;
    /// One half.
    const HALF: Self;

    /// Lossy conversion from `f64` (used for constants and probabilities).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Machine epsilon of the underlying type.
    fn eps() -> Self;
    /// Default "numerically zero" tolerance for this precision.
    fn tol() -> Self;
    /// Larger of two values (NaN-poisoning not required here).
    fn max(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
    /// Smaller of two values.
    fn min(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
    /// Fused multiply-add when the platform provides it.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// True for finite values.
    fn is_finite(self) -> bool;
    /// Cosine.
    fn cos(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const HALF: Self = 0.5;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn eps() -> Self {
        f64::EPSILON
    }
    #[inline]
    fn tol() -> Self {
        crate::TOL_F64
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline]
    fn sin(self) -> Self {
        f64::sin(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const HALF: Self = 0.5;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn eps() -> Self {
        f32::EPSILON
    }
    #[inline]
    fn tol() -> Self {
        crate::TOL_F32
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f32::cos(self)
    }
    #[inline]
    fn sin(self) -> Self {
        f32::sin(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(0.5).to_f64(), 0.5);
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::TWO.to_f64(), 2.0);
        assert_eq!(T::HALF.to_f64(), 0.5);
    }

    #[test]
    fn conversions_roundtrip() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }

    #[test]
    fn min_max() {
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f32, 2.0), 1.0);
    }

    #[test]
    fn sqrt_and_abs() {
        assert_eq!(Scalar::sqrt(4.0f64), 2.0);
        assert_eq!(Scalar::abs(-3.0f32), 3.0);
    }
}
