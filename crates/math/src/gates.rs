//! Standard gate matrices.
//!
//! Conventions (shared by every simulator in the workspace):
//! - qubit `q` maps to bit `q` of the basis-state index (qubit 0 is the
//!   least-significant bit);
//! - two-qubit gate matrices are written in the ordered basis
//!   `|ab⟩ = a·2 + b` where `a` is the *first* qubit argument of the gate
//!   (e.g. the control of a CNOT) and `b` the second;
//! - rotation angles are `f64` radians regardless of the storage precision.
//!
//! Includes the √X and √Y gates used by the paper's Fig. 3 compilation of
//! the 5→1 magic-state distillation protocol.

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::f64::consts::FRAC_1_SQRT_2;

/// Pauli X.
pub fn x<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(0., 0.), (1., 0.), (1., 0.), (0., 0.)])
}

/// Pauli Y.
pub fn y<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(0., 0.), (0., -1.), (0., 1.), (0., 0.)])
}

/// Pauli Z.
pub fn z<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(1., 0.), (0., 0.), (0., 0.), (-1., 0.)])
}

/// Hadamard.
pub fn h<T: Scalar>() -> Matrix<T> {
    let s = FRAC_1_SQRT_2;
    Matrix::from_f64_pairs(2, 2, &[(s, 0.), (s, 0.), (s, 0.), (-s, 0.)])
}

/// Phase gate S = √Z.
pub fn s<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(1., 0.), (0., 0.), (0., 0.), (0., 1.)])
}

/// S†.
pub fn sdg<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(1., 0.), (0., 0.), (0., 0.), (0., -1.)])
}

/// T = √S (the canonical non-Clifford gate).
pub fn t<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(
        2,
        2,
        &[(1., 0.), (0., 0.), (0., 0.), (FRAC_1_SQRT_2, FRAC_1_SQRT_2)],
    )
}

/// T†.
pub fn tdg<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(
        2,
        2,
        &[
            (1., 0.),
            (0., 0.),
            (0., 0.),
            (FRAC_1_SQRT_2, -FRAC_1_SQRT_2),
        ],
    )
}

/// √X (Fig. 3 of the paper).
pub fn sx<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(0.5, 0.5), (0.5, -0.5), (0.5, -0.5), (0.5, 0.5)])
}

/// √X†.
pub fn sxdg<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(0.5, -0.5), (0.5, 0.5), (0.5, 0.5), (0.5, -0.5)])
}

/// √Y (Fig. 3 of the paper).
pub fn sy<T: Scalar>() -> Matrix<T> {
    Matrix::from_f64_pairs(2, 2, &[(0.5, 0.5), (-0.5, -0.5), (0.5, 0.5), (0.5, 0.5)])
}

/// √Y†.
pub fn sydg<T: Scalar>() -> Matrix<T> {
    sy::<T>().dagger()
}

/// Rotation about X: `Rx(θ) = exp(-iθX/2)`.
pub fn rx<T: Scalar>(theta: f64) -> Matrix<T> {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_f64_pairs(2, 2, &[(c, 0.), (0., -sn), (0., -sn), (c, 0.)])
}

/// Rotation about Y: `Ry(θ) = exp(-iθY/2)`.
pub fn ry<T: Scalar>(theta: f64) -> Matrix<T> {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_f64_pairs(2, 2, &[(c, 0.), (-sn, 0.), (sn, 0.), (c, 0.)])
}

/// Rotation about Z: `Rz(θ) = exp(-iθZ/2)`.
pub fn rz<T: Scalar>(theta: f64) -> Matrix<T> {
    let half = theta / 2.0;
    Matrix::from_f64_pairs(
        2,
        2,
        &[
            (half.cos(), -half.sin()),
            (0., 0.),
            (0., 0.),
            (half.cos(), half.sin()),
        ],
    )
}

/// Phase gate `P(λ) = diag(1, e^{iλ})`.
pub fn p<T: Scalar>(lambda: f64) -> Matrix<T> {
    Matrix::from_f64_pairs(
        2,
        2,
        &[(1., 0.), (0., 0.), (0., 0.), (lambda.cos(), lambda.sin())],
    )
}

/// General single-qubit gate `U(θ, φ, λ)` (OpenQASM convention).
pub fn u3<T: Scalar>(theta: f64, phi: f64, lambda: f64) -> Matrix<T> {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_f64_pairs(
        2,
        2,
        &[
            (c, 0.),
            (-(lambda.cos()) * sn, -(lambda.sin()) * sn),
            (phi.cos() * sn, phi.sin() * sn),
            ((phi + lambda).cos() * c, (phi + lambda).sin() * c),
        ],
    )
}

/// CNOT with the first basis bit as control.
pub fn cx<T: Scalar>() -> Matrix<T> {
    let mut m = Matrix::zeros(4, 4);
    m[(0, 0)] = Complex::one();
    m[(1, 1)] = Complex::one();
    m[(2, 3)] = Complex::one();
    m[(3, 2)] = Complex::one();
    m
}

/// Controlled-Z (symmetric in its qubits).
pub fn cz<T: Scalar>() -> Matrix<T> {
    let mut m = Matrix::identity(4);
    m[(3, 3)] = -Complex::<T>::one();
    m
}

/// SWAP.
pub fn swap<T: Scalar>() -> Matrix<T> {
    let mut m = Matrix::zeros(4, 4);
    m[(0, 0)] = Complex::one();
    m[(1, 2)] = Complex::one();
    m[(2, 1)] = Complex::one();
    m[(3, 3)] = Complex::one();
    m
}

/// Lift a single-qubit unitary to its controlled version (control = first
/// basis bit).
pub fn controlled<T: Scalar>(u: &Matrix<T>) -> Matrix<T> {
    assert_eq!((u.rows(), u.cols()), (2, 2), "controlled: need a 2x2 gate");
    let mut m = Matrix::identity(4);
    m[(2, 2)] = u[(0, 0)];
    m[(2, 3)] = u[(0, 1)];
    m[(3, 2)] = u[(1, 0)];
    m[(3, 3)] = u[(1, 1)];
    m
}

/// Toffoli (CCX), controls = two most-significant basis bits.
pub fn ccx<T: Scalar>() -> Matrix<T> {
    let mut m = Matrix::identity(8);
    m[(6, 6)] = Complex::zero();
    m[(7, 7)] = Complex::zero();
    m[(6, 7)] = Complex::one();
    m[(7, 6)] = Complex::one();
    m
}

/// The four single-qubit Paulis indexed 0..4 as I, X, Y, Z — the natural
/// alphabet for Pauli channels and twirling.
pub fn pauli<T: Scalar>(idx: usize) -> Matrix<T> {
    match idx {
        0 => Matrix::identity(2),
        1 => x(),
        2 => y(),
        3 => z(),
        _ => panic!("pauli index {idx} out of range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOL_F64;

    fn assert_unitary(m: &Matrix<f64>, name: &str) {
        assert!(m.is_unitary(1e-12), "{name} not unitary: {m:?}");
    }

    #[test]
    fn all_fixed_gates_unitary() {
        for (m, name) in [
            (x::<f64>(), "x"),
            (y(), "y"),
            (z(), "z"),
            (h(), "h"),
            (s(), "s"),
            (sdg(), "sdg"),
            (t(), "t"),
            (tdg(), "tdg"),
            (sx(), "sx"),
            (sxdg(), "sxdg"),
            (sy(), "sy"),
            (sydg(), "sydg"),
            (cx(), "cx"),
            (cz(), "cz"),
            (swap(), "swap"),
            (ccx(), "ccx"),
        ] {
            assert_unitary(&m, name);
        }
    }

    #[test]
    fn parametric_gates_unitary() {
        for k in 0..12 {
            let theta = k as f64 * 0.7 - 3.0;
            assert_unitary(&rx(theta), "rx");
            assert_unitary(&ry(theta), "ry");
            assert_unitary(&rz(theta), "rz");
            assert_unitary(&p(theta), "p");
            assert_unitary(&u3(theta, 0.3 * theta, -theta), "u3");
        }
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        assert!(sx::<f64>().mul_ref(&sx()).max_abs_diff(&x()) < TOL_F64);
        assert!(sy::<f64>().mul_ref(&sy()).max_abs_diff(&y()) < TOL_F64);
        assert!(s::<f64>().mul_ref(&s()).max_abs_diff(&z()) < TOL_F64);
        assert!(t::<f64>().mul_ref(&t()).max_abs_diff(&s()) < TOL_F64);
    }

    #[test]
    fn daggers_invert() {
        for (g, gd) in [
            (s::<f64>(), sdg()),
            (t(), tdg()),
            (sx(), sxdg()),
            (sy(), sydg()),
        ] {
            assert!(g.mul_ref(&gd).max_abs_diff(&Matrix::identity(2)) < TOL_F64);
        }
    }

    #[test]
    fn hadamard_conjugation() {
        // H X H = Z and H Z H = X.
        let hm = h::<f64>();
        assert!(hm.mul_ref(&x()).mul_ref(&hm).max_abs_diff(&z()) < TOL_F64);
        assert!(hm.mul_ref(&z()).mul_ref(&hm).max_abs_diff(&x()) < TOL_F64);
    }

    #[test]
    fn cx_action_on_basis() {
        let c = cx::<f64>();
        // |10> (index 2) -> |11> (index 3)
        assert_eq!(c[(3, 2)], Complex::one());
        // |01> fixed
        assert_eq!(c[(1, 1)], Complex::one());
    }

    #[test]
    fn controlled_matches_cx() {
        assert!(controlled(&x::<f64>()).max_abs_diff(&cx()) < TOL_F64);
    }

    #[test]
    fn rotations_at_pi_match_paulis_up_to_phase() {
        // Rx(pi) = -iX
        let rxpi = rx::<f64>(std::f64::consts::PI);
        let want = x::<f64>().scaled(Complex::from_f64(0.0, -1.0));
        assert!(rxpi.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn u3_special_cases() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // u3(pi/2, 0, pi) = H
        assert!(u3::<f64>(FRAC_PI_2, 0.0, PI).max_abs_diff(&h()) < 1e-12);
        // u3(pi, 0, pi) = X
        assert!(u3::<f64>(PI, 0.0, PI).max_abs_diff(&x()) < 1e-12);
    }

    #[test]
    fn pauli_indexing() {
        assert!(pauli::<f64>(0).max_abs_diff(&Matrix::identity(2)) < TOL_F64);
        assert!(pauli::<f64>(1).max_abs_diff(&x()) < TOL_F64);
        assert!(pauli::<f64>(2).max_abs_diff(&y()) < TOL_F64);
        assert!(pauli::<f64>(3).max_abs_diff(&z()) < TOL_F64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pauli_bad_index() {
        let _ = pauli::<f64>(4);
    }
}
