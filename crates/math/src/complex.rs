//! Minimal complex type with GPU-buffer-compatible layout.
//!
//! `#[repr(C)]` with `[re, im]` ordering matches the interleaved complex
//! layout of cuStateVec buffers, so a future GPU port could reinterpret the
//! statevector storage without copying.

use crate::scalar::Scalar;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

// ---------------------------------------------------------------------------
// Parts-level arithmetic
//
// Every complex operation a statevector kernel performs is defined here
// once over separate real/imaginary operands, and [`Complex`] routes its
// own `Mul`/`mul_add`/`norm_sqr` through the same functions. Split-plane
// (structure-of-arrays) kernels call these directly on plane elements, so
// interleaved and split layouts are bitwise identical *by construction* —
// there is no second copy of the arithmetic to drift.

/// Parts of the plain complex product `(ar + i·ai)(br + i·bi)` — exactly
/// the arithmetic of `Complex: Mul` (two products and one add/sub per
/// component, never fused).
#[inline(always)]
pub fn cplx_mul_parts<T: Scalar>(ar: T, ai: T, br: T, bi: T) -> (T, T) {
    (ar * br - ai * bi, ar * bi + ai * br)
}

/// Parts of the fused `(ar + i·ai)(br + i·bi) + (acr + i·aci)` — exactly
/// the arithmetic of [`Complex::mul_add`], including its compile-time
/// choice between hardware-FMA chains and plain mul+add (see that method's
/// docs for why the `cfg!` exists).
#[inline(always)]
pub fn cplx_mul_add_parts<T: Scalar>(ar: T, ai: T, br: T, bi: T, acr: T, aci: T) -> (T, T) {
    if cfg!(target_feature = "fma") {
        (
            ar.mul_add(br, ai.mul_add(-bi, acr)),
            ar.mul_add(bi, ai.mul_add(br, aci)),
        )
    } else {
        (ar * br - ai * bi + acr, ar * bi + ai * br + aci)
    }
}

/// Parts of `|z|²` — exactly the arithmetic of [`Complex::norm_sqr`]
/// (`re·re` fused with `im·im`; `mul_add` on the [`Scalar`] trait always
/// has fused semantics, falling back to libm's `fma` off-FMA targets).
#[inline(always)]
pub fn cplx_norm_sqr_parts<T: Scalar>(re: T, im: T) -> T {
    re.mul_add(re, im * im)
}

/// Complex number over a [`Scalar`] real type.
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Double-precision complex (validation-oracle precision).
pub type C64 = Complex<f64>;
/// Single-precision complex (the paper's statevector precision).
pub type C32 = Complex<f32>;

impl<T: Scalar> Complex<T> {
    /// Construct from real and imaginary parts.
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity.
    #[inline]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// Purely real value.
    #[inline]
    pub fn real(re: T) -> Self {
        Self::new(re, T::ZERO)
    }

    /// Construct from an `f64` pair (constants written in double precision).
    #[inline]
    pub fn from_f64(re: f64, im: f64) -> Self {
        Self::new(T::from_f64(re), T::from_f64(im))
    }

    /// Precision-convert a double-precision complex (the scalar analog of
    /// [`crate::Matrix::from_f64_matrix`]).
    #[inline]
    pub fn from_f64_complex(z: Complex<f64>) -> Self {
        Self::from_f64(z.re, z.im)
    }

    /// `e^{i theta}` for a phase given in radians (as `f64`).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_f64(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> T {
        cplx_norm_sqr_parts(self.re, self.im)
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Fused `self · b + acc` — the one complex multiply-accumulate every
    /// statevector gate kernel (scalar *and* batch-major) routes through,
    /// so the two execution paths produce bit-identical amplitudes.
    ///
    /// On targets with hardware FMA the components contract to real
    /// `mul_add` chains; elsewhere they fall back to plain mul+add,
    /// because libm's software `fma` is an out-of-line call that is both
    /// slower and an autovectorization barrier. The `cfg!` is resolved at
    /// compile time, so one binary uses one form everywhere.
    #[inline(always)]
    pub fn mul_add(self, b: Self, acc: Self) -> Self {
        let (re, im) = cplx_mul_add_parts(self.re, self.im, b.re, b.im, acc.re, acc.im);
        Self::new(re, im)
    }

    /// Multiplicative inverse. Returns zero for zero input rather than NaN
    /// (callers in truncation paths rely on this).
    #[inline]
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        if n == T::ZERO {
            Self::zero()
        } else {
            Self::new(self.re / n, -self.im / n)
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Widen to double precision.
    #[inline]
    pub fn to_c64(self) -> C64 {
        C64::new(self.re.to_f64(), self.im.to_f64())
    }
}

impl<T: Scalar> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Scalar> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Scalar> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let (re, im) = cplx_mul_parts(self.re, self.im, rhs.re, rhs.im);
        Self::new(re, im)
    }
}

impl<T: Scalar> Div for Complex<T> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Scalar> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Scalar> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Scalar> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Scalar> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Scalar> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Scalar> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: Scalar> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: Scalar> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re.to_f64(), self.im.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        assert_eq!(a + b - b, a);
        assert_eq!(a * C64::one(), a);
        assert_eq!(a + C64::zero(), a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn multiplication() {
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        let p = C64::new(1.0, 2.0) * C64::new(3.0, 4.0);
        assert_eq!(p, C64::new(-5.0, 10.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::i() * C64::i(), C64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = C64::new(3.0, -4.0);
        assert_eq!(a.conj(), C64::new(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let prod = a * a.conj();
        assert!((prod.re - 25.0).abs() < 1e-12 && prod.im == 0.0);
    }

    #[test]
    fn division_and_recip() {
        let a = C64::new(1.0, 2.0);
        let q = a / a;
        assert!((q.re - 1.0).abs() < 1e-12 && q.im.abs() < 1e-12);
        assert_eq!(C64::zero().recip(), C64::zero());
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..8 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_4;
            let z = C64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        let z = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-12 && (z.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f32_precision_works() {
        let a = C32::new(1.0, 1.0);
        assert!((a.abs() - std::f32::consts::SQRT_2).abs() < 1e-6);
        assert_eq!(a.to_c64().re, 1.0f64);
    }

    #[test]
    fn mul_add_matches_mul_then_add() {
        let a = C64::new(0.3, -1.7);
        let b = C64::new(-2.1, 0.9);
        let acc = C64::new(0.25, 4.0);
        let fused = a.mul_add(b, acc);
        let plain = a * b + acc;
        // Identical up to one FMA rounding per component (exact when the
        // target has no hardware FMA).
        assert!((fused - plain).abs() < 1e-15);
    }

    #[test]
    fn sum_folds() {
        let v = [C64::one(), C64::i(), C64::new(1.0, 1.0)];
        let s: C64 = v.into_iter().sum();
        assert_eq!(s, C64::new(2.0, 2.0));
    }
}
