//! Property tests for the dense linear-algebra kernels.

use proptest::prelude::*;
use ptsbe_math::qr::qr_thin;
use ptsbe_math::random::random_matrix;
use ptsbe_math::svd::svd;
use ptsbe_math::{Complex, Matrix};
use ptsbe_rng::PhiloxRng;

fn reconstruct_svd(u: &Matrix<f64>, s: &[f64], vh: &Matrix<f64>) -> Matrix<f64> {
    let mut out = Matrix::zeros(u.rows(), vh.cols());
    for r in 0..u.rows() {
        for c in 0..vh.cols() {
            let mut acc = Complex::zero();
            for (k, &sk) in s.iter().enumerate() {
                acc += u[(r, k)].scale(sk) * vh[(k, c)];
            }
            out[(r, c)] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn svd_reconstructs_any_shape(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let mut rng = PhiloxRng::new(seed, 77);
        let a = random_matrix::<f64>(rows, cols, &mut rng);
        let dec = svd(&a);
        let back = reconstruct_svd(&dec.u, &dec.s, &dec.vh);
        prop_assert!(back.max_abs_diff(&a) < 1e-8, "diff {}", back.max_abs_diff(&a));
        // Singular values sorted, non-negative.
        for w in dec.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(dec.s.iter().all(|&x| x >= 0.0));
        // Frobenius norm preserved.
        let f_a = a.frobenius_norm();
        let f_s: f64 = dec.s.iter().map(|&x| x * x).sum::<f64>().sqrt();
        prop_assert!((f_a - f_s).abs() < 1e-8);
    }

    #[test]
    fn qr_reconstructs_and_is_isometric(rows in 1usize..14, cols in 1usize..14, seed in 0u64..1000) {
        let mut rng = PhiloxRng::new(seed, 78);
        let a = random_matrix::<f64>(rows, cols, &mut rng);
        let f = qr_thin(&a);
        prop_assert!(f.q.mul_ref(&f.r).max_abs_diff(&a) < 1e-9);
        let k = rows.min(cols);
        let qtq = f.q.dagger().mul_ref(&f.q);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(k)) < 1e-9);
        // R upper-triangular with non-negative real diagonal.
        for i in 0..k {
            for c in 0..i.min(f.r.cols()) {
                prop_assert!(f.r[(i, c)].abs() < 1e-9);
            }
            if i < f.r.cols() {
                prop_assert!(f.r[(i, i)].im.abs() < 1e-9);
                prop_assert!(f.r[(i, i)].re >= -1e-9);
            }
        }
    }

    #[test]
    fn haar_unitaries_compose(seed in 0u64..500, n in 1usize..6) {
        let mut rng = PhiloxRng::new(seed, 79);
        let u = ptsbe_math::random::haar_unitary::<f64>(n, &mut rng);
        let v = ptsbe_math::random::haar_unitary::<f64>(n, &mut rng);
        prop_assert!(u.is_unitary(1e-9));
        prop_assert!(u.mul_ref(&v).is_unitary(1e-8));
        prop_assert!(u.dagger().is_unitary(1e-9));
        // U†U = I exactly enough.
        prop_assert!(u.dagger().mul_ref(&u).max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn kron_mixed_product_property(seed in 0u64..300) {
        let mut rng = PhiloxRng::new(seed, 80);
        let a = random_matrix::<f64>(2, 2, &mut rng);
        let b = random_matrix::<f64>(3, 3, &mut rng);
        let c = random_matrix::<f64>(2, 2, &mut rng);
        let d = random_matrix::<f64>(3, 3, &mut rng);
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = a.kron(&b).mul_ref(&c.kron(&d));
        let rhs = a.mul_ref(&c).kron(&b.mul_ref(&d));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn dagger_antihomomorphism(seed in 0u64..300, n in 1usize..6) {
        let mut rng = PhiloxRng::new(seed, 81);
        let a = random_matrix::<f64>(n, n, &mut rng);
        let b = random_matrix::<f64>(n, n, &mut rng);
        // (AB)† = B†A†
        let lhs = a.mul_ref(&b).dagger();
        let rhs = b.dagger().mul_ref(&a.dagger());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}
