//! Lock-free, allocation-light observability for the PTSBE stack.
//!
//! Three layers, all behind one process-global switch:
//!
//! - **Latency histograms** ([`LogHistogram`]): 64 power-of-two-ns
//!   buckets of `AtomicU64` cells, mergeable snapshots, p50/p90/p99/max
//!   queries. Every recorded stage interval lands here.
//! - **Span recorder** ([`Span`], [`TaskScope`]): per-job/per-chunk
//!   stage intervals in a bounded lock-free ring, exportable as Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto) and JSONL.
//! - **Text exporters** ([`prometheus`], [`Summary`]): Prometheus-style
//!   text format and a human `Display` summary over generic [`Metric`]
//!   families plus the histograms — the service converts its own
//!   `MetricsSnapshot` into families, so this crate stays dependency-free.
//!
//! # The overhead contract
//!
//! Telemetry is configured per process ([`configure`], usually via
//! `ServiceConfig::telemetry` or the `PTSBE_TELEMETRY` env var) to one
//! of three modes: `Off`, `Counters` (histograms only), `Spans`
//! (histograms + ring). When off, **every hook is one relaxed atomic
//! load and a branch** — no clock reads, no TLS writes, no allocation.
//! The `no-hooks` cargo feature compiles [`enabled`] to a constant
//! `false` so benches can price the hooks themselves (bench_pr9 pins
//! off-mode overhead ≤ 2% against that build).
//!
//! Instrumentation never touches output bytes: hooks only read clocks
//! and bump atomics — they cannot perturb RNG streams, record contents,
//! or scheduling decisions, so the service's byte-identity suites hold
//! with telemetry on and off (pinned in CI with `PTSBE_TELEMETRY=spans`).

mod export;
mod hist;
mod span;

pub use export::{fmt_nanos, prometheus, Metric, MetricKind, Summary};
pub use hist::{bucket_bounds, bucket_index, HistSnapshot, LogHistogram, BUCKETS};
pub use span::{Span, TaskScope};

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Job id used for spans recorded outside any job context.
pub const NO_JOB: u64 = 0;

/// Default bounded span-ring capacity (spans, not bytes).
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

/// How much the process records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum TelemetryMode {
    /// Hooks compile to one relaxed load + branch; nothing is recorded.
    #[default]
    Off = 0,
    /// Latency histograms only (no per-event ring writes).
    Counters = 1,
    /// Histograms plus the span ring (Chrome-trace export).
    Spans = 2,
}

/// Pipeline stages the instrumentation distinguishes. Labels are the
/// stable strings used by every exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Job submission → a worker picking up its plan task.
    QueueWait = 0,
    /// Engine routing: compile-or-hit, traits, probe, decision.
    Route = 1,
    /// Backend compilation on a cache miss (nested inside `Route`).
    Compile = 2,
    /// Plan-tree construction on a cache miss (nested inside `Route`).
    Plan = 3,
    /// State preparation work inside a chunk: segment advances and
    /// branch-point forks (aggregated per chunk).
    Prep = 4,
    /// Shot sampling from prepared states (aggregated per chunk).
    Sample = 5,
    /// Reorder-buffer push → sink write for one chunk's records.
    SinkWrite = 6,
    /// Backoff sleeps between chunk retry attempts.
    RetryBackoff = 7,
    /// One truncating SVD inside an MPS two-site update
    /// (histogram-only: it nests inside `Prep`, so emitting it as a
    /// span too would double-count the chunk decomposition).
    MpsSvd = 8,
    /// Whole-chunk envelope (emitted by [`TaskScope`] on drop).
    Chunk = 9,
    /// One batched multi-trajectory MPS sampling call (histogram-only:
    /// it nests inside the per-chunk `Sample` aggregate, so emitting it
    /// as a span too would double-count the chunk decomposition).
    SampleBatch = 10,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 11;

    /// Every stage, in index order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::Route,
        Stage::Compile,
        Stage::Plan,
        Stage::Prep,
        Stage::Sample,
        Stage::SinkWrite,
        Stage::RetryBackoff,
        Stage::MpsSvd,
        Stage::Chunk,
        Stage::SampleBatch,
    ];

    /// Stable label (exporters, trace event names).
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue-wait",
            Stage::Route => "route",
            Stage::Compile => "compile",
            Stage::Plan => "plan",
            Stage::Prep => "prep",
            Stage::Sample => "sample",
            Stage::SinkWrite => "sink",
            Stage::RetryBackoff => "retry-backoff",
            Stage::MpsSvd => "mps-svd",
            Stage::Chunk => "chunk",
            Stage::SampleBatch => "sample-batch",
        }
    }

    /// Dense index (for per-stage arrays).
    pub fn index(self) -> usize {
        self as usize
    }

    pub(crate) fn from_index(i: u8) -> Option<Stage> {
        Stage::ALL.get(i as usize).copied()
    }

    /// Stages whose individual calls are too fine-grained for one span
    /// each (a sample call per trajectory, an advance per tree edge):
    /// they always feed the histogram, and inside a [`TaskScope`] their
    /// durations fold into one per-chunk span per stage.
    pub fn is_aggregated(self) -> bool {
        matches!(self, Stage::Prep | Stage::Sample)
    }

    /// Stages recorded into histograms only, never the span ring —
    /// they time work nested inside another stage's span.
    pub fn is_histogram_only(self) -> bool {
        matches!(self, Stage::MpsSvd | Stage::SampleBatch)
    }
}

/// Process-wide telemetry selection (the service exposes it as
/// `ServiceConfig::telemetry`; `None` there defers to the
/// `PTSBE_TELEMETRY` environment variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// What to record.
    pub mode: TelemetryMode,
    /// Span-ring capacity (spans). Fixed at the first non-off
    /// [`configure`] of the process; later values are ignored.
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TelemetryConfig {
    /// Telemetry off (pins it off even when `PTSBE_TELEMETRY` is set,
    /// when used as an explicit `ServiceConfig::telemetry`).
    pub fn off() -> Self {
        Self {
            mode: TelemetryMode::Off,
            span_capacity: DEFAULT_SPAN_CAPACITY,
        }
    }

    /// Histograms only.
    pub fn counters() -> Self {
        Self {
            mode: TelemetryMode::Counters,
            ..Self::off()
        }
    }

    /// Histograms + span ring.
    pub fn spans() -> Self {
        Self {
            mode: TelemetryMode::Spans,
            ..Self::off()
        }
    }

    /// Read `PTSBE_TELEMETRY` (`off`/`0`, `counters`/`1`,
    /// `spans`/`trace`/`2`; unknown values warn and mean off) and
    /// `PTSBE_TELEMETRY_SPANS` (ring capacity). `None` when the mode
    /// variable is unset or empty.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("PTSBE_TELEMETRY").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return None;
        }
        let mode = match trimmed.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => TelemetryMode::Off,
            "counters" | "1" => TelemetryMode::Counters,
            "spans" | "trace" | "2" => TelemetryMode::Spans,
            other => {
                eprintln!(
                    "PTSBE_TELEMETRY: unknown mode '{other}' \
                     (expected off|counters|spans); telemetry stays off"
                );
                TelemetryMode::Off
            }
        };
        let span_capacity = std::env::var("PTSBE_TELEMETRY_SPANS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_SPAN_CAPACITY);
        Some(Self {
            mode,
            span_capacity,
        })
    }
}

// ---------------------------------------------------------------------------
// The process-global recorder.

pub(crate) struct Telemetry {
    /// Timestamp origin for span `start_micros`.
    epoch: Instant,
    hists: [LogHistogram; Stage::COUNT],
    ring: span::SpanRing,
}

impl Telemetry {
    pub(crate) fn hist(&self, stage: Stage) -> &LogHistogram {
        &self.hists[stage.index()]
    }

    pub(crate) fn micros_since_epoch(&self, at: Instant) -> u64 {
        // `duration_since` saturates to zero for pre-epoch instants.
        u64::try_from(at.duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }

    pub(crate) fn push_span(
        &self,
        stage: Stage,
        job: u64,
        chunk: Option<u32>,
        start: Instant,
        dur_nanos: u64,
    ) {
        self.ring
            .push(stage, job, chunk, self.micros_since_epoch(start), dur_nanos);
    }
}

static MODE: AtomicU8 = AtomicU8::new(0);
/// Ring capacity requested before the global recorder first
/// materializes (0 = use the default).
static DESIRED_CAPACITY: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

pub(crate) fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| {
        let cap = match DESIRED_CAPACITY.load(Ordering::Relaxed) {
            0 => DEFAULT_SPAN_CAPACITY,
            c => c,
        };
        Telemetry {
            epoch: Instant::now(),
            hists: std::array::from_fn(|_| LogHistogram::new()),
            ring: span::SpanRing::new(cap),
        }
    })
}

/// Select the process-wide telemetry mode. Telemetry is a process
/// global (like a logger): the most recent call wins, and the span-ring
/// capacity is fixed by the first non-off configuration. Mode changes
/// never invalidate already-recorded data.
pub fn configure(cfg: &TelemetryConfig) {
    if cfg.mode != TelemetryMode::Off {
        let _ = DESIRED_CAPACITY.compare_exchange(
            0,
            cfg.span_capacity.max(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        // Materialize now so the epoch predates every span.
        let _ = global();
    }
    MODE.store(cfg.mode as u8, Ordering::Relaxed);
}

/// Current mode (one relaxed load).
pub fn mode() -> TelemetryMode {
    if cfg!(feature = "no-hooks") {
        return TelemetryMode::Off;
    }
    match MODE.load(Ordering::Relaxed) {
        1 => TelemetryMode::Counters,
        2 => TelemetryMode::Spans,
        _ => TelemetryMode::Off,
    }
}

/// Is anything being recorded? One relaxed atomic load — the entire
/// cost of every hook when telemetry is off (constant `false` under the
/// `no-hooks` feature).
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "no-hooks") {
        return false;
    }
    MODE.load(Ordering::Relaxed) != TelemetryMode::Off as u8
}

/// Is the span ring being fed?
#[inline]
pub fn spans_enabled() -> bool {
    if cfg!(feature = "no-hooks") {
        return false;
    }
    MODE.load(Ordering::Relaxed) == TelemetryMode::Spans as u8
}

// ---------------------------------------------------------------------------
// Recording hooks.

/// RAII stage timer from [`timer`]: records on drop.
pub struct StageTimer {
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_nanos(self.stage, span::duration_nanos(start.elapsed()));
        }
    }
}

/// Time a region: the returned guard records `stage` on drop. The hook
/// the executors and backends use — inert (no clock read) when
/// telemetry is off.
#[inline]
pub fn timer(stage: Stage) -> StageTimer {
    StageTimer {
        stage,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Record a completed `stage` interval of `nanos`: histogram always;
/// aggregated stages fold into the active [`TaskScope`], other stages
/// become a ring span (identity from the scope) in spans mode.
fn record_nanos(stage: Stage, nanos: u64) {
    if !enabled() {
        return;
    }
    let g = global();
    g.hist(stage).record(nanos);
    if stage.is_histogram_only() {
        return;
    }
    if stage.is_aggregated() {
        // Outside any scope (e.g. a bare executor run on a rayon
        // thread) the histogram is the whole record.
        let _ = span::scope_accumulate(stage, nanos);
    } else if spans_enabled() {
        let (job, chunk) = span::current_ids();
        let start = Instant::now() - Duration::from_nanos(nanos);
        g.push_span(stage, job, chunk, start, nanos);
    }
}

/// Record a stage interval with an explicit job identity and start
/// instant (histogram always, ring span in spans mode). The service
/// calls this where it owns the timing anchor — e.g. queue-wait from
/// the job's submission instant.
pub fn stage_span(stage: Stage, job: u64, chunk: Option<u32>, start: Instant, dur: Duration) {
    if !enabled() {
        return;
    }
    let nanos = span::duration_nanos(dur);
    let g = global();
    g.hist(stage).record(nanos);
    if !stage.is_histogram_only() && spans_enabled() {
        g.push_span(stage, job, chunk, start, nanos);
    }
}

/// Run `f` timed as `stage`, with job/chunk identity taken from the
/// active [`TaskScope`]. Zero-cost when telemetry is off.
pub fn spanned<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let (job, chunk) = span::current_ids();
    stage_span(stage, job, chunk, start, start.elapsed());
    out
}

/// Bind a (job, chunk) identity to the current thread until the guard
/// drops — see [`TaskScope`]. `chunk: None` is a plan/route scope: it
/// supplies identity to nested hooks but emits no chunk envelope.
pub fn task_scope(job: u64, chunk: Option<u32>) -> TaskScope {
    span::enter(job, chunk)
}

// ---------------------------------------------------------------------------
// Snapshots.

/// Point-in-time copy of everything recorded: per-stage histograms plus
/// the readable contents of the span ring.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Mode at snapshot time.
    pub mode: TelemetryMode,
    /// Per-stage histograms, indexed by [`Stage::index`].
    pub hists: [HistSnapshot; Stage::COUNT],
    /// Readable spans, sorted by start time.
    pub spans: Vec<Span>,
    /// Spans overwritten by ring wrap since the last [`reset`].
    pub dropped_spans: u64,
    /// Ring capacity (spans).
    pub span_capacity: usize,
}

impl TelemetrySnapshot {
    /// Histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &HistSnapshot {
        &self.hists[stage.index()]
    }

    /// Total recorded time in one stage across all jobs.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.stage(stage).sum_nanos)
    }

    /// Sum of span durations for (job, stage) — the per-job stage
    /// breakdown. Spans mode only (0 otherwise).
    pub fn job_stage_nanos(&self, job: u64, stage: Stage) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.job == job && s.stage == stage)
            .map(|s| s.dur_nanos)
            .sum()
    }

    /// Spans belonging to one job.
    pub fn job_spans(&self, job: u64) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.job == job)
    }
}

/// Snapshot the process-global recorder.
pub fn snapshot() -> TelemetrySnapshot {
    let g = global();
    let (spans, dropped_spans) = g.ring.collect();
    TelemetrySnapshot {
        mode: mode(),
        hists: std::array::from_fn(|i| g.hists[i].snapshot()),
        spans,
        dropped_spans,
        span_capacity: g.ring.capacity(),
    }
}

/// Clear histograms and hide recorded spans (bench/test isolation).
/// Does not change the mode.
pub fn reset() {
    let g = global();
    for h in &g.hists {
        h.reset();
    }
    g.ring.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole test module runs under one lock: telemetry is process
    /// global and libtest runs tests on concurrent threads.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn stage_indices_are_dense_and_labeled() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::from_index(i as u8), Some(*s));
            assert!(!s.label().is_empty());
        }
        assert_eq!(Stage::from_index(Stage::COUNT as u8), None);
        let labels: std::collections::HashSet<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Stage::COUNT, "labels must be unique");
    }

    #[test]
    fn env_parsing() {
        // from_env reads real process env; exercise the parser through
        // a scoped variable. Tests in this module are serialized.
        let _g = lock();
        std::env::set_var("PTSBE_TELEMETRY", "spans");
        assert_eq!(
            TelemetryConfig::from_env().map(|c| c.mode),
            Some(TelemetryMode::Spans)
        );
        std::env::set_var("PTSBE_TELEMETRY", "counters");
        assert_eq!(
            TelemetryConfig::from_env().map(|c| c.mode),
            Some(TelemetryMode::Counters)
        );
        std::env::set_var("PTSBE_TELEMETRY", "0");
        assert_eq!(
            TelemetryConfig::from_env().map(|c| c.mode),
            Some(TelemetryMode::Off)
        );
        std::env::set_var("PTSBE_TELEMETRY", "bogus");
        assert_eq!(
            TelemetryConfig::from_env().map(|c| c.mode),
            Some(TelemetryMode::Off)
        );
        std::env::remove_var("PTSBE_TELEMETRY");
        assert_eq!(TelemetryConfig::from_env(), None);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _g = lock();
        configure(&TelemetryConfig::off());
        reset();
        {
            let _t = timer(Stage::Sample);
        }
        spanned(Stage::Route, || ());
        stage_span(
            Stage::QueueWait,
            1,
            None,
            Instant::now(),
            Duration::from_millis(1),
        );
        let s = snapshot();
        assert_eq!(s.mode, TelemetryMode::Off);
        assert!(s.spans.is_empty());
        assert!(s.hists.iter().all(|h| h.count == 0));
    }

    #[test]
    fn counters_mode_feeds_histograms_not_ring() {
        let _g = lock();
        configure(&TelemetryConfig::counters());
        reset();
        spanned(Stage::Route, || {
            std::thread::sleep(Duration::from_micros(50))
        });
        let s = snapshot();
        configure(&TelemetryConfig::off());
        assert_eq!(s.stage(Stage::Route).count, 1);
        assert!(s.stage(Stage::Route).sum_nanos >= 50_000);
        assert!(s.spans.is_empty(), "counters mode must not write spans");
    }

    #[test]
    fn spans_mode_scope_aggregates_and_envelopes() {
        let _g = lock();
        configure(&TelemetryConfig::spans());
        reset();
        {
            let _scope = task_scope(7, Some(3));
            for _ in 0..5 {
                let _t = timer(Stage::Prep);
                std::thread::sleep(Duration::from_micros(20));
            }
            let _t = timer(Stage::Sample);
        }
        let s = snapshot();
        configure(&TelemetryConfig::off());
        // Histograms saw every individual call…
        assert_eq!(s.stage(Stage::Prep).count, 5);
        assert_eq!(s.stage(Stage::Sample).count, 1);
        // …but the ring got ONE aggregated span per stage + the envelope.
        let prep: Vec<_> = s.spans.iter().filter(|x| x.stage == Stage::Prep).collect();
        assert_eq!(prep.len(), 1);
        assert_eq!(prep[0].job, 7);
        assert_eq!(prep[0].chunk, Some(3));
        assert_eq!(prep[0].dur_nanos, s.stage(Stage::Prep).sum_nanos);
        let chunk: Vec<_> = s.spans.iter().filter(|x| x.stage == Stage::Chunk).collect();
        assert_eq!(chunk.len(), 1);
        assert!(chunk[0].dur_nanos >= prep[0].dur_nanos);
        assert_eq!(s.job_stage_nanos(7, Stage::Prep), prep[0].dur_nanos);
    }

    #[test]
    fn plan_scope_emits_no_envelope() {
        let _g = lock();
        configure(&TelemetryConfig::spans());
        reset();
        {
            let _scope = task_scope(9, None);
            spanned(Stage::Compile, || ());
        }
        let s = snapshot();
        configure(&TelemetryConfig::off());
        assert!(s.spans.iter().all(|x| x.stage != Stage::Chunk));
        let compile: Vec<_> = s
            .spans
            .iter()
            .filter(|x| x.stage == Stage::Compile)
            .collect();
        assert_eq!(compile.len(), 1);
        assert_eq!(compile[0].job, 9, "identity must flow from the scope");
        assert_eq!(compile[0].chunk, None);
    }

    #[test]
    fn histogram_only_stage_stays_out_of_ring() {
        let _g = lock();
        configure(&TelemetryConfig::spans());
        reset();
        {
            let _scope = task_scope(4, Some(0));
            let _t = timer(Stage::MpsSvd);
        }
        let s = snapshot();
        configure(&TelemetryConfig::off());
        assert_eq!(s.stage(Stage::MpsSvd).count, 1);
        assert!(s.spans.iter().all(|x| x.stage != Stage::MpsSvd));
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _g = lock();
        configure(&TelemetryConfig::spans());
        reset();
        {
            let _outer = task_scope(1, Some(0));
            {
                let _inner = task_scope(2, Some(1));
                let _t = timer(Stage::Sample);
            }
            // Back in the outer scope.
            let _t = timer(Stage::Sample);
        }
        let s = snapshot();
        configure(&TelemetryConfig::off());
        assert_eq!(
            s.job_spans(1).filter(|x| x.stage == Stage::Sample).count(),
            1
        );
        assert_eq!(
            s.job_spans(2).filter(|x| x.stage == Stage::Sample).count(),
            1
        );
    }
}
