//! Exporters: Chrome trace-event JSON, JSONL spans, Prometheus text
//! format, and a human `Display` summary.
//!
//! The generic [`Metric`] family type is how callers feed their own
//! counters/gauges (the service converts its `MetricsSnapshot`) into
//! the text exporters without this crate depending on them.

use crate::{bucket_bounds, Stage, TelemetrySnapshot};
use std::fmt;

/// Kind of a [`Metric`] family member (Prometheus semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing over the process lifetime.
    Counter,
    /// Point-in-time value that can go up and down.
    Gauge,
}

impl MetricKind {
    fn prom(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sample of a metric family: name + help + kind + labels + value.
/// Families (same name, different labels) should be contiguous in the
/// slice handed to [`prometheus`].
#[derive(Debug, Clone)]
pub struct Metric {
    /// Prometheus-style snake_case name (e.g. `ptsbe_jobs_done`).
    pub name: &'static str,
    /// One-line description emitted as `# HELP`.
    pub help: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs, e.g. `("engine", "mps-tree")`.
    pub labels: Vec<(&'static str, String)>,
    /// The sample value.
    pub value: f64,
}

impl Metric {
    /// A label-less counter sample.
    pub fn counter(name: &'static str, help: &'static str, value: f64) -> Self {
        Self {
            name,
            help,
            kind: MetricKind::Counter,
            labels: Vec::new(),
            value,
        }
    }

    /// A label-less gauge sample.
    pub fn gauge(name: &'static str, help: &'static str, value: f64) -> Self {
        Self {
            name,
            help,
            kind: MetricKind::Gauge,
            labels: Vec::new(),
            value,
        }
    }

    /// Attach a label pair (builder-style).
    pub fn with_label(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.labels.push((key, value.into()));
        self
    }

    fn prom_line(&self, out: &mut String) {
        out.push_str(self.name);
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                // Prometheus label escaping: backslash, quote, newline.
                for c in v.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        if self.value.fract() == 0.0 && self.value.abs() < 1e15 {
            out.push_str(&format!("{}", self.value as i64));
        } else {
            out.push_str(&format!("{}", self.value));
        }
        out.push('\n');
    }
}

/// Render metric families plus the snapshot's stage histograms in the
/// Prometheus text exposition format. Histograms become
/// `ptsbe_stage_duration_seconds` with cumulative `le` buckets (seconds,
/// since Prometheus convention is base units) plus `_sum`/`_count`.
pub fn prometheus(metrics: &[Metric], snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&'static str> = None;
    for m in metrics {
        if last_family != Some(m.name) {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.prom()));
            last_family = Some(m.name);
        }
        m.prom_line(&mut out);
    }

    out.push_str("# HELP ptsbe_stage_duration_seconds Per-stage latency histogram.\n");
    out.push_str("# TYPE ptsbe_stage_duration_seconds histogram\n");
    for stage in Stage::ALL {
        let h = snap.stage(stage);
        if h.count == 0 {
            continue;
        }
        let label = stage.label();
        let mut cum = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            let le = bucket_bounds(i).1 as f64 / 1e9;
            out.push_str(&format!(
                "ptsbe_stage_duration_seconds_bucket{{stage=\"{label}\",le=\"{le}\"}} {cum}\n"
            ));
        }
        out.push_str(&format!(
            "ptsbe_stage_duration_seconds_bucket{{stage=\"{label}\",le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!(
            "ptsbe_stage_duration_seconds_sum{{stage=\"{label}\"}} {}\n",
            h.sum_nanos as f64 / 1e9
        ));
        out.push_str(&format!(
            "ptsbe_stage_duration_seconds_count{{stage=\"{label}\"}} {}\n",
            h.count
        ));
    }

    out.push_str("# HELP ptsbe_spans_dropped Spans overwritten by ring wrap since last reset.\n");
    out.push_str("# TYPE ptsbe_spans_dropped gauge\n");
    out.push_str(&format!("ptsbe_spans_dropped {}\n", snap.dropped_spans));
    out
}

impl TelemetrySnapshot {
    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object
    /// format): one complete (`"ph":"X"`) event per span, `ts`/`dur` in
    /// microseconds, thread rows keyed by recorder thread ordinal. Open
    /// in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"ptsbe\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"job\":{}",
                s.stage.label(),
                s.start_micros,
                // Round up so sub-µs spans stay visible.
                s.dur_nanos.div_ceil(1000),
                s.tid,
                s.job,
            ));
            if let Some(c) = s.chunk {
                out.push_str(&format!(",\"chunk\":{c}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// One JSON object per line per span — greppable/streamable form of
    /// the same data as [`TelemetrySnapshot::chrome_trace`].
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"job\":{},\"chunk\":{},\"tid\":{},\
                 \"start_micros\":{},\"dur_nanos\":{}}}\n",
                s.stage.label(),
                s.job,
                s.chunk.map_or_else(|| "null".into(), |c| c.to_string()),
                s.tid,
                s.start_micros,
                s.dur_nanos,
            ));
        }
        out
    }
}

/// Human-readable report: a counters table from the supplied metric
/// families plus a per-stage latency table from the snapshot. This is
/// what `MetricsSnapshot::summary()` displays.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Metric families to list (order preserved).
    pub metrics: Vec<Metric>,
    /// Stage histograms/spans to tabulate.
    pub snapshot: TelemetrySnapshot,
}

/// Render nanoseconds with a human unit (ns/µs/ms/s).
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", n / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── metrics ───────────────────────────────────────────")?;
        for m in &self.metrics {
            let mut name = m.name.to_string();
            if !m.labels.is_empty() {
                let labels: Vec<String> =
                    m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                name.push_str(&format!("{{{}}}", labels.join(",")));
            }
            let value = if m.value.fract() == 0.0 && m.value.abs() < 1e15 {
                format!("{}", m.value as i64)
            } else {
                format!("{:.3}", m.value)
            };
            writeln!(f, "  {name:<44} {value:>14}")?;
        }
        let any = Stage::ALL.iter().any(|s| self.snapshot.stage(*s).count > 0);
        if any {
            writeln!(f, "── stage latency ─────────────────────────────────────")?;
            writeln!(
                f,
                "  {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
                "stage", "count", "p50", "p90", "p99", "max", "total"
            )?;
            for stage in Stage::ALL {
                let h = self.snapshot.stage(stage);
                if h.count == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
                    stage.label(),
                    h.count,
                    fmt_nanos(h.p50()),
                    fmt_nanos(h.p90()),
                    fmt_nanos(h.p99()),
                    fmt_nanos(h.max_nanos),
                    fmt_nanos(h.sum_nanos),
                )?;
            }
            if self.snapshot.dropped_spans > 0 {
                writeln!(
                    f,
                    "  ({} spans dropped by ring wrap; raise PTSBE_TELEMETRY_SPANS)",
                    self.snapshot.dropped_spans
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistSnapshot, Span, TelemetryMode};

    fn snap_with(spans: Vec<Span>, route_samples: &[u64]) -> TelemetrySnapshot {
        let h = crate::LogHistogram::new();
        for &v in route_samples {
            h.record(v);
        }
        let mut hists = [HistSnapshot::empty(); Stage::COUNT];
        hists[Stage::Route.index()] = h.snapshot();
        TelemetrySnapshot {
            mode: TelemetryMode::Spans,
            hists,
            spans,
            dropped_spans: 3,
            span_capacity: 64,
        }
    }
    use crate::Stage;

    #[test]
    fn chrome_trace_shape() {
        let snap = snap_with(
            vec![
                Span {
                    stage: Stage::Route,
                    job: 1,
                    chunk: None,
                    tid: 2,
                    start_micros: 10,
                    dur_nanos: 1_500,
                },
                Span {
                    stage: Stage::Sample,
                    job: 1,
                    chunk: Some(0),
                    tid: 3,
                    start_micros: 20,
                    dur_nanos: 2_000_000,
                },
            ],
            &[1_500],
        );
        let t = snap.chrome_trace();
        assert!(t.starts_with('{') && t.ends_with('}'));
        assert!(t.contains("\"traceEvents\":["));
        assert!(t.contains("\"name\":\"route\""));
        assert!(t.contains("\"ph\":\"X\""));
        // 1500 ns rounds up to 2 µs so the span stays visible.
        assert!(t.contains("\"ts\":10,\"dur\":2"));
        assert!(t.contains("\"chunk\":0"));
        let jsonl = snap.spans_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"chunk\":null"));
        assert!(jsonl.contains("\"chunk\":0"));
    }

    #[test]
    fn prometheus_families_and_histogram() {
        let snap = snap_with(Vec::new(), &[500, 1_500, 3_000_000]);
        let metrics = vec![
            Metric::counter("ptsbe_jobs_done", "Jobs completed.", 7.0),
            Metric::counter("ptsbe_engine_jobs", "Jobs per engine.", 4.0)
                .with_label("engine", "frame"),
            Metric::counter("ptsbe_engine_jobs", "Jobs per engine.", 3.0)
                .with_label("engine", "mps-tree"),
            Metric::gauge("ptsbe_peak_active_jobs", "Peak concurrent jobs.", 2.0),
        ];
        let text = prometheus(&metrics, &snap);
        // HELP/TYPE once per family, not per sample.
        assert_eq!(text.matches("# TYPE ptsbe_engine_jobs counter").count(), 1);
        assert!(text.contains("ptsbe_engine_jobs{engine=\"frame\"} 4\n"));
        assert!(text.contains("ptsbe_engine_jobs{engine=\"mps-tree\"} 3\n"));
        assert!(text.contains("# TYPE ptsbe_stage_duration_seconds histogram"));
        assert!(
            text.contains("ptsbe_stage_duration_seconds_bucket{stage=\"route\",le=\"+Inf\"} 3\n")
        );
        assert!(text.contains("ptsbe_stage_duration_seconds_count{stage=\"route\"} 3\n"));
        assert!(text.contains("ptsbe_spans_dropped 3\n"));
        // Cumulative buckets end at count.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("ptsbe_stage_duration_seconds_bucket{stage=\"route\""))
            .unwrap();
        assert!(last_bucket.ends_with(" 3"));
    }

    #[test]
    fn summary_display_lists_stages() {
        let snap = snap_with(Vec::new(), &[1_000, 2_000]);
        let s = Summary {
            metrics: vec![Metric::counter("ptsbe_jobs_done", "Jobs completed.", 2.0)],
            snapshot: snap,
        };
        let text = format!("{s}");
        assert!(text.contains("ptsbe_jobs_done"));
        assert!(text.contains("stage latency"));
        assert!(text.contains("route"));
        assert!(text.contains("spans dropped"));
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(3_210_000_000), "3.21s");
    }
}
