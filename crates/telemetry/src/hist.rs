//! Log-bucketed latency histograms.
//!
//! Durations are recorded in nanoseconds into 64 power-of-two buckets:
//! bucket 0 holds the value 0 and bucket `b ≥ 1` holds
//! `[2^(b-1), 2^b)` ns, so the full `u64` range is covered with at most
//! a 2× relative quantile error — plenty for stage-latency telemetry,
//! and it keeps every cell an `AtomicU64` so recording is one relaxed
//! `fetch_add` per field and never allocates or locks. Snapshots are
//! plain arrays that merge associatively, which is what lets per-shard
//! histograms fold into a global one without coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (covers the full `u64` ns range).
pub const BUCKETS: usize = 64;

/// Bucket index for a duration of `nanos`: 0 for 0, else
/// `floor(log2(nanos)) + 1`, clamped to the last bucket.
pub fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        (BUCKETS - nanos.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `(lower, upper)` bounds of bucket `i`, in nanoseconds.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index out of range");
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1 << (i - 1), u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

/// A lock-free latency histogram: every cell is an `AtomicU64`, so
/// concurrent recorders never contend on anything wider than a cache
/// line of counters, and reading is a point-in-time copy.
#[derive(Debug)]
pub struct LogHistogram {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // repeat-element seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            count: ZERO,
            sum_nanos: ZERO,
            max_nanos: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Record one duration (nanoseconds). Lock- and allocation-free.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy. Cells are read individually (no global lock),
    /// so a snapshot racing a recorder may be off by the in-flight
    /// sample — fine for observability, never for accounting.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Zero every cell (bench/test isolation).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain-value histogram copy: mergeable, queryable, serializable by
/// hand (it is just counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all recorded durations (ns).
    pub sum_nanos: u64,
    /// Largest recorded duration (ns).
    pub max_nanos: u64,
    /// Per-bucket counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// The empty snapshot (identity element of [`HistSnapshot::merge`]).
    pub const fn empty() -> Self {
        Self {
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Fold `other` into `self`. Merging shard snapshots in any order
    /// equals one histogram fed the union of samples (bucket counts and
    /// sums are additive, max is associative) — the property the shard
    /// proptest pins.
    pub fn merge(&mut self, other: &HistSnapshot) {
        // Wrapping, like the `AtomicU64::fetch_add` cells it mirrors —
        // keeps merge-of-shards bit-identical to the union histogram
        // even if a sum ever wraps (≈ 585 years of recorded time).
        self.count = self.count.wrapping_add(other.count);
        self.sum_nanos = self.sum_nanos.wrapping_add(other.sum_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Quantile estimate in nanoseconds: the upper bound of the bucket
    /// the `q`-th sample falls in, clamped to the observed max (so
    /// `quantile(1.0) == max_nanos` exactly). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_bounds(i).1.min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Median estimate (ns).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (ns).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // 2^k sits in bucket k+1 (lower edge), 2^k - 1 in bucket k.
        for k in 1..62 {
            assert_eq!(bucket_index(1u64 << k), k + 1, "2^{k}");
            assert_eq!(bucket_index((1u64 << k) - 1), k, "2^{k}-1");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Bounds are consistent with the index map.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn record_and_query() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 1, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum_nanos, 1_001_102);
        assert_eq!(s.max_nanos, 1_000_000);
        assert_eq!(s.quantile(1.0), 1_000_000);
        // p50 = 3rd sample of 6 → the bucket holding 1 (upper bound 1).
        assert_eq!(s.p50(), 1);
        assert!(s.p99() >= 1000);
        assert!((s.mean_nanos() - 1_001_102.0 / 6.0).abs() < 1e-9);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn quantile_upper_bound_property() {
        // The quantile estimate never undershoots the true quantile's
        // bucket lower bound and never overshoots the observed max.
        let h = LogHistogram::new();
        let mut vals: Vec<u64> = (0..1000).map(|i| i * i * 37 + 5).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let s = h.snapshot();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = s.quantile(q);
            let true_v = vals[((q * 1000.0).ceil() as usize - 1).min(999)];
            let (lo, _) = bucket_bounds(bucket_index(true_v));
            assert!(est >= lo, "q={q}: est {est} < bucket lower {lo}");
            assert!(est <= s.max_nanos, "q={q}: est {est} > max");
        }
    }

    #[test]
    fn merge_is_union() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let all = LogHistogram::new();
        for v in 0..500u64 {
            let h = if v % 3 == 0 { &a } else { &b };
            h.record(v * 17);
            all.record(v * 17);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        // Identity element.
        let mut with_empty = merged;
        with_empty.merge(&HistSnapshot::empty());
        assert_eq!(with_empty, merged);
    }
}
