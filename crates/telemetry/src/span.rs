//! The span recorder: a bounded lock-free ring of per-stage spans plus
//! the thread-local task scope that gives hooks deep in the executors a
//! job/chunk identity without any API plumbing.
//!
//! # Ring design
//!
//! Every slot is five `AtomicU64`s guarded by a per-slot sequence number
//! (a seqlock): a writer takes a global ticket with one `fetch_add`,
//! marks its slot odd, stores the fields, and marks it even again.
//! Readers copy the fields and keep the copy only when the sequence was
//! the expected even value before *and* after — a torn read (writer
//! wrapped the ring mid-copy) is simply skipped. Writers never wait,
//! never allocate, and never lock; when the ring wraps, the oldest spans
//! are overwritten and counted as dropped.

use crate::{Stage, NO_JOB};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One recorded stage interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Pipeline stage this interval belongs to.
    pub stage: Stage,
    /// Job id ([`NO_JOB`] when the hook fired outside any job context).
    pub job: u64,
    /// Chunk index within the job, when the stage ran inside a chunk.
    pub chunk: Option<u32>,
    /// Small per-thread ordinal (not an OS thread id) — the trace lane.
    pub tid: u32,
    /// Start, in microseconds since the telemetry epoch.
    pub start_micros: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
}

struct Slot {
    seq: AtomicU64,
    job: AtomicU64,
    start_micros: AtomicU64,
    dur_nanos: AtomicU64,
    /// Packed `stage | chunk << 8 | tid << 40 | has_chunk << 56`.
    meta: AtomicU64,
}

fn pack_meta(stage: Stage, chunk: Option<u32>, tid: u32) -> u64 {
    stage as u64
        | (u64::from(chunk.unwrap_or(0)) << 8)
        | (u64::from(tid & 0xFFFF) << 40)
        | (u64::from(chunk.is_some()) << 56)
}

fn unpack_meta(meta: u64) -> (Option<Stage>, Option<u32>, u32) {
    let chunk = ((meta >> 56) & 1 == 1).then_some((meta >> 8) as u32);
    (
        Stage::from_index((meta & 0xFF) as u8),
        chunk,
        ((meta >> 40) & 0xFFFF) as u32,
    )
}

pub(crate) struct SpanRing {
    slots: Box<[Slot]>,
    /// Next write ticket (monotonic; slot = ticket mod capacity).
    head: AtomicU64,
    /// Tickets below this are invisible to readers (moved up by reset).
    floor: AtomicU64,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    job: AtomicU64::new(0),
                    start_micros: AtomicU64::new(0),
                    dur_nanos: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn push(
        &self,
        stage: Stage,
        job: u64,
        chunk: Option<u32>,
        start_micros: u64,
        dur_nanos: u64,
    ) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Odd = write in progress: readers that observe it skip the slot.
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.job.store(job, Ordering::Relaxed);
        slot.start_micros.store(start_micros, Ordering::Relaxed);
        slot.dur_nanos.store(dur_nanos, Ordering::Relaxed);
        slot.meta
            .store(pack_meta(stage, chunk, thread_ordinal()), Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Copy out every readable span (ticket order, then sorted by start)
    /// plus the count overwritten since the last reset.
    pub(crate) fn collect(&self) -> (Vec<Span>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let floor = self.floor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = floor.max(head.saturating_sub(cap));
        let dropped = lo - floor;
        let mut out = Vec::with_capacity((head - lo) as usize);
        for ticket in lo..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let want = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue; // mid-write, or already overwritten by a wrap
            }
            let job = slot.job.load(Ordering::Relaxed);
            let start_micros = slot.start_micros.load(Ordering::Relaxed);
            let dur_nanos = slot.dur_nanos.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != want {
                continue; // torn by a concurrent wrap: discard the copy
            }
            let (stage, chunk, tid) = unpack_meta(meta);
            let Some(stage) = stage else { continue };
            out.push(Span {
                stage,
                job,
                chunk,
                tid,
                start_micros,
                dur_nanos,
            });
        }
        out.sort_by_key(|s| (s.start_micros, s.tid));
        (out, dropped)
    }

    /// Hide everything recorded so far (bench/test isolation). O(1):
    /// just moves the visibility floor; slots are reused in place.
    pub(crate) fn reset(&self) {
        self.floor
            .store(self.head.load(Ordering::Acquire), Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Thread-local task scope.

/// Sentinel chunk value meaning "no chunk" inside the packed scope.
const NO_CHUNK: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct ScopeData {
    job: u64,
    chunk: u32,
    start: Instant,
    /// Per-stage accumulated nanoseconds for aggregated stages.
    acc: [u64; Stage::COUNT],
}

thread_local! {
    static SCOPE: Cell<Option<ScopeData>> = const { Cell::new(None) };
    static THREAD_ORDINAL: Cell<u32> = const { Cell::new(0) };
}

static NEXT_ORDINAL: AtomicU32 = AtomicU32::new(1);

/// Small dense per-thread ordinal (first use assigns the next integer) —
/// stable trace lanes without leaking OS thread ids.
pub(crate) fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// The (job, chunk) identity of the innermost active [`TaskScope`] on
/// this thread ([`NO_JOB`] outside any scope).
pub(crate) fn current_ids() -> (u64, Option<u32>) {
    SCOPE.with(|s| {
        s.get().map_or((NO_JOB, None), |d| {
            (d.job, (d.chunk != NO_CHUNK).then_some(d.chunk))
        })
    })
}

/// Fold `nanos` into the active scope's accumulator for `stage`.
/// Returns false when no scope is active on this thread (the caller
/// then falls back to histogram-only recording).
pub(crate) fn scope_accumulate(stage: Stage, nanos: u64) -> bool {
    SCOPE.with(|s| match s.get() {
        Some(mut d) => {
            d.acc[stage.index()] += nanos;
            s.set(Some(d));
            true
        }
        None => false,
    })
}

/// RAII guard binding a (job, chunk) identity to the current thread:
/// hooks in the executors and backends record against it without any
/// parameter plumbing. While the scope is live, aggregated stages
/// ([`Stage::is_aggregated`]) accumulate; on drop they are emitted as
/// one span per stage (laid out back-to-back from the scope's start so
/// a trace viewer shows the chunk's decomposition), plus a
/// [`Stage::Chunk`] envelope span when the scope names a chunk.
///
/// Scopes nest (the previous scope is restored on drop). Created inert
/// when telemetry is off — construction is then two thread-local reads.
pub struct TaskScope {
    /// `None` = inert guard (telemetry was off at construction).
    prev: Option<Option<ScopeData>>,
}

pub(crate) fn enter(job: u64, chunk: Option<u32>) -> TaskScope {
    if !crate::enabled() {
        return TaskScope { prev: None };
    }
    let data = ScopeData {
        job,
        chunk: chunk.unwrap_or(NO_CHUNK),
        start: Instant::now(),
        acc: [0; Stage::COUNT],
    };
    TaskScope {
        prev: Some(SCOPE.with(|s| s.replace(Some(data)))),
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        let Some(prev) = self.prev.take() else { return };
        let data = SCOPE.with(|s| s.replace(prev));
        let Some(d) = data else { return };
        // The mode may have flipped mid-scope; emit with whatever is on
        // now (worst case a partial chunk's spans are skipped).
        if !crate::enabled() {
            return;
        }
        let g = crate::global();
        let chunk = (d.chunk != NO_CHUNK).then_some(d.chunk);
        let spans = crate::spans_enabled();
        if spans {
            // Aggregated stages laid out sequentially from the scope
            // start: the offsets are synthetic (individual calls
            // interleave in reality) but the widths are exact, which is
            // what makes the chunk envelope decompose visually.
            let mut cursor = d.start;
            for stage in Stage::ALL {
                if !stage.is_aggregated() {
                    continue;
                }
                let nanos = d.acc[stage.index()];
                if nanos == 0 {
                    continue;
                }
                g.push_span(stage, d.job, chunk, cursor, nanos);
                cursor += Duration::from_nanos(nanos);
            }
        }
        if chunk.is_some() {
            let total = duration_nanos(d.start.elapsed());
            g.hist(Stage::Chunk).record(total);
            if spans {
                g.push_span(Stage::Chunk, d.job, chunk, d.start, total);
            }
        }
    }
}

/// Saturating `Duration` → whole nanoseconds.
pub(crate) fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_pack_roundtrip() {
        for (stage, chunk, tid) in [
            (Stage::Prep, Some(0u32), 1u32),
            (Stage::Sample, Some(123_456), 7),
            (Stage::QueueWait, None, 65_535),
            (Stage::Chunk, Some(0xFFFF_FFFE), 3),
        ] {
            let (s, c, t) = unpack_meta(pack_meta(stage, chunk, tid));
            assert_eq!(s, Some(stage));
            assert_eq!(c, chunk);
            assert_eq!(t, tid & 0xFFFF);
        }
    }

    #[test]
    fn ring_records_and_wraps() {
        let ring = SpanRing::new(4);
        for i in 0..3u64 {
            ring.push(Stage::Sample, i, None, i * 10, 5);
        }
        let (spans, dropped) = ring.collect();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].job, 0);
        assert_eq!(spans[2].start_micros, 20);
        // Overflow the ring: the oldest spans are dropped, newest kept.
        for i in 3..10u64 {
            ring.push(Stage::Sample, i, Some(2), i * 10, 5);
        }
        let (spans, dropped) = ring.collect();
        assert_eq!(dropped, 6);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].job, 6);
        assert_eq!(spans[3].job, 9);
        assert_eq!(spans[3].chunk, Some(2));
        // Reset hides everything but keeps recording.
        ring.reset();
        let (spans, dropped) = ring.collect();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
        ring.push(Stage::Prep, 42, None, 1, 1);
        let (spans, _) = ring.collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].job, 42);
    }

    #[test]
    fn ring_is_safe_under_concurrent_writers() {
        let ring = std::sync::Arc::new(SpanRing::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    ring.push(Stage::Sample, t, Some(i as u32), i, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (spans, dropped) = ring.collect();
        // At most the ring capacity remains visible (a slot whose final
        // write raced a wrap may be skipped as torn — consistency over
        // completeness), and every readable slot holds a fully-written
        // record.
        assert_eq!(dropped, 4000 - 64);
        assert!(spans.len() <= 64);
        for s in &spans {
            assert!(s.job < 4);
            assert_eq!(s.dur_nanos, 1);
        }
    }
}
