//! Property tests for the log-bucketed histogram: sharded recording
//! merges to the union, and boundary values land in the right bucket.

use proptest::prelude::*;
use ptsbe_telemetry::{bucket_bounds, bucket_index, HistSnapshot, LogHistogram, BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Splitting samples across shards and merging the snapshots (in
    /// either order) equals one histogram fed the union.
    #[test]
    fn merge_of_shards_is_union(
        values in prop::collection::vec(0u64..u64::MAX, 1..200),
        split in 0u64..u64::MAX,
    ) {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let union = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            let shard = if (split >> (i % 64)) & 1 == 0 { &a } else { &b };
            shard.record(v);
            union.record(v);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        prop_assert_eq!(ab, union.snapshot());
        prop_assert_eq!(ba, union.snapshot());
        // Empty is the identity.
        let mut with_empty = ab;
        with_empty.merge(&HistSnapshot::empty());
        prop_assert_eq!(with_empty, ab);
    }

    /// Every value falls inside the bounds of its own bucket, and the
    /// bucket map is monotone.
    #[test]
    // Odd-multiplier wrap is a bijection on u64, so this reaches the
    // full range (incl. u64::MAX) from the shim's exclusive range.
    fn values_land_inside_their_bucket(
        v in (0u64..u64::MAX).prop_map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    ) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
        if v > 0 {
            prop_assert!(bucket_index(v - 1) <= i);
        }
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
    }

    /// Power-of-two boundaries: 2^k is the *lower* edge of bucket k+1;
    /// 2^k − 1 tops bucket k.
    #[test]
    fn boundary_placement(k in 1usize..62) {
        let edge = 1u64 << k;
        prop_assert_eq!(bucket_index(edge), k + 1);
        prop_assert_eq!(bucket_index(edge - 1), k);
        prop_assert_eq!(bucket_bounds(k + 1).0, edge);
        prop_assert_eq!(bucket_bounds(k).1, edge - 1);
    }

    /// Quantiles never exceed the observed max and are monotone in q.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..10_000_000_000, 1..100),
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        prop_assert_eq!(*qs.last().unwrap(), s.max_nanos);
        prop_assert!(qs.iter().all(|&q| q <= s.max_nanos));
    }
}
