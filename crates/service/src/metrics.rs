//! Service-level counters: job lifecycle, delivery volume, per-engine
//! routing census, and admission pressure.

use crate::cache::CacheStats;
use crate::router::EngineKind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Internal atomic counters (one instance per service).
pub(crate) struct ServiceMetrics {
    pub(crate) started_at: Instant,
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_done: AtomicU64,
    pub(crate) jobs_failed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) records_emitted: AtomicU64,
    pub(crate) shots_emitted: AtomicU64,
    pub(crate) engine_jobs: [AtomicU64; EngineKind::COUNT],
    pub(crate) peak_active_jobs: AtomicUsize,
    /// MPS jobs re-routed to a dense engine after the truncation probe
    /// blew their cumulative budget.
    pub(crate) mps_probe_reroutes: AtomicU64,
    /// MPS jobs refused outright (budget blown, no dense fallback).
    pub(crate) mps_budget_refusals: AtomicU64,
    /// Largest per-trajectory truncation error delivered (f64 bits:
    /// non-negative IEEE floats order like their bit patterns, so
    /// `fetch_max` on bits is max on values).
    pub(crate) peak_trunc_error_bits: AtomicU64,
    /// Largest bond dimension any delivered MPS trajectory reached.
    pub(crate) peak_bond_reached: AtomicUsize,
    /// Jobs that reached the `TimedOut` terminal state.
    pub(crate) jobs_timed_out: AtomicU64,
    /// Chunk executions retried after a recoverable failure.
    pub(crate) chunk_retries: AtomicU64,
    /// Chunks abandoned at a deadline boundary (their job timed out).
    pub(crate) chunks_timed_out: AtomicU64,
    /// Worker threads respawned by the supervisor after a worker died.
    pub(crate) workers_respawned: AtomicU64,
    /// Jobs re-routed to their dense fallback engine after a fatal
    /// engine failure (graceful degradation).
    pub(crate) engine_fallbacks: AtomicU64,
    /// Transient sink-write failures absorbed by the emitter's retry.
    pub(crate) sink_write_retries: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started_at: Instant::now(),
            jobs_submitted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            records_emitted: AtomicU64::new(0),
            shots_emitted: AtomicU64::new(0),
            engine_jobs: std::array::from_fn(|_| AtomicU64::new(0)),
            peak_active_jobs: AtomicUsize::new(0),
            mps_probe_reroutes: AtomicU64::new(0),
            mps_budget_refusals: AtomicU64::new(0),
            peak_trunc_error_bits: AtomicU64::new(0),
            peak_bond_reached: AtomicUsize::new(0),
            jobs_timed_out: AtomicU64::new(0),
            chunk_retries: AtomicU64::new(0),
            chunks_timed_out: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            engine_fallbacks: AtomicU64::new(0),
            sink_write_retries: AtomicU64::new(0),
        }
    }

    pub(crate) fn note_active(&self, active: usize) {
        self.peak_active_jobs.fetch_max(active, Ordering::Relaxed);
    }

    /// Fold one delivered trajectory's truncation stats into the peaks.
    pub(crate) fn note_truncation(&self, t: &ptsbe_core::backend::TruncationStats) {
        self.peak_trunc_error_bits
            .fetch_max(t.trunc_error.max(0.0).to_bits(), Ordering::Relaxed);
        self.peak_bond_reached
            .fetch_max(t.max_bond_reached, Ordering::Relaxed);
    }
}

/// Jobs routed to each engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCensus {
    /// Pauli-frame bulk sampler jobs.
    pub frame: u64,
    /// Statevector tree-executor jobs.
    pub tree: u64,
    /// Batch-major statevector jobs.
    pub batch_major: u64,
    /// Flat (forced) statevector jobs.
    pub flat: u64,
    /// MPS tree-executor jobs.
    pub mps_tree: u64,
}

/// Point-in-time snapshot of service health.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Jobs admitted since start.
    pub jobs_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Records delivered to sinks.
    pub records_emitted: u64,
    /// Shots delivered to sinks.
    pub shots_emitted: u64,
    /// Per-engine routed-job counts.
    pub engines: EngineCensus,
    /// Highest concurrent admitted-job count observed.
    pub peak_active_jobs: usize,
    /// MPS jobs re-routed to a dense engine by the truncation probe.
    pub mps_probe_reroutes: u64,
    /// MPS jobs refused because their truncation budget was blown and
    /// no dense fallback was feasible.
    pub mps_budget_refusals: u64,
    /// Largest per-trajectory truncation error delivered (0 when no MPS
    /// trajectory has run).
    pub peak_trunc_error: f64,
    /// Largest bond dimension any delivered MPS trajectory reached.
    pub peak_bond_reached: usize,
    /// Jobs that terminated `TimedOut` (deadline expired).
    pub jobs_timed_out: u64,
    /// Chunk executions retried after a recoverable failure (injected or
    /// real panic, transient error). Retries are output-neutral: a
    /// retried chunk re-executes bitwise identically.
    pub chunk_retries: u64,
    /// Chunks abandoned at a deadline boundary.
    pub chunks_timed_out: u64,
    /// Worker threads respawned by the supervisor.
    pub workers_respawned: u64,
    /// Jobs that gracefully degraded to their dense fallback engine.
    pub engine_fallbacks: u64,
    /// Transient sink-write failures absorbed by bounded retry.
    pub sink_write_retries: u64,
    /// Compile/plan cache counters.
    pub cache: CacheStats,
    /// Service uptime in seconds.
    pub uptime_secs: f64,
}

impl MetricsSnapshot {
    /// Mean delivered-shot throughput over the service lifetime.
    pub fn shots_per_sec(&self) -> f64 {
        if self.uptime_secs <= 0.0 {
            return 0.0;
        }
        self.shots_emitted as f64 / self.uptime_secs
    }

    pub(crate) fn from_counters(m: &ServiceMetrics, cache: CacheStats) -> Self {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        Self {
            jobs_submitted: load(&m.jobs_submitted),
            jobs_done: load(&m.jobs_done),
            jobs_failed: load(&m.jobs_failed),
            jobs_cancelled: load(&m.jobs_cancelled),
            records_emitted: load(&m.records_emitted),
            shots_emitted: load(&m.shots_emitted),
            engines: EngineCensus {
                frame: load(&m.engine_jobs[EngineKind::Frame.index()]),
                tree: load(&m.engine_jobs[EngineKind::Tree.index()]),
                batch_major: load(&m.engine_jobs[EngineKind::BatchMajor.index()]),
                flat: load(&m.engine_jobs[EngineKind::Flat.index()]),
                mps_tree: load(&m.engine_jobs[EngineKind::MpsTree.index()]),
            },
            peak_active_jobs: m.peak_active_jobs.load(Ordering::Relaxed),
            mps_probe_reroutes: load(&m.mps_probe_reroutes),
            mps_budget_refusals: load(&m.mps_budget_refusals),
            peak_trunc_error: f64::from_bits(m.peak_trunc_error_bits.load(Ordering::Relaxed)),
            peak_bond_reached: m.peak_bond_reached.load(Ordering::Relaxed),
            jobs_timed_out: load(&m.jobs_timed_out),
            chunk_retries: load(&m.chunk_retries),
            chunks_timed_out: load(&m.chunks_timed_out),
            workers_respawned: load(&m.workers_respawned),
            engine_fallbacks: load(&m.engine_fallbacks),
            sink_write_retries: load(&m.sink_write_retries),
            cache,
            uptime_secs: m.started_at.elapsed().as_secs_f64(),
        }
    }
}
