//! Service-level counters: job lifecycle, delivery volume, per-engine
//! routing census, and admission pressure — plus the exporter surface
//! ([`MetricsSnapshot::prometheus`], [`MetricsSnapshot::summary`],
//! [`MetricsSnapshot::rate_since`]) built on `ptsbe_telemetry`.

use crate::cache::CacheStats;
use crate::router::EngineKind;
use ptsbe_telemetry::{Metric, Summary};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Internal atomic counters (one instance per service).
pub(crate) struct ServiceMetrics {
    pub(crate) started_at: Instant,
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_done: AtomicU64,
    pub(crate) jobs_failed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) records_emitted: AtomicU64,
    pub(crate) shots_emitted: AtomicU64,
    pub(crate) engine_jobs: [AtomicU64; EngineKind::COUNT],
    pub(crate) peak_active_jobs: AtomicUsize,
    /// MPS jobs re-routed to a dense engine after the truncation probe
    /// blew their cumulative budget.
    pub(crate) mps_probe_reroutes: AtomicU64,
    /// MPS jobs refused outright (budget blown, no dense fallback).
    pub(crate) mps_budget_refusals: AtomicU64,
    /// Largest per-trajectory truncation error delivered (f64 bits:
    /// non-negative IEEE floats order like their bit patterns, so
    /// `fetch_max` on bits is max on values).
    pub(crate) peak_trunc_error_bits: AtomicU64,
    /// Largest bond dimension any delivered MPS trajectory reached.
    pub(crate) peak_bond_reached: AtomicUsize,
    /// Jobs that reached the `TimedOut` terminal state.
    pub(crate) jobs_timed_out: AtomicU64,
    /// Chunk executions retried after a recoverable failure.
    pub(crate) chunk_retries: AtomicU64,
    /// Chunks abandoned at a deadline boundary (their job timed out).
    pub(crate) chunks_timed_out: AtomicU64,
    /// Worker threads respawned by the supervisor after a worker died.
    pub(crate) workers_respawned: AtomicU64,
    /// Jobs re-routed to their dense fallback engine after a fatal
    /// engine failure (graceful degradation).
    pub(crate) engine_fallbacks: AtomicU64,
    /// Transient sink-write failures absorbed by the emitter's retry.
    pub(crate) sink_write_retries: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started_at: Instant::now(),
            jobs_submitted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            records_emitted: AtomicU64::new(0),
            shots_emitted: AtomicU64::new(0),
            engine_jobs: std::array::from_fn(|_| AtomicU64::new(0)),
            peak_active_jobs: AtomicUsize::new(0),
            mps_probe_reroutes: AtomicU64::new(0),
            mps_budget_refusals: AtomicU64::new(0),
            peak_trunc_error_bits: AtomicU64::new(0),
            peak_bond_reached: AtomicUsize::new(0),
            jobs_timed_out: AtomicU64::new(0),
            chunk_retries: AtomicU64::new(0),
            chunks_timed_out: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            engine_fallbacks: AtomicU64::new(0),
            sink_write_retries: AtomicU64::new(0),
        }
    }

    pub(crate) fn note_active(&self, active: usize) {
        self.peak_active_jobs.fetch_max(active, Ordering::Relaxed);
    }

    /// Fold one delivered trajectory's truncation stats into the peaks.
    pub(crate) fn note_truncation(&self, t: &ptsbe_core::backend::TruncationStats) {
        self.peak_trunc_error_bits
            .fetch_max(t.trunc_error.max(0.0).to_bits(), Ordering::Relaxed);
        self.peak_bond_reached
            .fetch_max(t.max_bond_reached, Ordering::Relaxed);
    }
}

/// Jobs routed to each engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCensus {
    /// Pauli-frame bulk sampler jobs.
    pub frame: u64,
    /// Statevector tree-executor jobs.
    pub tree: u64,
    /// Batch-major statevector jobs.
    pub batch_major: u64,
    /// Flat (forced) statevector jobs.
    pub flat: u64,
    /// MPS tree-executor jobs.
    pub mps_tree: u64,
}

/// Point-in-time snapshot of service health.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Jobs admitted since start.
    pub jobs_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Records delivered to sinks.
    pub records_emitted: u64,
    /// Shots delivered to sinks.
    pub shots_emitted: u64,
    /// Per-engine routed-job counts.
    pub engines: EngineCensus,
    /// Highest concurrent admitted-job count observed.
    pub peak_active_jobs: usize,
    /// MPS jobs re-routed to a dense engine by the truncation probe.
    pub mps_probe_reroutes: u64,
    /// MPS jobs refused because their truncation budget was blown and
    /// no dense fallback was feasible.
    pub mps_budget_refusals: u64,
    /// Largest per-trajectory truncation error delivered (0 when no MPS
    /// trajectory has run).
    pub peak_trunc_error: f64,
    /// Largest bond dimension any delivered MPS trajectory reached.
    pub peak_bond_reached: usize,
    /// Jobs that terminated `TimedOut` (deadline expired).
    pub jobs_timed_out: u64,
    /// Chunk executions retried after a recoverable failure (injected or
    /// real panic, transient error). Retries are output-neutral: a
    /// retried chunk re-executes bitwise identically.
    pub chunk_retries: u64,
    /// Chunks abandoned at a deadline boundary.
    pub chunks_timed_out: u64,
    /// Worker threads respawned by the supervisor.
    pub workers_respawned: u64,
    /// Jobs that gracefully degraded to their dense fallback engine.
    pub engine_fallbacks: u64,
    /// Transient sink-write failures absorbed by bounded retry.
    pub sink_write_retries: u64,
    /// Compile/plan cache counters.
    pub cache: CacheStats,
    /// Service uptime in seconds.
    pub uptime_secs: f64,
}

/// Interval rates between two [`MetricsSnapshot`]s of the same service
/// (see [`MetricsSnapshot::rate_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RateWindow {
    /// Window length in seconds (0 when the snapshots coincide or are
    /// out of order).
    pub window_secs: f64,
    /// Shots delivered per second over the window.
    pub shots_per_sec: f64,
    /// Records delivered per second over the window.
    pub records_per_sec: f64,
    /// Jobs finished per second over the window.
    pub jobs_done_per_sec: f64,
}

impl MetricsSnapshot {
    /// Mean delivered-shot throughput over the **service lifetime**.
    ///
    /// Caveat: this is a lifetime mean, not a current rate — any idle
    /// period since start dilutes it, so after a burst-then-idle pattern
    /// it understates what the service actually sustained. For a
    /// current rate, keep a previous snapshot and use
    /// [`MetricsSnapshot::rate_since`].
    pub fn shots_per_sec(&self) -> f64 {
        if self.uptime_secs <= 0.0 {
            return 0.0;
        }
        self.shots_emitted as f64 / self.uptime_secs
    }

    /// Interval rates since an earlier snapshot of the same service:
    /// counter deltas divided by the uptime delta. Returns zero rates
    /// when `prev` is not earlier than `self` (clock-degenerate or
    /// swapped arguments) so a dashboard never divides by zero.
    pub fn rate_since(&self, prev: &MetricsSnapshot) -> RateWindow {
        let window = self.uptime_secs - prev.uptime_secs;
        if window <= 0.0 {
            return RateWindow::default();
        }
        let delta = |now: u64, then: u64| now.saturating_sub(then) as f64 / window;
        RateWindow {
            window_secs: window,
            shots_per_sec: delta(self.shots_emitted, prev.shots_emitted),
            records_per_sec: delta(self.records_emitted, prev.records_emitted),
            jobs_done_per_sec: delta(self.jobs_done, prev.jobs_done),
        }
    }

    /// Everything in this snapshot as Prometheus-style metric families
    /// (the input to [`ptsbe_telemetry::prometheus`] and
    /// [`Summary`]).
    pub fn families(&self) -> Vec<Metric> {
        let c = |name, help, v: u64| Metric::counter(name, help, v as f64);
        let mut out = vec![
            c(
                "ptsbe_jobs_submitted",
                "Jobs admitted since start.",
                self.jobs_submitted,
            ),
            c(
                "ptsbe_jobs_done",
                "Jobs finished successfully.",
                self.jobs_done,
            ),
            c("ptsbe_jobs_failed", "Jobs failed.", self.jobs_failed),
            c(
                "ptsbe_jobs_cancelled",
                "Jobs cancelled.",
                self.jobs_cancelled,
            ),
            c(
                "ptsbe_jobs_timed_out",
                "Jobs past their deadline.",
                self.jobs_timed_out,
            ),
            c(
                "ptsbe_records_emitted",
                "Records delivered to sinks.",
                self.records_emitted,
            ),
            c(
                "ptsbe_shots_emitted",
                "Shots delivered to sinks.",
                self.shots_emitted,
            ),
        ];
        for (label, n) in [
            ("frame", self.engines.frame),
            ("sv-tree", self.engines.tree),
            ("sv-batch-major", self.engines.batch_major),
            ("sv-flat", self.engines.flat),
            ("mps-tree", self.engines.mps_tree),
        ] {
            out.push(
                Metric::counter("ptsbe_engine_jobs", "Jobs routed per engine.", n as f64)
                    .with_label("engine", label),
            );
        }
        out.extend([
            Metric::gauge(
                "ptsbe_peak_active_jobs",
                "Highest concurrent admitted-job count observed.",
                self.peak_active_jobs as f64,
            ),
            c(
                "ptsbe_chunk_retries",
                "Chunk executions retried.",
                self.chunk_retries,
            ),
            c(
                "ptsbe_chunks_timed_out",
                "Chunks abandoned at a deadline.",
                self.chunks_timed_out,
            ),
            c(
                "ptsbe_workers_respawned",
                "Workers respawned by the supervisor.",
                self.workers_respawned,
            ),
            c(
                "ptsbe_engine_fallbacks",
                "Jobs degraded to a dense fallback.",
                self.engine_fallbacks,
            ),
            c(
                "ptsbe_sink_write_retries",
                "Transient sink writes retried.",
                self.sink_write_retries,
            ),
            c(
                "ptsbe_mps_probe_reroutes",
                "MPS jobs re-routed by the probe.",
                self.mps_probe_reroutes,
            ),
            c(
                "ptsbe_mps_budget_refusals",
                "MPS jobs refused on budget.",
                self.mps_budget_refusals,
            ),
            Metric::gauge(
                "ptsbe_peak_trunc_error",
                "Largest delivered truncation error.",
                self.peak_trunc_error,
            ),
            Metric::gauge(
                "ptsbe_peak_bond_reached",
                "Largest delivered MPS bond dimension.",
                self.peak_bond_reached as f64,
            ),
            c(
                "ptsbe_cache_compile_hits",
                "Compile-cache hits.",
                self.cache.compile_hits(),
            ),
            c(
                "ptsbe_cache_compile_misses",
                "Compile-cache misses.",
                self.cache.compile_misses(),
            ),
            c(
                "ptsbe_cache_evictions",
                "Compile-cache evictions.",
                self.cache.evictions,
            ),
            Metric::gauge(
                "ptsbe_cache_resident_bytes",
                "Approximate resident compile-cache bytes.",
                self.cache.resident_bytes as f64,
            ),
            Metric::gauge("ptsbe_uptime_seconds", "Service uptime.", self.uptime_secs),
        ]);
        out
    }

    /// Prometheus text exposition: every counter here plus the global
    /// per-stage latency histograms (empty unless telemetry is on).
    pub fn prometheus(&self) -> String {
        ptsbe_telemetry::prometheus(&self.families(), &ptsbe_telemetry::snapshot())
    }

    /// Human-readable report: counters table + per-stage latency table.
    /// `Display` it (`println!("{}", snap.summary())`).
    pub fn summary(&self) -> Summary {
        Summary {
            metrics: self.families(),
            snapshot: ptsbe_telemetry::snapshot(),
        }
    }

    pub(crate) fn from_counters(m: &ServiceMetrics, cache: CacheStats) -> Self {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        Self {
            jobs_submitted: load(&m.jobs_submitted),
            jobs_done: load(&m.jobs_done),
            jobs_failed: load(&m.jobs_failed),
            jobs_cancelled: load(&m.jobs_cancelled),
            records_emitted: load(&m.records_emitted),
            shots_emitted: load(&m.shots_emitted),
            engines: EngineCensus {
                frame: load(&m.engine_jobs[EngineKind::Frame.index()]),
                tree: load(&m.engine_jobs[EngineKind::Tree.index()]),
                batch_major: load(&m.engine_jobs[EngineKind::BatchMajor.index()]),
                flat: load(&m.engine_jobs[EngineKind::Flat.index()]),
                mps_tree: load(&m.engine_jobs[EngineKind::MpsTree.index()]),
            },
            peak_active_jobs: m.peak_active_jobs.load(Ordering::Relaxed),
            mps_probe_reroutes: load(&m.mps_probe_reroutes),
            mps_budget_refusals: load(&m.mps_budget_refusals),
            peak_trunc_error: f64::from_bits(m.peak_trunc_error_bits.load(Ordering::Relaxed)),
            peak_bond_reached: m.peak_bond_reached.load(Ordering::Relaxed),
            jobs_timed_out: load(&m.jobs_timed_out),
            chunk_retries: load(&m.chunk_retries),
            chunks_timed_out: load(&m.chunks_timed_out),
            workers_respawned: load(&m.workers_respawned),
            engine_fallbacks: load(&m.engine_fallbacks),
            sink_write_retries: load(&m.sink_write_retries),
            cache,
            uptime_secs: m.started_at.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(uptime: f64, shots: u64, records: u64, done: u64) -> MetricsSnapshot {
        let m = ServiceMetrics::new();
        m.shots_emitted.store(shots, Ordering::Relaxed);
        m.records_emitted.store(records, Ordering::Relaxed);
        m.jobs_done.store(done, Ordering::Relaxed);
        let mut s = MetricsSnapshot::from_counters(&m, CacheStats::default());
        s.uptime_secs = uptime;
        s
    }

    #[test]
    fn rate_since_is_interval_not_lifetime() {
        let early = snap(10.0, 1_000, 10, 1);
        let late = snap(12.0, 5_000, 50, 3);
        // Lifetime mean is diluted by the 10 idle seconds…
        assert!((late.shots_per_sec() - 5_000.0 / 12.0).abs() < 1e-9);
        // …the interval rate is not.
        let r = late.rate_since(&early);
        assert!((r.window_secs - 2.0).abs() < 1e-9);
        assert!((r.shots_per_sec - 2_000.0).abs() < 1e-9);
        assert!((r.records_per_sec - 20.0).abs() < 1e-9);
        assert!((r.jobs_done_per_sec - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_since_degenerate_windows_are_zero() {
        let s = snap(10.0, 1_000, 10, 1);
        assert_eq!(s.rate_since(&s), RateWindow::default());
        // Swapped arguments (prev newer than self) must not panic or
        // produce negative rates.
        let newer = snap(11.0, 2_000, 20, 2);
        assert_eq!(s.rate_since(&newer), RateWindow::default());
    }

    #[test]
    fn families_cover_every_snapshot_field() {
        let s = snap(10.0, 1_000, 10, 1);
        let fams = s.families();
        let names: std::collections::HashSet<&str> = fams.iter().map(|m| m.name).collect();
        for expected in [
            "ptsbe_jobs_submitted",
            "ptsbe_jobs_done",
            "ptsbe_jobs_failed",
            "ptsbe_jobs_cancelled",
            "ptsbe_jobs_timed_out",
            "ptsbe_records_emitted",
            "ptsbe_shots_emitted",
            "ptsbe_engine_jobs",
            "ptsbe_peak_active_jobs",
            "ptsbe_chunk_retries",
            "ptsbe_chunks_timed_out",
            "ptsbe_workers_respawned",
            "ptsbe_engine_fallbacks",
            "ptsbe_sink_write_retries",
            "ptsbe_mps_probe_reroutes",
            "ptsbe_mps_budget_refusals",
            "ptsbe_peak_trunc_error",
            "ptsbe_peak_bond_reached",
            "ptsbe_cache_compile_hits",
            "ptsbe_cache_compile_misses",
            "ptsbe_cache_evictions",
            "ptsbe_cache_resident_bytes",
            "ptsbe_uptime_seconds",
        ] {
            assert!(names.contains(expected), "missing family {expected}");
        }
        // One engine_jobs sample per engine.
        assert_eq!(
            fams.iter()
                .filter(|m| m.name == "ptsbe_engine_jobs")
                .count(),
            5
        );
        let text = s.prometheus();
        assert!(text.contains("ptsbe_shots_emitted 1000\n"));
    }
}
