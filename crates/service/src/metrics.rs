//! Service-level counters: job lifecycle, delivery volume, per-engine
//! routing census, and admission pressure.

use crate::cache::CacheStats;
use crate::router::EngineKind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Internal atomic counters (one instance per service).
pub(crate) struct ServiceMetrics {
    pub(crate) started_at: Instant,
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_done: AtomicU64,
    pub(crate) jobs_failed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) records_emitted: AtomicU64,
    pub(crate) shots_emitted: AtomicU64,
    pub(crate) engine_jobs: [AtomicU64; EngineKind::COUNT],
    pub(crate) peak_active_jobs: AtomicUsize,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started_at: Instant::now(),
            jobs_submitted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            records_emitted: AtomicU64::new(0),
            shots_emitted: AtomicU64::new(0),
            engine_jobs: std::array::from_fn(|_| AtomicU64::new(0)),
            peak_active_jobs: AtomicUsize::new(0),
        }
    }

    pub(crate) fn note_active(&self, active: usize) {
        self.peak_active_jobs.fetch_max(active, Ordering::Relaxed);
    }
}

/// Jobs routed to each engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCensus {
    /// Pauli-frame bulk sampler jobs.
    pub frame: u64,
    /// Statevector tree-executor jobs.
    pub tree: u64,
    /// Batch-major statevector jobs.
    pub batch_major: u64,
    /// Flat (forced) statevector jobs.
    pub flat: u64,
    /// MPS tree-executor jobs.
    pub mps_tree: u64,
}

/// Point-in-time snapshot of service health.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Jobs admitted since start.
    pub jobs_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Records delivered to sinks.
    pub records_emitted: u64,
    /// Shots delivered to sinks.
    pub shots_emitted: u64,
    /// Per-engine routed-job counts.
    pub engines: EngineCensus,
    /// Highest concurrent admitted-job count observed.
    pub peak_active_jobs: usize,
    /// Compile/plan cache counters.
    pub cache: CacheStats,
    /// Service uptime in seconds.
    pub uptime_secs: f64,
}

impl MetricsSnapshot {
    /// Mean delivered-shot throughput over the service lifetime.
    pub fn shots_per_sec(&self) -> f64 {
        if self.uptime_secs <= 0.0 {
            return 0.0;
        }
        self.shots_emitted as f64 / self.uptime_secs
    }

    pub(crate) fn from_counters(m: &ServiceMetrics, cache: CacheStats) -> Self {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        Self {
            jobs_submitted: load(&m.jobs_submitted),
            jobs_done: load(&m.jobs_done),
            jobs_failed: load(&m.jobs_failed),
            jobs_cancelled: load(&m.jobs_cancelled),
            records_emitted: load(&m.records_emitted),
            shots_emitted: load(&m.shots_emitted),
            engines: EngineCensus {
                frame: load(&m.engine_jobs[EngineKind::Frame.index()]),
                tree: load(&m.engine_jobs[EngineKind::Tree.index()]),
                batch_major: load(&m.engine_jobs[EngineKind::BatchMajor.index()]),
                flat: load(&m.engine_jobs[EngineKind::Flat.index()]),
                mps_tree: load(&m.engine_jobs[EngineKind::MpsTree.index()]),
            },
            peak_active_jobs: m.peak_active_jobs.load(Ordering::Relaxed),
            cache,
            uptime_secs: m.started_at.elapsed().as_secs_f64(),
        }
    }
}
